//! # MRIS — Multi-Resource Interval Scheduling
//!
//! A faithful, production-quality reproduction of *Fan & Liang, "Online
//! Non-preemptive Multi-Resource Scheduling for Weighted Completion Time on
//! Multiple Machines", ICPP 2024*.
//!
//! Jobs with heterogeneous multi-resource demands (CPU, memory, storage,
//! network, ...) arrive online and must be scheduled **non-preemptively** on
//! `M` identical machines, each of which can run any set of jobs whose
//! summed demands fit its per-resource capacity. The objective is the
//! average weighted completion time (AWCT).
//!
//! The crate provides:
//!
//! * [`Mris`](mris_core::Mris) — the paper's `8R(1 + eps)`-competitive
//!   online algorithm (geometric intervals + constraint-approximate knapsack
//!   + Priority-Queue makespan scheduling with backfilling);
//! * the baselines it is evaluated against: the
//!   [Priority-Queue family](mris_schedulers::Pq),
//!   [Tetris](mris_schedulers::Tetris), [BF-EXEC](mris_schedulers::BfExec),
//!   and [CA-PQ](mris_schedulers::CaPq);
//! * the substrates: exact fixed-point types ([`mris_types`]), a
//!   discrete-event cluster simulator ([`mris_sim`]), knapsack solvers
//!   ([`mris_knapsack`]), an Azure-like trace generator ([`mris_trace`]),
//!   and experiment metrics ([`mris_metrics`]);
//! * a long-running scheduling daemon ([`mris_service`]) wrapping any
//!   registered policy behind admission control (including multi-tenant
//!   quotas and weighted-fair sharing), epoch batching, pluggable clocks,
//!   and per-epoch telemetry, plus an open-loop load generator;
//! * a TCP front door ([`mris_net`]) exposing the daemon over a
//!   length-prefixed CRC-framed wire protocol with token-authenticated
//!   tenants — bit-identical to the in-process service.
//!
//! ## Quickstart
//!
//! ```
//! use mris::prelude::*;
//!
//! // Three jobs over two resources (say CPU and memory).
//! let jobs = vec![
//!     Job::from_fractions(JobId(0), 0.0, 8.0, 1.0, &[1.0, 1.0]), // blocker
//!     Job::from_fractions(JobId(1), 0.5, 1.0, 2.0, &[0.4, 0.2]),
//!     Job::from_fractions(JobId(2), 0.5, 1.0, 2.0, &[0.5, 0.3]),
//! ];
//! let instance = Instance::new(jobs, 2).unwrap();
//!
//! let schedule = Mris::default().schedule(&instance, /* machines = */ 1);
//! schedule.validate(&instance).unwrap();
//! println!("AWCT = {:.3}", schedule.awct(&instance));
//! ```
//!
//! See `examples/` for trace-driven comparisons and DESIGN.md /
//! EXPERIMENTS.md for the experiment inventory reproducing every figure of
//! the paper.

#![forbid(unsafe_code)]

pub use mris_core as core;
pub use mris_core::registry;
pub use mris_knapsack as knapsack;
pub use mris_metrics as metrics;
pub use mris_net as net;
pub use mris_obs as obs;
pub use mris_schedulers as schedulers;
pub use mris_service as service;
pub use mris_sim as sim;
pub use mris_trace as trace;
pub use mris_types as types;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use mris_core::registry::{algorithm_by_name, algorithm_for_workload, known_algorithms};
    pub use mris_core::{KnapsackChoice, Mris, MrisConfig};
    pub use mris_schedulers::{BfExec, CaPq, Pq, Scheduler, SortHeuristic, Tetris};
    pub use mris_types::{
        ClusterSpec, Instance, InstanceBuilder, Job, JobId, MachineSpec, Schedule,
        SchedulingError, Time,
    };
}
