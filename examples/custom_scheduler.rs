//! Implementing a custom online scheduler against the library's traits.
//!
//! Shows the two extension points:
//! 1. [`OnlinePolicy`] — plug a new decision rule into the event-driven
//!    simulation engine (here: a "largest weight first" greedy).
//! 2. [`Scheduler`] — wrap it so it can be compared against MRIS and the
//!    built-in baselines uniformly.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use mris::prelude::*;
use mris::sim::{run_online, Dispatcher, OnlinePolicy, OrdTime};
use mris::trace::{AzureTrace, AzureTraceConfig};
use std::collections::BTreeSet;

/// Greedy "heaviest job first": at every event, start pending jobs in order
/// of decreasing weight (ties by id) wherever they fit.
#[derive(Default)]
struct HeaviestFirstPolicy {
    /// Orders by negated weight so iteration yields heaviest first.
    pending: BTreeSet<(OrdTime, JobId)>,
}

impl OnlinePolicy for HeaviestFirstPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], instance: &Instance) {
        for &j in arrived {
            self.pending.insert((OrdTime(-instance.job(j).weight), j));
        }
    }

    fn dispatch(
        &mut self,
        d: &mut Dispatcher<'_>,
        _freed: &[usize],
    ) -> Result<(), SchedulingError> {
        let instance = d.instance();
        let mut placed = Vec::new();
        for &(key, j) in self.pending.iter() {
            if let Some(m) = d.cluster().first_fit(&instance.job(j).demands) {
                d.place(m, j)?;
                placed.push((key, j));
            }
        }
        for entry in placed {
            self.pending.remove(&entry);
        }
        Ok(())
    }
}

struct HeaviestFirst;

impl Scheduler for HeaviestFirst {
    fn name(&self) -> String {
        "HEAVIEST-FIRST".to_string()
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        run_online(instance, cluster, &mut HeaviestFirstPolicy::default())
    }
}

fn main() {
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: 16_000,
        ..Default::default()
    });
    let instance = trace.sample_instance(16, 0);
    let machines = 5;

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(HeaviestFirst),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Mris::default()),
    ];

    println!(
        "{} jobs, {} machines, {} resources\n",
        instance.len(),
        machines,
        instance.num_resources()
    );
    for algo in &algorithms {
        let schedule = algo.schedule(&instance, machines);
        schedule.validate(&instance).expect("feasible schedule");
        println!(
            "{:>16}: AWCT = {:>10.2}  makespan = {:>8.1}",
            algo.name(),
            schedule.awct(&instance),
            schedule.makespan(&instance)
        );
    }
    println!("\nWeight alone is a poor signal: it ignores how long and how big jobs are.");
}
