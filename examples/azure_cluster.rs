//! Trace-driven comparison on the Azure-like synthetic workload: generates
//! a base trace, downsamples it the way Section 7.1 of the paper does, runs
//! every scheduler, and prints an AWCT/makespan/delay comparison table.
//!
//! Run with: `cargo run --release --example azure_cluster [num_jobs] [machines]`

use mris::metrics::{fairness_report, Cdf, Summary, Table};
use mris::prelude::*;
use mris::trace::{AzureTrace, AzureTraceConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let num_jobs: usize = args
        .next()
        .map(|s| s.parse().expect("num_jobs must be an integer"))
        .unwrap_or(2_000);
    let machines: usize = args
        .next()
        .map(|s| s.parse().expect("machines must be an integer"))
        .unwrap_or(5);
    let factor = 16;
    let samples = 5;

    println!(
        "generating Azure-like base trace ({} jobs)...",
        num_jobs * factor
    );
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: num_jobs * factor,
        ..Default::default()
    });
    let instances = trace.sample_instances(factor, samples, 1);

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Mris::default()),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Pq::new(SortHeuristic::Wsvf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
        Box::new(CaPq::default()),
    ];

    let mut table = Table::new(vec![
        "algorithm",
        "AWCT (mean ± 95% CI)",
        "makespan",
        "median delay",
        "zero-delay share",
        "Jain(slowdown)",
    ]);
    for algo in &algorithms {
        let mut awcts = Vec::new();
        let mut makespans = Vec::new();
        let mut delays = Vec::new();
        let mut jains = Vec::new();
        for instance in &instances {
            let schedule = algo.schedule(instance, machines);
            schedule.validate(instance).expect("feasible schedule");
            awcts.push(schedule.awct(instance));
            makespans.push(schedule.makespan(instance));
            delays.extend(schedule.queuing_delays(instance));
            jains.push(fairness_report(instance, &schedule).jains_slowdown);
        }
        let awct = Summary::of(&awcts);
        let mk = Summary::of(&makespans);
        let cdf = Cdf::new(delays);
        table.push_row(vec![
            algo.name(),
            format!("{awct}"),
            format!("{:.1}", mk.mean),
            format!("{:.1}", cdf.quantile(0.5)),
            format!("{:.0}%", cdf.fraction_zero() * 100.0),
            format!("{:.3}", Summary::of(&jains).mean),
        ]);
    }

    println!(
        "\n{} jobs per sampled set, {} machines, {} sampled sets (f = {})\n",
        instances[0].len(),
        machines,
        samples,
        factor
    );
    println!("{}", table.to_markdown());
}
