//! The "exercising patience" scenario of Figure 7: a full-machine blocker
//! arrives at t=0, then thousands of small jobs arrive moments later. The
//! event-driven schedulers all commit to the blocker; MRIS waits and runs
//! the small jobs first. Renders each schedule's CPU utilization over time
//! as an ASCII strip.
//!
//! Run with: `cargo run --release --example patience [num_small]`

use mris::metrics::{render_utilization, utilization_profile};
use mris::prelude::*;
use mris::trace::{patience_instance, PatienceConfig};

fn main() {
    let num_small: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("num_small must be an integer"))
        .unwrap_or(500);

    let instance = patience_instance(&PatienceConfig {
        num_small,
        ..Default::default()
    });
    println!(
        "{} jobs on one machine: blocker (p = 14, full demand) at t = 0,\n\
         {} small jobs arriving in (0, 0.5)\n",
        instance.len(),
        num_small
    );

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Mris::default()),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
    ];

    let mut results = Vec::new();
    for algo in &algorithms {
        let schedule = algo.schedule(&instance, 1);
        schedule.validate(&instance).expect("feasible schedule");
        results.push((algo.name(), schedule));
    }

    let horizon = results
        .iter()
        .map(|(_, s)| s.makespan(&instance))
        .fold(0.0_f64, f64::max)
        .ceil();
    println!(
        "CPU utilization over [0, {horizon}) (one cell per {:.2} time units):\n",
        horizon / 64.0
    );
    for (name, schedule) in &results {
        let profile = utilization_profile(&instance, schedule, 0, 0, horizon, 64);
        println!(
            "{:>12}  |{}|  AWCT = {:.3}",
            name,
            render_utilization(&profile),
            schedule.awct(&instance)
        );
    }

    let mris_awct = results[0].1.awct(&instance);
    let pq_awct = results[1].1.awct(&instance);
    println!(
        "\nMRIS schedules the small jobs before committing to the blocker:\n\
         its AWCT is {:.1}x lower than PQ's.",
        pq_awct / mris_awct
    );
}
