//! Quickstart: build a tiny instance by hand, schedule it with MRIS and a
//! PQ baseline, and print both schedules.
//!
//! Run with: `cargo run --release --example quickstart`

use mris::metrics::render_gantt;
use mris::prelude::*;

fn main() {
    // One machine, two resources (think CPU and memory). A full-machine
    // blocker arrives first; six small, heavier jobs arrive moments later —
    // the situation of the paper's Lemma 4.1.
    let mut jobs = vec![Job::from_fractions(JobId(0), 0.0, 8.0, 1.0, &[1.0, 1.0])];
    for i in 0..6 {
        jobs.push(Job::from_fractions(
            JobId(i + 1),
            0.25,
            1.0,
            2.0,
            &[0.3, 0.2],
        ));
    }
    let instance = Instance::new(jobs, 2).expect("valid instance");

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Mris::default()),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
    ];

    for algo in &algorithms {
        let schedule = algo.schedule(&instance, 1);
        schedule.validate(&instance).expect("feasible schedule");
        println!("=== {} ===", algo.name());
        println!("AWCT     = {:.3}", schedule.awct(&instance));
        println!("makespan = {:.3}", schedule.makespan(&instance));
        for a in schedule.assignments() {
            let job = instance.job(a.job);
            println!(
                "  {:>4}  machine {}  start {:>6.2}  completes {:>6.2}  (p={:.1}, w={:.0})",
                a.job.to_string(),
                a.machine,
                a.start,
                a.start + job.proc_time,
                job.proc_time,
                job.weight,
            );
        }
        print!("{}", render_gantt(&instance, &schedule));
        println!();
    }

    println!(
        "MRIS defers the blocking job and runs the heavy short jobs first;\n\
         PQ commits to the blocker at t=0 and makes everything else wait."
    );
}
