//! Bring-your-own-workload: export a generated trace to CSV, reload it, and
//! schedule it. Users with the real Azure packing trace (or any other
//! workload) can convert it to the same schema — one job per line:
//! `release,proc_time,weight,d0,d1,...` with demands in `[0, 1]`.
//!
//! Run with: `cargo run --release --example trace_io`

use mris::prelude::*;
use mris::trace::{instance_to_csv, parse_instance_csv, AzureTrace, AzureTraceConfig};

fn main() {
    // 1. Generate a small Azure-like instance and export it.
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: 4_000,
        ..Default::default()
    });
    let instance = trace.sample_instance(8, 0);
    let csv = instance_to_csv(&instance);
    let path = std::env::temp_dir().join("mris_example_trace.csv");
    std::fs::write(&path, &csv).expect("write trace CSV");
    println!(
        "exported {} jobs x {} resources to {}",
        instance.len(),
        instance.num_resources(),
        path.display()
    );
    println!("schema preview:");
    for line in csv.lines().take(4) {
        println!("  {line}");
    }

    // 2. Reload and normalize, as for any external workload.
    let text = std::fs::read_to_string(&path).expect("read trace CSV");
    let loaded = parse_instance_csv(&text).expect("parse trace CSV");
    let (normalized, scale) = loaded.normalize();
    println!(
        "\nreloaded {} jobs; normalized by min processing time ({scale:.3} time units)",
        normalized.len()
    );

    // 3. Schedule the reloaded instance.
    let machines = 5;
    for algo in [
        Box::new(Mris::default()) as Box<dyn Scheduler>,
        Box::new(Pq::new(SortHeuristic::Wsjf)),
    ] {
        let schedule = algo.schedule(&normalized, machines);
        schedule.validate(&normalized).expect("feasible schedule");
        println!(
            "{:>10}: AWCT = {:>10.1}  makespan = {:>9.1}",
            algo.name(),
            schedule.awct(&normalized),
            schedule.makespan(&normalized)
        );
    }
    std::fs::remove_file(&path).ok();
}
