#!/bin/bash
# Regenerates every paper figure and every extension experiment.
# Paper-scale runs: append --paper to any line (needs hours on one core).
set -x
cd "$(dirname "$0")/.."
cargo build --release -p mris-bench --bins
B=target/release
$B/fig7     > results/fig7.txt     2> results/fig7.log
$B/lemma41  > results/lemma41.txt  2> results/lemma41.log
$B/fig5  --samples 3 > results/fig5.txt 2> results/fig5.log
$B/fig3     > results/fig3.txt     2> results/fig3.log
$B/fig2     > results/fig2.txt     2> results/fig2.log
$B/fig4  --samples 5 > results/fig4.txt 2> results/fig4.log
$B/fig1     > results/fig1.txt     2> results/fig1.log
$B/fig6  --samples 5 > results/fig6.txt 2> results/fig6.log
$B/makespan --samples 5 > results/makespan.txt 2> results/makespan.log
$B/ratios   --samples 5 > results/ratios.txt   2> results/ratios.log
$B/ablation --samples 5 > results/ablation.txt 2> results/ablation.log
$B/runtime  > results/runtime.txt  2> results/runtime.log
$B/dynamics > results/dynamics.txt 2> results/dynamics.log
$B/fairness --samples 3 > results/fairness.txt 2> results/fairness.log
$B/timeline --out results/BENCH_timeline.json > /dev/null 2> results/timeline.log
# scale bench: shard worker-pool scan + placement throughput at up to 10k
# machines; --gate enforces sharded >= sequential at 1000 machines.
$B/scale --gate --out results/BENCH_scale.json > /dev/null 2> results/scale.log
$B/chaos    --out results/BENCH_chaos.json    > /dev/null 2> results/chaos.log
# workloads bench: job structure (independent / chain / fork-join /
# random-DAG) x cluster shape (uniform / related speeds) for every
# scheduler; capability-gated cells report "supported": false.
$B/workloads --out results/BENCH_workloads.json > /dev/null 2> results/workloads.log
# service bench includes the MRIS stage_breakdown section (obs-enabled pass),
# the durability section (journal-on vs journal-off throughput with a
# <15% overhead budget, plus restore latency vs journal-tail length), and the
# net section (loopback TCP front-door round-trip latency + throughput vs
# in-process, and the 2-tenant weighted-fair split accuracy).
$B/service  --out results/BENCH_service.json  > /dev/null 2> results/service.log
$B/obs      --out results/BENCH_obs.json      > /dev/null 2> results/obs.log
echo ALL_DONE
