//! Exercises the full MRIS configuration matrix and every workload
//! generator: all heuristics x all knapsack choices x backfill on/off, on
//! diurnal, uniform, and bursty traces — every combination must produce a
//! feasible, complete schedule within its configuration's guarantees.

use mris::prelude::*;
use mris::trace::{ArrivalPattern, AzureTrace, AzureTraceConfig};

fn workloads() -> Vec<(&'static str, Instance)> {
    let mut out = Vec::new();
    for (name, arrivals) in [
        ("diurnal", ArrivalPattern::default()),
        ("uniform", ArrivalPattern::Uniform),
        (
            "bursty",
            ArrivalPattern::Bursty {
                spikes: 3,
                spike_mass: 0.5,
            },
        ),
    ] {
        let trace = AzureTrace::generate(&AzureTraceConfig {
            num_jobs: 1200,
            window_days: 2.0,
            seed: 77,
            priority_levels: 3,
            arrivals,
        });
        out.push((name, trace.sample_instance(4, 1)));
    }
    out
}

#[test]
fn all_mris_configurations_schedule_all_workloads() {
    let machines = 3;
    for (workload, instance) in workloads() {
        for heuristic in SortHeuristic::ALL_EXTENDED {
            for knapsack in [
                KnapsackChoice::Cadp,
                KnapsackChoice::Greedy,
                KnapsackChoice::GreedyHalf,
            ] {
                for backfill in [true, false] {
                    let mris = Mris::with_config(MrisConfig {
                        heuristic,
                        knapsack,
                        backfill,
                        ..Default::default()
                    });
                    let (schedule, log) = mris.schedule_with_log(&instance, machines);
                    schedule.validate(&instance).unwrap_or_else(|e| {
                        panic!("{workload}/{heuristic}/{knapsack:?}/backfill={backfill}: {e}")
                    });
                    // Every iteration respects its volume budget.
                    let blowup = match knapsack {
                        KnapsackChoice::Cadp => 1.5,
                        _ => 2.0,
                    };
                    for it in &log {
                        assert!(
                            it.batch_volume <= blowup * it.zeta + 1e-6,
                            "{workload}/{heuristic}/{knapsack:?}: iteration {} volume budget",
                            it.k
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn alpha_and_epsilon_extremes_remain_sound() {
    let instance = workloads().remove(0).1;
    for alpha in [2.0, 4.0, 16.0] {
        for epsilon in [0.05, 0.5, 0.95] {
            let mris = Mris::with_config(MrisConfig {
                alpha,
                epsilon,
                ..Default::default()
            });
            let schedule = mris.schedule(&instance, 2);
            schedule
                .validate(&instance)
                .unwrap_or_else(|e| panic!("alpha={alpha} eps={epsilon}: {e}"));
        }
    }
}

#[test]
fn backfill_dominates_no_backfill_on_every_workload() {
    // Backfilling can only move starts earlier relative to the append-only
    // variant at equal batch choices, so AWCT should never be (much) worse.
    for (workload, instance) in workloads() {
        let with = Mris::default().schedule(&instance, 3).awct(&instance);
        let without = Mris::with_config(MrisConfig {
            backfill: false,
            ..Default::default()
        })
        .schedule(&instance, 3)
        .awct(&instance);
        assert!(
            with <= without * 1.001,
            "{workload}: backfill {with} vs append-only {without}"
        );
    }
}
