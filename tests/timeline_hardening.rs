//! Hardening regressions for the committed-timeline hot path: release-build
//! capacity enforcement, compaction watermarks, typed machine-index errors,
//! and sequential/parallel cluster-scan agreement — all through the public
//! facade, the way downstream policies consume the crate.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mris::sim::{run_online, ClusterTimelines, Dispatcher, MachineTimeline, OnlinePolicy};
use mris::types::{amount_from_fraction, Amount, Instance, Job, JobId, SchedulingError, Time};

fn d(fracs: &[f64]) -> Vec<Amount> {
    fracs.iter().copied().map(amount_from_fraction).collect()
}

/// The capacity bound in `commit` must hold in **every** build profile —
/// this test passes under both `cargo test` and `cargo test --release`
/// because the check is a hard assertion, not a `debug_assert!`. Before the
/// fix, a caller bug silently over-committed the timeline in `--release`
/// and corrupted every later feasibility answer.
#[test]
fn over_commit_aborts_in_release_semantics_and_preserves_the_timeline() {
    let mut tl = MachineTimeline::new(2);
    tl.commit(0.0, 10.0, &d(&[0.7, 0.2]));
    let err = catch_unwind(AssertUnwindSafe(|| {
        tl.commit(5.0, 2.0, &d(&[0.7, 0.2]));
    }))
    .expect_err("over-commit must panic in every profile");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("exceeds capacity"), "panic message: {msg}");
    // The step function is semantically unchanged: the failed commit
    // materialized at most already-implied breakpoints, never usage.
    assert_eq!(tl.usage_at(5.5), &d(&[0.7, 0.2])[..]);
    assert_eq!(tl.usage_at(11.0), &d(&[0.0, 0.0])[..]);
    assert!(tl.is_feasible(0.0, 10.0, &d(&[0.3, 0.3])));
    assert_eq!(tl.earliest_fit(0.0, 1.0, &d(&[0.7, 0.2])), 10.0);
}

#[test]
fn compaction_watermark_is_observable_and_monotone() {
    let mut tl = MachineTimeline::new(1);
    tl.commit(0.0, 2.0, &d(&[0.5]));
    tl.commit(3.0, 2.0, &d(&[0.5]));
    tl.commit(8.0, 4.0, &d(&[0.9]));
    assert_eq!(tl.compaction_watermark(), 0.0);
    tl.compact_before(6.0);
    // The retained prefix starts at the last breakpoint <= 6, i.e. 5.0.
    assert_eq!(tl.compaction_watermark(), 5.0);
    // Post-watermark answers stay exact after compaction: the gap [5, 8)
    // takes a duration-3 job, but a duration-4 one must wait out [8, 12).
    assert_eq!(tl.earliest_fit(5.0, 3.0, &d(&[0.5])), 5.0);
    assert_eq!(tl.earliest_fit(5.0, 4.0, &d(&[0.5])), 12.0);
    assert!(tl.is_feasible(5.0, 3.0, &d(&[0.1])));
    // Watermarks never move backwards.
    tl.compact_before(1.0);
    assert_eq!(tl.compaction_watermark(), 5.0);
}

/// A policy that targets a machine index outside the cluster: the driver
/// must surface `SchedulingError::InvalidMachine`, not panic on a slice
/// index deep inside `ClusterState::fits`.
#[test]
fn online_driver_reports_invalid_machine_as_typed_error() {
    struct OffByOne;
    impl OnlinePolicy for OffByOne {
        fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
        fn dispatch(
            &mut self,
            d: &mut Dispatcher<'_>,
            _freed: &[usize],
        ) -> Result<(), SchedulingError> {
            let machines = d.cluster().num_machines();
            d.place(machines, JobId(0))
        }
    }
    let instance = Instance::new(
        vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.2])],
        1,
    )
    .unwrap();
    let err = run_online(&instance, 3, &mut OffByOne).unwrap_err();
    assert_eq!(
        err,
        SchedulingError::InvalidMachine {
            machine: 3,
            num_machines: 3
        }
    );
    assert!(err.to_string().contains("machine 3"));
}

/// The threaded cluster scan is an internal optimization: forcing it on and
/// off over an identically-committed cluster must give bit-identical
/// placements, including machine tie-breaks.
#[test]
fn forced_parallel_scan_places_identically_to_sequential() {
    let jobs: Vec<Job> = (0..120)
        .map(|i| {
            Job::from_fractions(
                JobId(i),
                (i % 7) as f64 * 0.5,
                0.5 + (i % 9) as f64,
                1.0,
                &[
                    0.1 + 0.11 * (i % 8) as f64,
                    0.05 * (i % 13) as f64,
                    0.25 + 0.15 * (i % 5) as f64,
                ],
            )
        })
        .collect();
    let mut sequential = ClusterTimelines::new(12, 3);
    sequential.set_parallel_threshold(usize::MAX);
    let mut parallel = ClusterTimelines::new(12, 3);
    parallel.set_parallel_threshold(1);
    for job in &jobs {
        let got_seq = sequential.place_earliest(job, job.release);
        let got_par = parallel.place_earliest(job, job.release);
        assert_eq!(got_seq, got_par, "job {}", job.id);
    }
    assert_eq!(sequential.horizon(), parallel.horizon());
    assert_eq!(sequential.total_segments(), parallel.total_segments());
}
