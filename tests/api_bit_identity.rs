//! Bit-identity of the redesigned `Scheduler` API on legacy workloads.
//!
//! The `try_schedule_on(instance, &ClusterSpec)` redesign must be a pure
//! generalization: for an **edge-free** instance on a **uniform** cluster,
//! every registered algorithm must produce exactly the schedule the
//! pre-redesign `try_schedule(instance, machines)` path produced — same
//! assignments and the same AWCT down to the last mantissa bit (uniform
//! machines divide by speed 1.0, which is bitwise exact).
//!
//! 48 seeded random cases × 6 algorithms, pinning:
//!
//! 1. `try_schedule_on` with `ClusterSpec::uniform(m)` == `try_schedule`
//!    with `m` (schedule equality);
//! 2. `awct_on` under the uniform spec == plain `awct`, bit for bit;
//! 3. the registry's workload-aware resolver accepts every algorithm for
//!    the edge-free + uniform pair (nothing regresses to Unsupported).

use mris::prelude::*;
use mris::registry::algorithm_by_name;
use mris_rng::Rng;

const ALGORITHMS: [&str; 6] = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];
const CASES: usize = 48;

/// A seeded random edge-free instance in the conservativity suite's style.
fn gen_instance(rng: &mut Rng) -> (usize, Instance) {
    let r = rng.gen_range(1..=3usize);
    let n = rng.gen_range(2..=16usize);
    let jobs = (0..n)
        .map(|i| {
            let demands: Vec<f64> = (0..r).map(|_| rng.gen_range(0.05..=1.0)).collect();
            Job::from_fractions(
                JobId(i as u32),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.5..6.0),
                rng.gen_range(0.0..4.0),
                &demands,
            )
        })
        .collect();
    let machines = rng.gen_range(1..=4usize);
    (machines, Instance::new(jobs, r).expect("generated jobs are valid"))
}

#[test]
fn uniform_spec_is_bit_identical_to_legacy_path() {
    let mut rng = Rng::new(42).substream("api-bit-identity");
    for case in 0..CASES {
        let (machines, instance) = gen_instance(&mut rng);
        let cluster = ClusterSpec::uniform(machines);
        for name in ALGORITHMS {
            let algo = algorithm_by_name(name).expect("registry resolves comparison names");
            let legacy = algo
                .try_schedule(&instance, machines)
                .unwrap_or_else(|e| panic!("{name} case {case} legacy: {e}"));
            let spec_aware = algo
                .try_schedule_on(&instance, &cluster)
                .unwrap_or_else(|e| panic!("{name} case {case} spec-aware: {e}"));
            assert_eq!(
                spec_aware, legacy,
                "{name} case {case}: uniform spec-aware schedule diverged from try_schedule"
            );
            assert_eq!(
                spec_aware.awct_on(&instance, &cluster).to_bits(),
                legacy.awct(&instance).to_bits(),
                "{name} case {case}: AWCT bits diverged between awct_on(uniform) and awct"
            );
        }
    }
}

#[test]
fn registry_accepts_every_algorithm_for_legacy_workloads() {
    let mut rng = Rng::new(43).substream("api-registry-accepts");
    let (machines, instance) = gen_instance(&mut rng);
    let cluster = ClusterSpec::uniform(machines);
    for name in ALGORITHMS {
        algorithm_for_workload(name, &instance, &cluster).unwrap_or_else(|e| {
            panic!("{name}: rejected an edge-free uniform workload: {e}")
        });
    }
}
