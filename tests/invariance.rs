//! Structural invariance properties of the schedulers.

use mris::metrics::{awct_lower_bound, makespan_lower_bound};
use mris::prelude::*;
use mris::trace::{instance_to_csv, parse_instance_csv};
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

fn gen_rows(rng: &mut Rng) -> Vec<Row> {
    let n = rng.gen_range(1..16usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..10.0),
                rng.gen_range(1.0..5.0),
                rng.gen_range(0.5..4.0),
                vec![rng.gen_range(0.01..=1.0), rng.gen_range(0.01..=1.0)],
            )
        })
        .collect()
}

/// `None` for shrink candidates that broke the generator's invariants.
fn build_instance(rows: &[Row]) -> Option<Instance> {
    if rows.is_empty() || rows.iter().any(|(_, _, _, d)| d.len() != 2) {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(r, p, w, d)| Job::from_fractions(JobId(0), *r, *p, *w, d))
        .collect();
    Instance::from_unnumbered(jobs, 2).ok()
}

fn scale_times(instance: &Instance, c: f64) -> Instance {
    let jobs = instance
        .jobs()
        .iter()
        .map(|j| Job {
            release: j.release * c,
            proc_time: j.proc_time * c,
            ..j.clone()
        })
        .collect();
    Instance::new(jobs, instance.num_resources()).unwrap()
}

/// Scaling all times by a constant scales every PQ-class schedule (and
/// its AWCT) by the same constant: the event order is invariant.
#[test]
fn pq_is_time_scale_invariant() {
    check(
        "pq is time scale invariant",
        &Config::with_cases(48),
        |rng| (gen_rows(rng), rng.gen_range(1.0..8.0)),
        |(rows, c)| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let c = *c;
            let scaled = scale_times(&instance, c);
            for heuristic in [SortHeuristic::Wsjf, SortHeuristic::Svf] {
                let pq = Pq::new(heuristic);
                let base = pq.schedule(&instance, 2);
                let big = pq.schedule(&scaled, 2);
                for job in instance.jobs() {
                    let a = base.get(job.id).unwrap();
                    let b = big.get(job.id).unwrap();
                    prop_assert_eq!(a.machine, b.machine);
                    prop_assert!(
                        (a.start * c - b.start).abs() < 1e-6 * c.max(1.0),
                        "{:?} vs {:?}",
                        a,
                        b
                    );
                }
                prop_assert!(
                    (base.awct(&instance) * c - big.awct(&scaled)).abs() < 1e-6 * c.max(1.0)
                );
            }
            Ok(())
        },
    );
}

/// MRIS is also time-scale invariant: its interval grid is anchored at
/// the minimum processing time, which scales along.
#[test]
fn mris_is_time_scale_invariant() {
    check(
        "mris is time scale invariant",
        &Config::with_cases(48),
        |rng| (gen_rows(rng), rng.gen_range(1.0..8.0)),
        |(rows, c)| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let c = *c;
            let scaled = scale_times(&instance, c);
            let mris = Mris::default();
            let base = mris.schedule(&instance, 2);
            let big = mris.schedule(&scaled, 2);
            for job in instance.jobs() {
                let a = base.get(job.id).unwrap();
                let b = big.get(job.id).unwrap();
                prop_assert_eq!(a.machine, b.machine);
                prop_assert!((a.start * c - b.start).abs() < 1e-6 * c.max(1.0));
            }
            Ok(())
        },
    );
}

/// Doubling every weight doubles the total weighted completion time of
/// weight-oblivious schedules and leaves weighted-heuristic schedule
/// orders unchanged.
#[test]
fn weight_scaling_is_linear() {
    check(
        "weight scaling is linear",
        &Config::with_cases(48),
        |rng| (gen_rows(rng), rng.gen_range(1.0..5.0)),
        |(rows, c)| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let c = *c;
            let jobs = instance
                .jobs()
                .iter()
                .map(|j| Job {
                    weight: j.weight * c,
                    ..j.clone()
                })
                .collect();
            let reweighted = Instance::new(jobs, instance.num_resources()).unwrap();
            for algo in [
                Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
                Box::new(Mris::default()),
            ] {
                let a = algo.schedule(&instance, 2);
                let b = algo.schedule(&reweighted, 2);
                // w/c-ratio orders are unchanged, so the schedules coincide...
                prop_assert_eq!(&a, &b, "{}", algo.name());
                // ...and the objective scales linearly.
                prop_assert!((a.awct(&instance) * c - b.awct(&reweighted)).abs() < 1e-6 * c);
            }
            Ok(())
        },
    );
}

/// CSV round-trips preserve scheduling outcomes bit-for-bit on the
/// fixed-point demands and near-exactly on times.
#[test]
fn csv_roundtrip_preserves_schedules() {
    check(
        "csv roundtrip preserves schedules",
        &Config::with_cases(48),
        gen_rows,
        |rows| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let back = parse_instance_csv(&instance_to_csv(&instance)).unwrap();
            let a = Mris::default().schedule(&instance, 2);
            let b = Mris::default().schedule(&back, 2);
            for job in instance.jobs() {
                let x = a.get(job.id).unwrap();
                let y = b.get(job.id).unwrap();
                prop_assert_eq!(x.machine, y.machine);
                prop_assert!((x.start - y.start).abs() < 1e-6);
            }
            Ok(())
        },
    );
}

/// The provable lower bounds never exceed what any real schedule
/// achieves.
#[test]
fn lower_bounds_are_valid() {
    check(
        "lower bounds are valid",
        &Config::with_cases(48),
        |rng| (gen_rows(rng), rng.gen_range(1..4usize)),
        |(rows, machines)| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let machines = *machines;
            let awct_lb = awct_lower_bound(&instance, machines);
            let mk_lb = makespan_lower_bound(&instance, machines);
            for algo in [
                Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
                Box::new(Mris::default()),
                Box::new(Tetris::default()),
                Box::new(BfExec),
            ] {
                let s = algo.schedule(&instance, machines);
                prop_assert!(s.awct(&instance) >= awct_lb - 1e-6, "{}", algo.name());
                prop_assert!(s.makespan(&instance) >= mk_lb - 1e-6, "{}", algo.name());
            }
            Ok(())
        },
    );
}
