//! Structural invariance properties of the schedulers.

use mris::metrics::{awct_lower_bound, makespan_lower_bound};
use mris::prelude::*;
use mris::trace::{instance_to_csv, parse_instance_csv};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    prop::collection::vec(
        (
            0.0f64..10.0,
            1.0f64..5.0,
            0.5f64..4.0,
            prop::collection::vec(0.01f64..=1.0, 2..=2),
        ),
        1..16,
    )
    .prop_map(|rows| {
        let jobs = rows
            .iter()
            .map(|(r, p, w, d)| Job::from_fractions(JobId(0), *r, *p, *w, d))
            .collect();
        Instance::from_unnumbered(jobs, 2).unwrap()
    })
}

fn scale_times(instance: &Instance, c: f64) -> Instance {
    let jobs = instance
        .jobs()
        .iter()
        .map(|j| Job {
            release: j.release * c,
            proc_time: j.proc_time * c,
            ..j.clone()
        })
        .collect();
    Instance::new(jobs, instance.num_resources()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scaling all times by a constant scales every PQ-class schedule (and
    /// its AWCT) by the same constant: the event order is invariant.
    #[test]
    fn pq_is_time_scale_invariant(instance in arb_instance(), c in 1.0f64..8.0) {
        let scaled = scale_times(&instance, c);
        for heuristic in [SortHeuristic::Wsjf, SortHeuristic::Svf] {
            let pq = Pq::new(heuristic);
            let base = pq.schedule(&instance, 2);
            let big = pq.schedule(&scaled, 2);
            for job in instance.jobs() {
                let a = base.get(job.id).unwrap();
                let b = big.get(job.id).unwrap();
                prop_assert_eq!(a.machine, b.machine);
                prop_assert!((a.start * c - b.start).abs() < 1e-6 * c.max(1.0),
                    "{:?} vs {:?}", a, b);
            }
            prop_assert!((base.awct(&instance) * c - big.awct(&scaled)).abs()
                < 1e-6 * c.max(1.0));
        }
    }

    /// MRIS is also time-scale invariant: its interval grid is anchored at
    /// the minimum processing time, which scales along.
    #[test]
    fn mris_is_time_scale_invariant(instance in arb_instance(), c in 1.0f64..8.0) {
        let scaled = scale_times(&instance, c);
        let mris = Mris::default();
        let base = mris.schedule(&instance, 2);
        let big = mris.schedule(&scaled, 2);
        for job in instance.jobs() {
            let a = base.get(job.id).unwrap();
            let b = big.get(job.id).unwrap();
            prop_assert_eq!(a.machine, b.machine);
            prop_assert!((a.start * c - b.start).abs() < 1e-6 * c.max(1.0));
        }
    }

    /// Doubling every weight doubles the total weighted completion time of
    /// weight-oblivious schedules and leaves weighted-heuristic schedule
    /// orders unchanged.
    #[test]
    fn weight_scaling_is_linear(instance in arb_instance(), c in 1.0f64..5.0) {
        let jobs = instance
            .jobs()
            .iter()
            .map(|j| Job { weight: j.weight * c, ..j.clone() })
            .collect();
        let reweighted = Instance::new(jobs, instance.num_resources()).unwrap();
        for algo in [
            Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
            Box::new(Mris::default()),
        ] {
            let a = algo.schedule(&instance, 2);
            let b = algo.schedule(&reweighted, 2);
            // w/c-ratio orders are unchanged, so the schedules coincide...
            prop_assert_eq!(&a, &b, "{}", algo.name());
            // ...and the objective scales linearly.
            prop_assert!((a.awct(&instance) * c - b.awct(&reweighted)).abs() < 1e-6 * c);
        }
    }

    /// CSV round-trips preserve scheduling outcomes bit-for-bit on the
    /// fixed-point demands and near-exactly on times.
    #[test]
    fn csv_roundtrip_preserves_schedules(instance in arb_instance()) {
        let back = parse_instance_csv(&instance_to_csv(&instance)).unwrap();
        let a = Mris::default().schedule(&instance, 2);
        let b = Mris::default().schedule(&back, 2);
        for job in instance.jobs() {
            let x = a.get(job.id).unwrap();
            let y = b.get(job.id).unwrap();
            prop_assert_eq!(x.machine, y.machine);
            prop_assert!((x.start - y.start).abs() < 1e-6);
        }
    }

    /// The provable lower bounds never exceed what any real schedule
    /// achieves.
    #[test]
    fn lower_bounds_are_valid(instance in arb_instance(), machines in 1usize..4) {
        let awct_lb = awct_lower_bound(&instance, machines);
        let mk_lb = makespan_lower_bound(&instance, machines);
        for algo in [
            Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
            Box::new(Mris::default()),
            Box::new(Tetris::default()),
            Box::new(BfExec),
        ] {
            let s = algo.schedule(&instance, machines);
            prop_assert!(s.awct(&instance) >= awct_lb - 1e-6, "{}", algo.name());
            prop_assert!(s.makespan(&instance) >= mk_lb - 1e-6, "{}", algo.name());
        }
    }
}
