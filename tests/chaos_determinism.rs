//! Determinism and conservativity of the fault-injection harness.
//!
//! Two pinned properties, each over randomized instances, plans, restart
//! semantics, and schedulers:
//!
//! 1. **Bit-for-bit replay**: the same seed and fault plan produce a
//!    byte-identical schedule, fault log, and AWCT when run twice. This is
//!    what makes chaos experiments debuggable — any failure reproduces.
//! 2. **Conservativity**: a run under [`FaultPlan::none`] is identical to
//!    the failure-free scheduler for every registered comparison
//!    algorithm. The chaos harness adds no behavior when nothing fails —
//!    in particular, the incremental `MrisOnline` reproduces the offline
//!    `Mris` pass exactly.

use mris::registry::{algorithm_by_name, online_policy_by_name};
use mris::sim::{run_online_chaos, suggested_horizon, FaultPlan, PoissonFaultConfig};
use mris::types::{Instance, Job, JobId, RestartSemantics};
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};

const SCHEDULERS: [&str; 6] = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

/// `(scheduler index, restart selector, plan seed, machines, resources, rows)`.
type Case = (usize, u8, u64, usize, usize, Vec<Row>);

fn gen_case(rng: &mut Rng) -> Case {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(2..=12usize);
    let rows = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.5..6.0),
                rng.gen_range(0.0..4.0),
                (0..r).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            )
        })
        .collect();
    (
        rng.gen_range(0..SCHEDULERS.len()),
        rng.gen_range(0..=1usize) as u8,
        rng.gen_range(0..u64::MAX),
        rng.gen_range(1..=3usize),
        r,
        rows,
    )
}

/// `None` for shrink candidates that broke the generator's invariants.
fn build_case(case: &Case) -> Option<(&'static str, RestartSemantics, u64, usize, Instance)> {
    let (algo_idx, restart_sel, plan_seed, machines, r, rows) = case;
    if rows.len() < 2
        || !(1..=2).contains(r)
        || !(1..=3).contains(machines)
        || *algo_idx >= SCHEDULERS.len()
        || rows.iter().any(|(_, _, _, d)| d.len() != *r)
    {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(rel, p, w, d)| Job::from_fractions(JobId(0), *rel, *p, *w, d))
        .collect();
    let instance = Instance::from_unnumbered(jobs, *r).ok()?;
    let restart = if *restart_sel == 0 {
        RestartSemantics::FullRestart
    } else {
        RestartSemantics::WeightAging { factor: 1.5 }
    };
    Some((
        SCHEDULERS[*algo_idx],
        restart,
        *plan_seed,
        *machines,
        instance,
    ))
}

fn poisson_plan(seed: u64, instance: &Instance, machines: usize) -> FaultPlan {
    let horizon = suggested_horizon(instance, machines);
    FaultPlan::poisson(&PoissonFaultConfig {
        seed,
        num_machines: machines,
        horizon,
        mtbf: horizon / 1.5,
        mttr: 0.1 * horizon,
    })
}

/// Same seed, same plan, same scheduler: byte-identical schedule, fault
/// log, and AWCT bits across two independent runs.
#[test]
fn chaos_runs_are_bit_for_bit_reproducible() {
    check(
        "chaos replay determinism",
        &Config::with_cases(64),
        gen_case,
        |case| {
            let Some((name, restart, plan_seed, machines, instance)) = build_case(case) else {
                return Ok(());
            };
            let plan = poisson_plan(plan_seed, &instance, machines);
            let run = || {
                let mut policy = online_policy_by_name(name, &instance, machines)
                    .expect("registry resolves comparison names");
                run_online_chaos(&instance, machines, policy.as_mut(), &plan, restart)
            };
            let first = run().map_err(|e| format!("{name}: {e}"))?;
            let second = run().map_err(|e| format!("{name}: {e}"))?;
            prop_assert_eq!(&first.schedule, &second.schedule, "{name} schedule");
            prop_assert_eq!(&first.log, &second.log, "{name} fault log");
            prop_assert_eq!(
                first.schedule.awct(&instance).to_bits(),
                second.schedule.awct(&instance).to_bits(),
                "{name} AWCT bits"
            );
            prop_assert!(first.schedule.is_complete(), "{name} incomplete");
            first
                .log
                .verify()
                .map_err(|v| format!("{name}: invariant violation: {v}"))?;
            Ok(())
        },
    );
}

/// Under an empty fault plan, the chaos driver reproduces the failure-free
/// scheduler exactly, for every registered comparison algorithm.
#[test]
fn empty_plan_matches_failure_free_run() {
    check(
        "chaos conservativity",
        &Config::with_cases(64),
        gen_case,
        |case| {
            let Some((_, restart, _, machines, instance)) = build_case(case) else {
                return Ok(());
            };
            for name in SCHEDULERS {
                let baseline = algorithm_by_name(name)
                    .expect("registry resolves comparison names")
                    .try_schedule(&instance, machines)
                    .map_err(|e| format!("{name} baseline: {e}"))?;
                let mut policy = online_policy_by_name(name, &instance, machines)
                    .expect("registry resolves comparison names");
                let outcome = run_online_chaos(
                    &instance,
                    machines,
                    policy.as_mut(),
                    &FaultPlan::none(),
                    restart,
                )
                .map_err(|e| format!("{name} chaos: {e}"))?;
                prop_assert_eq!(&outcome.schedule, &baseline, "{name} diverged");
                prop_assert_eq!(
                    outcome.schedule.awct(&instance).to_bits(),
                    baseline.awct(&instance).to_bits(),
                    "{name} AWCT bits diverged"
                );
                prop_assert!(outcome.log.failures.is_empty(), "{name} phantom failure");
                prop_assert_eq!(outcome.log.total_re_releases(), 0u64, "{name} re-release");
            }
            Ok(())
        },
    );
}
