//! Remark 3: with unit processing times, a bin-packing subroutine (shelf
//! FFD) packs batches tighter than the PQ makespan subroutine's worst case.

use mris::core::{batch_makespan_bound, place_batch, place_batch_ffd};
use mris::prelude::*;
use mris::sim::ClusterTimelines;
use mris::trace::unit_job_batch;

fn batch_of(instance: &Instance) -> Vec<JobId> {
    instance.jobs().iter().map(|j| j.id).collect()
}

fn makespan_of(instance: &Instance, placements: &[(JobId, usize, f64)]) -> f64 {
    placements
        .iter()
        .map(|&(j, _, s)| s + instance.job(j).proc_time)
        .fold(0.0_f64, f64::max)
}

fn as_schedule(
    instance: &Instance,
    placements: &[(JobId, usize, f64)],
    machines: usize,
) -> Schedule {
    let mut s = Schedule::new(instance.len(), machines);
    for &(j, m, start) in placements {
        s.assign(j, m, start).unwrap();
    }
    s
}

#[test]
fn ffd_placements_are_feasible_and_within_pq_bound() {
    for seed in 0..5 {
        let instance = unit_job_batch(120, 2, (0.1, 0.7), seed);
        let batch = batch_of(&instance);
        for machines in [1usize, 3] {
            let mut tl = ClusterTimelines::new(machines, 2);
            let placements = place_batch_ffd(&mut tl, &instance, &batch, 0.0);
            as_schedule(&instance, &placements, machines)
                .validate(&instance)
                .unwrap();
            // FFD also satisfies the Lemma 6.3-style bound on these inputs.
            let bound = batch_makespan_bound(&instance, &batch, machines);
            assert!(makespan_of(&instance, &placements) <= bound + 1e-9);
        }
    }
}

#[test]
fn ffd_never_loses_badly_and_usually_wins_on_unit_batches() {
    let mut ffd_wins = 0usize;
    let trials = 10;
    for seed in 0..trials {
        let instance = unit_job_batch(200, 3, (0.15, 0.55), seed as u64);
        let batch = batch_of(&instance);

        let mut tl_pq = ClusterTimelines::new(2, 3);
        // PQ subroutine in SVF order (volume order; demands here since p=1).
        let mut ordered = batch.clone();
        ordered.sort_by(|&a, &b| {
            instance
                .job(a)
                .total_demand()
                .cmp(&instance.job(b).total_demand())
                .then(a.cmp(&b))
        });
        let pq = place_batch(&mut tl_pq, &instance, &ordered, 0.0);

        let mut tl_ffd = ClusterTimelines::new(2, 3);
        let ffd = place_batch_ffd(&mut tl_ffd, &instance, &batch, 0.0);

        let pq_makespan = makespan_of(&instance, &pq);
        let ffd_makespan = makespan_of(&instance, &ffd);
        // FFD's shelves can't be catastrophically worse on unit jobs...
        assert!(
            ffd_makespan <= 2.0 * pq_makespan + 1.0,
            "seed {seed}: ffd {ffd_makespan} vs pq {pq_makespan}"
        );
        if ffd_makespan <= pq_makespan + 1e-9 {
            ffd_wins += 1;
        }
    }
    // ...and ties or wins on a solid majority of unit-batch instances.
    assert!(
        ffd_wins * 2 >= trials,
        "FFD won only {ffd_wins}/{trials} unit-batch trials"
    );
}

#[test]
fn ffd_on_mixed_durations_is_correct_but_wasteful() {
    // FFD remains *correct* with unequal durations (shelves stretch to the
    // longest member) — document that the PQ subroutine is better there.
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 8.0, 1.0, &[0.5]),
        Job::from_fractions(JobId(1), 0.0, 1.0, 1.0, &[0.5]),
        Job::from_fractions(JobId(2), 0.0, 1.0, 1.0, &[0.5]),
    ];
    let instance = Instance::from_unnumbered(jobs, 1).unwrap();
    let batch = batch_of(&instance);

    let mut tl = ClusterTimelines::new(1, 1);
    let ffd = place_batch_ffd(&mut tl, &instance, &batch, 0.0);
    as_schedule(&instance, &ffd, 1).validate(&instance).unwrap();

    let mut tl2 = ClusterTimelines::new(1, 1);
    let pq = place_batch(&mut tl2, &instance, &batch, 0.0);
    assert!(makespan_of(&instance, &pq) <= makespan_of(&instance, &ffd) + 1e-9);
}
