//! End-to-end integration tests: trace generation → scheduling → metrics,
//! across every algorithm in the library.

use mris::prelude::*;
use mris::trace::{AzureTrace, AzureTraceConfig};

fn algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Mris::default()),
        Box::new(Mris::with_config(MrisConfig {
            knapsack: KnapsackChoice::Greedy,
            ..Default::default()
        })),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Pq::new(SortHeuristic::Svf)),
        Box::new(Pq::new(SortHeuristic::Erf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
        Box::new(CaPq::default()),
    ]
}

fn azure_instance(n: usize, seed: u64) -> Instance {
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: n * 4,
        seed,
        ..Default::default()
    });
    trace.sample_instance(4, 1)
}

#[test]
fn every_algorithm_produces_feasible_online_schedules() {
    let instance = azure_instance(400, 11);
    for algo in algorithms() {
        let schedule = algo.schedule(&instance, 4);
        schedule
            .validate(&instance)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        assert!(schedule.is_complete(), "{}", algo.name());
        // validate() already checks S_j >= r_j; also check the objective is
        // finite and positive.
        let awct = schedule.awct(&instance);
        assert!(
            awct.is_finite() && awct > 0.0,
            "{}: awct {awct}",
            algo.name()
        );
    }
}

#[test]
fn schedulers_are_deterministic() {
    let instance = azure_instance(300, 5);
    for algo in algorithms() {
        let a = algo.schedule(&instance, 3);
        let b = algo.schedule(&instance, 3);
        assert_eq!(a, b, "{} is not deterministic", algo.name());
    }
}

#[test]
fn makespans_respect_lemma_6_2_lower_bound() {
    // Lemma 6.2: every feasible schedule's makespan is at least V/(R*M)
    // (and trivially at least max r_j + p_j over scheduled jobs).
    let instance = azure_instance(300, 7);
    for machines in [1usize, 3, 8] {
        let lb = instance.makespan_lower_bound(machines);
        for algo in algorithms() {
            let schedule = algo.schedule(&instance, machines);
            let makespan = schedule.makespan(&instance);
            assert!(
                makespan >= lb - 1e-6,
                "{} on {machines} machines: makespan {makespan} < lower bound {lb}",
                algo.name()
            );
        }
    }
}

/// Theorem 6.8 / Lemma 6.9 (necessary condition): MRIS's AWCT and makespan
/// are within the proven factor of *any* feasible schedule's value, since
/// every feasible schedule upper-bounds OPT.
#[test]
fn mris_within_competitive_ceiling_of_best_known() {
    let instance = azure_instance(250, 13);
    let machines = 3;
    let mris = Mris::default();
    let ceiling = mris.config.competitive_ratio(instance.num_resources());

    let mris_schedule = mris.schedule(&instance, machines);
    let mris_awct = mris_schedule.awct(&instance);
    let mris_makespan = mris_schedule.makespan(&instance);

    let mut best_awct = f64::INFINITY;
    let mut best_makespan = f64::INFINITY;
    for algo in algorithms() {
        let s = algo.schedule(&instance, machines);
        best_awct = best_awct.min(s.awct(&instance));
        best_makespan = best_makespan.min(s.makespan(&instance));
    }
    assert!(
        mris_awct <= ceiling * best_awct + 1e-6,
        "AWCT {mris_awct} exceeds {ceiling} x best {best_awct}"
    );
    assert!(
        mris_makespan <= ceiling * best_makespan + 1e-6,
        "makespan {mris_makespan} exceeds {ceiling} x best {best_makespan}"
    );
}

#[test]
fn queuing_delays_are_nonnegative_and_capq_waits_longest() {
    let instance = azure_instance(300, 3);
    let machines = 4;
    let mut means = Vec::new();
    for algo in algorithms() {
        let schedule = algo.schedule(&instance, machines);
        let delays = schedule.queuing_delays(&instance);
        assert!(delays.iter().all(|&d| d >= -1e-9), "{}", algo.name());
        means.push((
            algo.name(),
            delays.iter().sum::<f64>() / delays.len() as f64,
        ));
    }
    // CA-PQ's mean queuing delay dominates the event-driven schedulers'
    // (it waits for the last arrival).
    let capq = means
        .iter()
        .find(|(n, _)| n.starts_with("CA-PQ"))
        .unwrap()
        .1;
    let pq = means.iter().find(|(n, _)| n == "PQ-WSJF").unwrap().1;
    assert!(capq > pq, "CA-PQ {capq} should exceed PQ {pq}");
}

#[test]
fn mris_is_fairer_than_pq_under_load() {
    // Section 7.5.2's fairness reading, quantified: on a loaded instance
    // MRIS spreads slowdowns more evenly than the event-driven baselines.
    use mris::metrics::fairness_report;
    let instance = azure_instance(500, 21);
    let machines = 2;
    let mris = fairness_report(&instance, &Mris::default().schedule(&instance, machines));
    let pq = fairness_report(
        &instance,
        &Pq::new(SortHeuristic::Wsjf).schedule(&instance, machines),
    );
    assert!(
        mris.jains_slowdown > pq.jains_slowdown,
        "MRIS Jain {} vs PQ Jain {}",
        mris.jains_slowdown,
        pq.jains_slowdown
    );
    assert!(mris.max_slowdown < pq.max_slowdown);
}

#[test]
fn more_machines_never_hurt_much() {
    // Sanity: going from 2 to 8 machines should improve (or at least not
    // drastically worsen) every algorithm's AWCT on a loaded instance.
    let instance = azure_instance(400, 17);
    for algo in algorithms() {
        let few = algo.schedule(&instance, 2).awct(&instance);
        let many = algo.schedule(&instance, 8).awct(&instance);
        assert!(
            many <= few * 1.05 + 1e-9,
            "{}: awct {many} on 8 machines vs {few} on 2",
            algo.name()
        );
    }
}
