//! Integration tests on the paper's synthetic adversarial inputs.

use mris::prelude::*;
use mris::trace::{lemma41_instance, lemma41_reference_awct, patience_instance, PatienceConfig};

/// Lemma 4.1: the PQ class's competitive ratio grows linearly in N, while
/// MRIS stays below its proven ceiling.
#[test]
fn lemma_4_1_pq_ratio_grows_linearly() {
    let release_eps = 0.1;
    let mut previous_ratio = 0.0;
    for n in [16usize, 64, 256] {
        let instance = lemma41_instance(n, 2, release_eps);
        let reference = lemma41_reference_awct(n, release_eps);

        for pq in [
            Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
            Box::new(Tetris::default()),
            Box::new(BfExec),
        ] {
            let ratio = pq.schedule(&instance, 1).awct(&instance) / reference;
            // The proof gives ratio ~ Np/(N + p) / something; with p = N the
            // ratio is ~ N/2. Check linear growth with slack.
            assert!(
                ratio > n as f64 / 3.0,
                "{}: ratio {ratio} at n = {n} not Omega(N)",
                pq.name()
            );
        }

        let mris = Mris::default();
        let mris_ratio = mris.schedule(&instance, 1).awct(&instance) / reference;
        let ceiling = mris.config.competitive_ratio(2);
        assert!(
            mris_ratio <= ceiling,
            "MRIS ratio {mris_ratio} exceeds ceiling {ceiling} at n = {n}"
        );
        // And the PQ ratio strictly grows across the sweep.
        let pq_ratio = Pq::new(SortHeuristic::Wsjf)
            .schedule(&instance, 1)
            .awct(&instance)
            / reference;
        assert!(pq_ratio > previous_ratio);
        previous_ratio = pq_ratio;
    }
}

/// Figure 7: on the patience scenario MRIS achieves roughly a third of the
/// event-driven schedulers' AWCT, which all start the blocker at t = 0.
#[test]
fn figure_7_patience_gap() {
    let instance = patience_instance(&PatienceConfig {
        num_small: 800,
        ..Default::default()
    });
    let mris = Mris::default().schedule(&instance, 1);
    mris.validate(&instance).unwrap();
    let mris_awct = mris.awct(&instance);

    for algo in [
        Box::new(Pq::new(SortHeuristic::Wsjf)) as Box<dyn Scheduler>,
        Box::new(Tetris::default()),
        Box::new(BfExec),
    ] {
        let schedule = algo.schedule(&instance, 1);
        schedule.validate(&instance).unwrap();
        // Premature commitment: the blocker starts immediately...
        assert_eq!(
            schedule.get(JobId(0)).unwrap().start,
            0.0,
            "{}",
            algo.name()
        );
        // ...and AWCT is ~3x MRIS's (allow >= 2.5x for sampling noise).
        let ratio = schedule.awct(&instance) / mris_awct;
        assert!(
            ratio > 2.5,
            "{}: expected ~3x MRIS, got {ratio:.2}x",
            algo.name()
        );
    }

    // MRIS runs every small job before the blocker.
    let blocker_start = mris.get(JobId(0)).unwrap().start;
    for job in &instance.jobs()[1..] {
        assert!(mris.get(job.id).unwrap().start < blocker_start);
    }
}
