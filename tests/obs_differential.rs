//! Observability is passive by contract: installing a subscriber (with a
//! live JSONL sink) must not change a single placement for any registered
//! algorithm. This suite pins that bit-for-bit, plus the Prometheus snapshot
//! format and the disabled-path overhead gate.

use std::sync::Arc;

use mris::obs::{self, check_disabled_overhead, validate_exposition, JsonlEventSink, Obs};
use mris::obs::{MetricsRegistry, ObsReport};
use mris::prelude::*;
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, Rng};

/// Every concrete registered algorithm: the three MRIS knapsack variants,
/// two PQ heuristics, and the three non-PQ baselines.
const ALGORITHMS: [&str; 8] = [
    "mris",
    "mris-greedy",
    "mris-greedy-half",
    "pq-wsjf",
    "pq-wsvf",
    "tetris",
    "bf-exec",
    "ca-pq",
];

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

fn gen_rows(rng: &mut Rng) -> Vec<Row> {
    let n = rng.gen_range(1..16usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..10.0),
                rng.gen_range(1.0..5.0),
                rng.gen_range(0.5..4.0),
                vec![rng.gen_range(0.01..=1.0), rng.gen_range(0.01..=1.0)],
            )
        })
        .collect()
}

/// `None` for shrink candidates that broke the generator's invariants.
fn build_instance(rows: &[Row]) -> Option<Instance> {
    if rows.is_empty() || rows.iter().any(|(_, _, _, d)| d.len() != 2) {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(r, p, w, d)| Job::from_fractions(JobId(0), *r, *p, *w, d))
        .collect();
    Instance::from_unnumbered(jobs, 2).ok()
}

/// The tentpole differential property: for every registered algorithm the
/// schedule produced with a subscriber + JSONL sink installed is bit-identical
/// (`Schedule: PartialEq`, exact `f64` starts) to the one produced with no
/// subscriber. 48 cases, 8 algorithms each.
#[test]
fn obs_subscriber_never_changes_a_schedule() {
    check(
        "obs subscriber never changes a schedule",
        &Config::with_cases(48),
        |rng| (gen_rows(rng), rng.gen_range(1..4usize)),
        |(rows, machines)| {
            let Some(instance) = build_instance(rows) else {
                return Ok(());
            };
            let machines = *machines;
            let baselines: Vec<(&str, Schedule)> = ALGORITHMS
                .iter()
                .map(|name| {
                    let algo = algorithm_by_name(name).expect("registered algorithm resolves");
                    (*name, algo.schedule(&instance, machines))
                })
                .collect();
            let events: Vec<u8> = Vec::new();
            let obs = Arc::new(Obs::with_sink(Box::new(JsonlEventSink::new(events))));
            {
                let _guard = obs::install_guard(Arc::clone(&obs));
                for (name, baseline) in &baselines {
                    let algo = algorithm_by_name(name).expect("registered algorithm resolves");
                    let instrumented = algo.schedule(&instance, machines);
                    prop_assert!(
                        *baseline == instrumented,
                        "{} schedule changed under an installed subscriber",
                        name
                    );
                    instrumented
                        .validate(&instance)
                        .expect("schedule stays feasible");
                }
            }
            // The comparison is only meaningful if instrumentation actually
            // fired: the registry must have accumulated metrics.
            prop_assert!(
                !obs.registry().snapshot().is_empty(),
                "no metrics recorded — instrumentation did not fire"
            );
            Ok(())
        },
    );
}

/// Golden test for the Prometheus text rendering: a deterministic registry
/// renders byte-for-byte to the expected exposition, which also passes the
/// format checker.
#[test]
fn prometheus_snapshot_matches_golden() {
    let r = MetricsRegistry::new();
    r.gauge_set("mris_demo_epsilon", None, 0.125);
    r.histogram_record("mris_demo_latency_seconds", None, 0.5);
    r.histogram_record("mris_demo_latency_seconds", None, 0.5);
    r.histogram_record("mris_demo_latency_seconds", None, 2.0);
    r.counter_add("mris_demo_solves_total", Some(("solver", "cadp")), 2);
    r.counter_add("mris_demo_solves_total", Some(("solver", "dp")), 1);
    r.counter_add("mris_demo_total", None, 7);

    let golden = "\
# TYPE mris_demo_epsilon gauge
mris_demo_epsilon 0.125
# TYPE mris_demo_latency_seconds histogram
mris_demo_latency_seconds_bucket{le=\"5e-1\"} 2
mris_demo_latency_seconds_bucket{le=\"2e0\"} 3
mris_demo_latency_seconds_bucket{le=\"+Inf\"} 3
mris_demo_latency_seconds_sum 3
mris_demo_latency_seconds_count 3
# TYPE mris_demo_solves_total counter
mris_demo_solves_total{solver=\"cadp\"} 2
mris_demo_solves_total{solver=\"dp\"} 1
# TYPE mris_demo_total counter
mris_demo_total 7
";
    let rendered = r.render_prometheus();
    assert_eq!(rendered, golden);
    validate_exposition(&rendered).expect("golden snapshot passes the format checker");
    assert_eq!(ObsReport::from_registry(&r).num_families(), 4);
}

/// Negative test: the disabled-path overhead gate used by the `obs` bench
/// bin actually bites on a blown budget or a garbage measurement.
#[test]
fn disabled_overhead_gate_bites() {
    check_disabled_overhead(2.0, 100.0).expect("sub-budget measurement passes");
    let err = check_disabled_overhead(250.0, 100.0).expect_err("over-budget must fail");
    assert!(err.contains("exceeds budget"), "{err}");
    assert!(check_disabled_overhead(f64::NAN, 100.0).is_err());
    assert!(check_disabled_overhead(-1.0, 100.0).is_err());
}
