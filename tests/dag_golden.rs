//! Golden regression test for precedence-constrained (DAG) scheduling: a
//! hand-built diamond whose schedule and AWCT are derived by hand below,
//! on a uniform cluster and again on related-speed machines — plus the
//! registry's capability gate rejecting the one algorithm that cannot run
//! DAGs.

use mris::prelude::*;
use mris::registry::algorithm_for_workload;
use mris::types::RegistryError;

/// The diamond `0 -> {1, 2} -> 3` on 1 resource; every demand is 0.6, so
/// no two jobs ever share a machine.
///
/// * `J0`: release 0, p = 2, w = 1 — the source
/// * `J1`: release 0, p = 1, w = 2 — WSJF key p/w = 0.5
/// * `J2`: release 0, p = 3, w = 1 — WSJF key p/w = 3
/// * `J3`: release 0, p = 1, w = 4 — the sink
fn diamond() -> Instance {
    let mut b = InstanceBuilder::new(1);
    b.push_job(0.0, 2.0, 1.0, &[0.6]);
    b.push_job(0.0, 1.0, 2.0, &[0.6]);
    b.push_job(0.0, 3.0, 1.0, &[0.6]);
    b.push_job(0.0, 1.0, 4.0, &[0.6]);
    b.edge(JobId(0), JobId(1));
    b.edge(JobId(0), JobId(2));
    b.edge(JobId(1), JobId(3));
    b.edge(JobId(2), JobId(3));
    b.build().expect("diamond is acyclic")
}

fn assignment(s: &Schedule, j: u32) -> (usize, f64) {
    let a = s.get(JobId(j)).expect("job scheduled");
    (a.machine, a.start)
}

/// PQ-WSJF on 2 unit-speed machines:
///
/// * t = 0: only `J0` is gate-ready; it starts on machine 0, runs [0, 2).
/// * t = 2: `J0` completes, opening `J1` and `J2`. WSJF delivers `J1`
///   (key 0.5) before `J2` (key 3): `J1` on machine 0 [2, 3), `J2` on
///   machine 1 [2, 5) (0.6 + 0.6 > 1 keeps them apart).
/// * t = 5: `J2` completes (the last predecessor of `J3`); `J3` starts on
///   machine 0, runs [5, 6).
///
/// Completions 2, 3, 5, 6 — AWCT = (1·2 + 2·3 + 1·5 + 4·6) / 4 = **9.25**
/// exactly (all values float-exact, so `==` is legitimate).
#[test]
fn golden_diamond_on_uniform_machines() {
    let instance = diamond();
    let cluster = ClusterSpec::uniform(2);
    let algo = algorithm_for_workload("pq-wsjf", &instance, &cluster)
        .expect("pq-wsjf supports precedence");
    let schedule = algo
        .try_schedule_on(&instance, &cluster)
        .expect("diamond schedules");
    schedule.validate_on(&instance, &cluster).unwrap();
    assert_eq!(assignment(&schedule, 0), (0, 0.0));
    assert_eq!(assignment(&schedule, 1), (0, 2.0));
    assert_eq!(assignment(&schedule, 2), (1, 2.0));
    assert_eq!(assignment(&schedule, 3), (0, 5.0));
    assert_eq!(schedule.awct_on(&instance, &cluster), 9.25);
}

/// The same diamond on related machines, speeds [2, 1]: machine 0 runs
/// every job in half its nominal time.
///
/// * t = 0: `J0` on machine 0, effective time 2/2 = 1, runs [0, 1).
/// * t = 1: `J1` on machine 0 [1, 1.5); `J2` on machine 1 [1, 4).
/// * t = 4: `J2` completes; `J3` on machine 0 [4, 4.5).
///
/// Completions 1, 1.5, 4, 4.5 — AWCT = (1 + 3 + 4 + 18) / 4 = **6.5**.
#[test]
fn golden_diamond_on_related_machines() {
    let instance = diamond();
    let cluster = ClusterSpec::related(2, &[2.0, 1.0]);
    let algo = algorithm_for_workload("pq-wsjf", &instance, &cluster)
        .expect("pq-wsjf supports heterogeneous DAGs");
    let schedule = algo
        .try_schedule_on(&instance, &cluster)
        .expect("diamond schedules on related machines");
    schedule.validate_on(&instance, &cluster).unwrap();
    assert_eq!(assignment(&schedule, 0), (0, 0.0));
    assert_eq!(assignment(&schedule, 1), (0, 1.0));
    assert_eq!(assignment(&schedule, 2), (1, 1.0));
    assert_eq!(assignment(&schedule, 3), (0, 4.0));
    assert_eq!(schedule.awct_on(&instance, &cluster), 6.5);
}

/// CA-PQ's clairvoyant arrival oracle cannot see gate-release times, so
/// the registry's capability check rejects it on any DAG instance with a
/// typed error naming the feature.
#[test]
fn capability_gate_rejects_capq_on_dags() {
    let instance = diamond();
    let cluster = ClusterSpec::uniform(2);
    match algorithm_for_workload("ca-pq", &instance, &cluster) {
        Err(RegistryError::Unsupported { algorithm, .. }) => {
            assert_eq!(algorithm, "ca-pq");
        }
        Err(other) => panic!("expected Unsupported for ca-pq on a DAG, got {other}"),
        Ok(_) => panic!("ca-pq unexpectedly accepted a DAG workload"),
    }
}
