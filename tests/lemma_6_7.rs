//! Property test of Lemma 6.7, the exchange inequality used in the
//! Theorem 6.8 proof: if two non-negative sequences have equal totals and
//! the first majorizes the second on every prefix, then weighting by any
//! non-decreasing non-negative sequence favors the second.

use proptest::prelude::*;

/// Direct statement of Lemma 6.7.
fn lemma_6_7_holds(x: &[f64], y: &[f64], z: &[f64]) -> bool {
    let lhs: f64 = z.iter().zip(x).map(|(a, b)| a * b).sum();
    let rhs: f64 = z.iter().zip(y).map(|(a, b)| a * b).sum();
    lhs <= rhs + 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn exchange_inequality(
        raw in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..12),
        z_increments in prop::collection::vec(0.0f64..5.0, 12),
    ) {
        // Build y freely, then construct x satisfying the hypotheses:
        // equal total and prefix-domination. We do that by moving mass of y
        // earlier: x_k gets y's mass weighted toward the front.
        let y: Vec<f64> = raw.iter().map(|p| p.0).collect();
        let total: f64 = y.iter().sum();
        let k = y.len();
        // Front-loaded x: sort y's entries in decreasing order. Prefixes of
        // a decreasing rearrangement dominate prefixes of any order of the
        // same multiset.
        let mut x = y.clone();
        x.sort_by(|a, b| b.total_cmp(a));
        // Sanity: hypotheses hold.
        let mut px = 0.0;
        let mut py = 0.0;
        for i in 0..k {
            px += x[i];
            py += y[i];
            prop_assert!(px >= py - 1e-9);
        }
        prop_assert!((px - total).abs() < 1e-9);

        // Non-decreasing non-negative z from increments.
        let mut z = Vec::with_capacity(k);
        let mut acc = 0.0;
        for i in 0..k {
            acc += z_increments[i % z_increments.len()];
            z.push(acc);
        }

        prop_assert!(lemma_6_7_holds(&x, &y, &z),
            "lemma violated: x={x:?} y={y:?} z={z:?}");
    }

    /// The inequality can fail without the prefix-domination hypothesis —
    /// guarding against the test above being vacuous.
    #[test]
    fn hypothesis_is_necessary(a in 0.1f64..5.0, b in 0.1f64..5.0) {
        // x = [0, a+b], y = [a+b, 0] violates prefix domination for x;
        // with z = [0, 1], sum z*x = a+b > 0 = sum z*y.
        let x = [0.0, a + b];
        let y = [a + b, 0.0];
        let z = [0.0, 1.0];
        prop_assert!(!lemma_6_7_holds(&x, &y, &z));
    }
}
