//! Property test of Lemma 6.7, the exchange inequality used in the
//! Theorem 6.8 proof: if two non-negative sequences have equal totals and
//! the first majorizes the second on every prefix, then weighting by any
//! non-decreasing non-negative sequence favors the second.

use mris_rng::prop::{check, Config};
use mris_rng::prop_assert;

/// Direct statement of Lemma 6.7.
fn lemma_6_7_holds(x: &[f64], y: &[f64], z: &[f64]) -> bool {
    let lhs: f64 = z.iter().zip(x).map(|(a, b)| a * b).sum();
    let rhs: f64 = z.iter().zip(y).map(|(a, b)| a * b).sum();
    lhs <= rhs + 1e-6
}

#[test]
fn exchange_inequality() {
    check(
        "exchange inequality",
        &Config::with_cases(512),
        |rng| {
            let n = rng.gen_range(1..12usize);
            let y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
            let z_increments: Vec<f64> = (0..12).map(|_| rng.gen_range(0.0..5.0)).collect();
            (y, z_increments)
        },
        |(y, z_increments)| {
            if y.is_empty() || z_increments.is_empty() {
                return Ok(());
            }
            // Build y freely, then construct x satisfying the hypotheses:
            // equal total and prefix-domination. We do that by moving mass of
            // y earlier: x_k gets y's mass weighted toward the front.
            let total: f64 = y.iter().sum();
            let k = y.len();
            // Front-loaded x: sort y's entries in decreasing order. Prefixes
            // of a decreasing rearrangement dominate prefixes of any order of
            // the same multiset.
            let mut x = y.clone();
            x.sort_by(|a, b| b.total_cmp(a));
            // Sanity: hypotheses hold.
            let mut px = 0.0;
            let mut py = 0.0;
            for i in 0..k {
                px += x[i];
                py += y[i];
                prop_assert!(px >= py - 1e-9);
            }
            prop_assert!((px - total).abs() < 1e-9);

            // Non-decreasing non-negative z from increments.
            let mut z = Vec::with_capacity(k);
            let mut acc = 0.0;
            for i in 0..k {
                acc += z_increments[i % z_increments.len()];
                z.push(acc);
            }

            prop_assert!(
                lemma_6_7_holds(&x, y, &z),
                "lemma violated: x={x:?} y={y:?} z={z:?}"
            );
            Ok(())
        },
    );
}

/// The inequality can fail without the prefix-domination hypothesis —
/// guarding against the test above being vacuous.
#[test]
fn hypothesis_is_necessary() {
    check(
        "hypothesis is necessary",
        &Config::with_cases(512),
        |rng| (rng.gen_range(0.1..5.0), rng.gen_range(0.1..5.0)),
        |&(a, b)| {
            // x = [0, a+b], y = [a+b, 0] violates prefix domination for x;
            // with z = [0, 1], sum z*x = a+b > 0 = sum z*y.
            let x = [0.0, a + b];
            let y = [a + b, 0.0];
            let z = [0.0, 1.0];
            prop_assert!(!lemma_6_7_holds(&x, &y, &z));
            Ok(())
        },
    );
}
