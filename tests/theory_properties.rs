//! Property-based tests pinning the paper's theoretical results on random
//! instances.

use mris::core::{
    batch_makespan_bound, best_list_schedule, max_weight_by_deadline, place_batch, Mris,
};
use mris::prelude::*;
use mris::sim::ClusterTimelines;
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

/// Random small instances: up to 24 jobs, 1-3 resources, generated as
/// `(num_resources, rows)` so the row list shrinks while `r` stays fixed.
fn gen_case(rng: &mut Rng) -> (usize, Vec<Row>) {
    let r = rng.gen_range(1..=3usize);
    let n = rng.gen_range(1..24usize);
    let rows = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..20.0),
                rng.gen_range(1.0..8.0),
                rng.gen_range(0.0..5.0),
                (0..r).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            )
        })
        .collect();
    (r, rows)
}

/// `None` for shrink candidates that broke the generator's invariants.
fn build_instance(r: usize, rows: &[Row]) -> Option<Instance> {
    if rows.is_empty() || !(1..=3).contains(&r) || rows.iter().any(|(_, _, _, d)| d.len() != r) {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(rel, p, w, d)| Job::from_fractions(JobId(0), *rel, *p, *w, d))
        .collect();
    Instance::from_unnumbered(jobs, r).ok()
}

fn all_algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Mris::default()),
        Box::new(Pq::new(SortHeuristic::Wsjf)),
        Box::new(Pq::new(SortHeuristic::Svf)),
        Box::new(Tetris::default()),
        Box::new(BfExec),
        Box::new(CaPq::default()),
    ]
}

/// Every algorithm produces a complete, feasible, online-respecting
/// schedule on arbitrary instances and machine counts.
#[test]
fn schedules_always_feasible() {
    check(
        "schedules always feasible",
        &Config::with_cases(64),
        |rng| (gen_case(rng), rng.gen_range(1..5usize)),
        |((r, rows), machines)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            for algo in all_algorithms() {
                let schedule = algo.schedule(&instance, *machines);
                prop_assert!(
                    schedule.validate(&instance).is_ok(),
                    "{} produced an infeasible schedule",
                    algo.name()
                );
            }
            Ok(())
        },
    );
}

/// Lemma 6.2: makespan >= V/(R*M) for every algorithm (they are all
/// feasible schedules, so the lower bound binds them too).
#[test]
fn lemma_6_2_volume_lower_bound() {
    check(
        "lemma 6.2 volume lower bound",
        &Config::with_cases(64),
        |rng| (gen_case(rng), rng.gen_range(1..5usize)),
        |((r, rows), machines)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            let bound = instance.total_volume() / (instance.num_resources() * machines) as f64;
            for algo in all_algorithms() {
                let makespan = algo.schedule(&instance, *machines).makespan(&instance);
                prop_assert!(
                    makespan >= bound - 1e-6,
                    "{}: {makespan} < {bound}",
                    algo.name()
                );
            }
            Ok(())
        },
    );
}

/// Lemma 6.3: the offline PQ-with-backfilling subroutine schedules any
/// batch on an empty cluster within max(2 p_max, 2 V / M).
#[test]
fn lemma_6_3_pq_makespan_bound() {
    check(
        "lemma 6.3 pq makespan bound",
        &Config::with_cases(64),
        |rng| (gen_case(rng), rng.gen_range(1..5usize)),
        |((r, rows), machines)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            let mut timelines = ClusterTimelines::new(*machines, instance.num_resources());
            let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
            let placements = place_batch(&mut timelines, &instance, &batch, 0.0);
            let makespan = placements
                .iter()
                .map(|&(j, _, s)| s + instance.job(j).proc_time)
                .fold(0.0_f64, f64::max);
            let bound = batch_makespan_bound(&instance, &batch, *machines);
            prop_assert!(makespan <= bound + 1e-6, "{makespan} > {bound}");
            Ok(())
        },
    );
}

/// Theorem 6.8 (necessary condition): MRIS's AWCT is at most
/// 8R(1 + eps) times the best AWCT any implemented algorithm achieves
/// (which upper-bounds OPT). Same for makespan via Lemma 6.9.
#[test]
fn theorem_6_8_ceiling_vs_best_known() {
    check(
        "theorem 6.8 ceiling vs best known",
        &Config::with_cases(64),
        |rng| (gen_case(rng), rng.gen_range(1..4usize)),
        |((r, rows), machines)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            let mris = Mris::default();
            let ceiling = mris.config.competitive_ratio(instance.num_resources());
            let s = mris.schedule(&instance, *machines);
            let (awct, makespan) = (s.awct(&instance), s.makespan(&instance));
            let mut best_awct = f64::INFINITY;
            let mut best_makespan = f64::INFINITY;
            for algo in all_algorithms() {
                let s = algo.schedule(&instance, *machines);
                best_awct = best_awct.min(s.awct(&instance));
                best_makespan = best_makespan.min(s.makespan(&instance));
            }
            prop_assert!(
                awct <= ceiling * best_awct + 1e-6,
                "AWCT {awct} > {ceiling} x {best_awct}"
            );
            prop_assert!(
                makespan <= ceiling * best_makespan + 1e-6,
                "makespan {makespan} > {ceiling} x {best_makespan}"
            );
            Ok(())
        },
    );
}

/// Theorem 6.8 against the exhaustive small-instance oracle: the best
/// list schedule over all permutations upper-bounds OPT much more
/// tightly than any single heuristic, and MRIS stays within the proven
/// ceiling of it.
#[test]
fn theorem_6_8_ceiling_vs_permutation_oracle() {
    check(
        "theorem 6.8 ceiling vs permutation oracle",
        &Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(1..7usize);
            let rows: Vec<Row> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..6.0),
                        rng.gen_range(1.0..4.0),
                        rng.gen_range(0.5..3.0),
                        vec![rng.gen_range(0.05..=1.0), rng.gen_range(0.05..=1.0)],
                    )
                })
                .collect();
            (rows, rng.gen_range(1..3usize))
        },
        |(rows, machines)| {
            let Some(instance) = build_instance(2, rows) else {
                return Ok(());
            };
            let mris = Mris::default();
            let ceiling = mris.config.competitive_ratio(2);
            let mris_awct = mris.schedule(&instance, *machines).awct(&instance);
            let oracle = best_list_schedule(&instance, *machines);
            oracle.validate(&instance).unwrap();
            prop_assert!(
                mris_awct <= ceiling * oracle.awct(&instance) + 1e-6,
                "MRIS {mris_awct} > {ceiling} x oracle {}",
                oracle.awct(&instance)
            );
            Ok(())
        },
    );
}

/// The future-work deadline scheduler (Section 8) keeps its guarantee:
/// every selected job finishes by the deadline, the partial schedule is
/// capacity-feasible, and a generous deadline selects every job.
#[test]
fn deadline_scheduler_guarantee() {
    check(
        "deadline scheduler guarantee",
        &Config::with_cases(64),
        |rng| {
            (
                gen_case(rng),
                rng.gen_range(1..4usize),
                rng.gen_range(1.0..40.0),
                rng.gen_range(0.1..0.9),
            )
        },
        |((r, rows), machines, deadline, eps)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            let machines = *machines;
            let batch: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
            let sel = max_weight_by_deadline(&instance, machines, &batch, *deadline, *eps);
            prop_assert!(sel.makespan <= deadline + 1e-6);
            // Feasibility of the partial schedule: validate a sub-instance
            // with only the selected jobs.
            let sub_jobs: Vec<Job> = sel
                .selected
                .iter()
                .map(|&j| {
                    let mut job = instance.job(j).clone();
                    job.release = 0.0; // batch semantics: scheduled from time 0
                    job
                })
                .collect();
            if !sub_jobs.is_empty() {
                let sub = Instance::from_unnumbered(sub_jobs, instance.num_resources()).unwrap();
                let mut sub_schedule = Schedule::new(sub.len(), machines);
                for (idx, &j) in sel.selected.iter().enumerate() {
                    let a = sel.schedule.get(j).unwrap();
                    sub_schedule
                        .assign(JobId(idx as u32), a.machine, a.start)
                        .unwrap();
                }
                prop_assert!(sub_schedule.validate(&sub).is_ok());
            }
            // A deadline beyond everything selects everything with weight > 0.
            let generous = max_weight_by_deadline(&instance, machines, &batch, 1e9, 0.5);
            let positive: Vec<JobId> = instance
                .jobs()
                .iter()
                .filter(|j| j.weight > 0.0)
                .map(|j| j.id)
                .collect();
            for j in positive {
                prop_assert!(generous.selected.contains(&j));
            }
            Ok(())
        },
    );
}

/// MRIS per-iteration volume budget (Lemma 6.5 machinery): every batch's
/// volume is at most (1 + eps) * zeta_k.
#[test]
fn mris_iteration_volume_budget() {
    check(
        "mris iteration volume budget",
        &Config::with_cases(64),
        |rng| (gen_case(rng), rng.gen_range(1..4usize)),
        |((r, rows), machines)| {
            let Some(instance) = build_instance(*r, rows) else {
                return Ok(());
            };
            let mris = Mris::default();
            let (_, log) = mris.schedule_with_log(&instance, *machines);
            for it in &log {
                prop_assert!(
                    it.batch_volume <= (1.0 + mris.config.epsilon) * it.zeta + 1e-6,
                    "iteration {} volume {} > budget {}",
                    it.k,
                    it.batch_volume,
                    (1.0 + mris.config.epsilon) * it.zeta
                );
                prop_assert!(it.scheduled <= it.eligible);
            }
            let scheduled: usize = log.iter().map(|it| it.scheduled).sum();
            prop_assert_eq!(scheduled, instance.len());
            Ok(())
        },
    );
}
