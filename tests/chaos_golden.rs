//! Golden regression test for the fault-injection harness: a tiny
//! hand-built instance with one injected failure, whose schedule, fault
//! log, and AWCT are all derived by hand below — plus a negative test
//! proving the [`FaultLog::verify`] invariant checker actually bites.

use mris::registry::online_policy_by_name;
use mris::sim::{run_online_chaos, FaultPlan};
use mris::types::{FaultEvent, FaultTarget, Instance, Job, JobId, RestartSemantics};

/// Two jobs on one machine under PQ-WSJF, with the machine failing once.
///
/// Instance (1 resource, capacity 1.0):
///
/// * `J0`: release 0, p = 4, w = 1, demand 0.5 — WSJF key p/w = 4
/// * `J1`: release 0, p = 2, w = 1, demand 0.5 — WSJF key p/w = 2
///
/// Failure-free, PQ starts both at t = 0 (0.5 + 0.5 fills the machine).
/// We inject `FaultEvent { at: 1, downtime: 2, Machine(0) }`:
///
/// * t = 0: both arrive, both placed at 0.
/// * t = 1: machine 0 fails until t = 3. Both jobs are mid-run, so both
///   are killed and re-released at t = 1 (re_release count 1 each). PQ
///   re-queues them, but the only machine is down — nothing places.
/// * t = 3: machine 0 recovers and appears as freed capacity. PQ scans
///   its queue in WSJF order (J1 key 2 before J0 key 4); both fit
///   together, so both start at t = 3.
/// * Completions: J1 runs [3, 5), J0 runs [3, 7).
///
/// Hand-computed objective: C_{J1} = 5, C_{J0} = 7, so
/// AWCT = (1·5 + 1·7) / 2 = **6.0** exactly (all values are
/// floating-point-exact, so `==` is legitimate).
fn golden_run() -> (Instance, mris::sim::ChaosOutcome) {
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5]),
        Job::from_fractions(JobId(1), 0.0, 2.0, 1.0, &[0.5]),
    ];
    let instance = Instance::new(jobs, 1).unwrap();
    let plan = FaultPlan::from_events(vec![FaultEvent {
        at: 1.0,
        downtime: 2.0,
        target: FaultTarget::Machine(0),
    }]);
    let mut policy = online_policy_by_name("pq-wsjf", &instance, 1).unwrap();
    let outcome = run_online_chaos(
        &instance,
        1,
        policy.as_mut(),
        &plan,
        RestartSemantics::FullRestart,
    )
    .unwrap();
    (instance, outcome)
}

#[test]
fn golden_single_failure_schedule_and_awct() {
    let (instance, outcome) = golden_run();
    let schedule = &outcome.schedule;
    assert!(schedule.is_complete());
    schedule.validate(&instance).unwrap();

    // Final placements: both restarted at the recovery instant.
    let a0 = schedule.get(JobId(0)).unwrap();
    let a1 = schedule.get(JobId(1)).unwrap();
    assert_eq!((a0.machine, a0.start), (0, 3.0));
    assert_eq!((a1.machine, a1.start), (0, 3.0));

    // AWCT = (1*7 + 1*5) / 2, exactly representable.
    assert_eq!(schedule.awct(&instance), 6.0);

    // Fault log: one failure at t=1 killing both jobs, one recovery at
    // t=3, each job re-released exactly once.
    assert_eq!(outcome.log.failures.len(), 1);
    let failure = &outcome.log.failures[0];
    assert_eq!(failure.at, 1.0);
    assert_eq!(failure.machine, 0);
    assert_eq!(failure.recover_at, 3.0);
    assert_eq!(failure.killed, vec![JobId(0), JobId(1)]);
    assert_eq!(outcome.log.recoveries, vec![(3.0, 0)]);
    assert_eq!(outcome.log.re_releases, vec![1, 1]);
    assert_eq!(outcome.log.total_re_releases(), 2);

    // Completed runs [3,5) and [3,7) are disjoint from the downtime [1,3).
    assert_eq!(outcome.log.completions.len(), 2);
    outcome.log.verify().unwrap();
}

/// The invariant checker must reject a log claiming a completed run inside
/// a downtime window — guarding against the checker rotting into a yes-man.
#[test]
fn invariant_checker_catches_run_across_downtime() {
    let (_, outcome) = golden_run();
    let mut broken = outcome.log.clone();
    // Pretend J1's final run started at t=2, inside machine 0's downtime
    // [1, 3). A correct harness can never produce this.
    let idx = broken
        .completions
        .iter()
        .position(|c| c.job == JobId(1))
        .unwrap();
    broken.completions[idx].start = 2.0;
    let violation = broken.verify().unwrap_err();
    assert_eq!(violation.machine, 0);
    assert_eq!(violation.job, JobId(1));
    let message = violation.to_string();
    assert!(message.contains("down"), "{message}");
}
