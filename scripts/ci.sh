#!/usr/bin/env bash
# Full local CI: formatting, lints, hermetic offline build, and tests.
#
# The workspace has no external dependencies, so both the build and the
# tests must succeed with an empty cargo registry cache and no network —
# `--offline` enforces that invariant on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo clippy -p mris-bench --features criterion --benches --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# The watermark-clamp regression test is compiled out of debug builds
# (`#[cfg(not(debug_assertions))]` — the debug path asserts instead of
# clamping), so the sim suite must also run in release mode.
echo "==> cargo test -q --release --offline -p mris-sim"
cargo test -q --release --offline -p mris-sim

echo "==> benches compile under --features criterion"
cargo build --offline -p mris-bench --features criterion --benches

echo "==> timeline bench smoke run + schema check"
mkdir -p results
cargo run --release --offline -p mris-bench --bin timeline -- \
  --smoke --out results/BENCH_timeline_smoke.json >/dev/null
for key in '"bench": "timeline"' '"mode": "smoke"' '"workloads"' \
  '"name": "trace_replay"' '"name": "synthetic_churn"' '"name": "parallel_scan"' \
  '"ops_per_sec"' '"baseline_ops_per_sec"' '"speedup"' '"segments"' \
  '"query_ns_p50"' '"query_ns_p99"'; do
  grep -qF "$key" results/BENCH_timeline_smoke.json \
    || { echo "BENCH_timeline_smoke.json is missing $key" >&2; exit 1; }
done

echo "==> scale bench smoke run + schema check + shard-pool gate"
# --gate fails the run unless the sharded (worker-pool) scan is at least
# as fast as the sequential scan at 1000 machines: the tripwire against
# reintroducing per-query overhead on the wide-cluster path.
cargo run --release --offline -p mris-bench --bin scale -- \
  --smoke --gate --out results/BENCH_scale_smoke.json >/dev/null
for key in '"bench": "scale"' '"mode": "smoke"' '"scan"' '"placement"' \
  '"machines": 64' '"machines": 1000' '"sharded_ops_per_sec"' \
  '"sequential_ops_per_sec"' '"scoped_ops_per_sec"' \
  '"speedup_vs_sequential"' '"speedup_vs_scoped"' '"jobs_per_sec"' \
  '"shard_counters"' '"wakeups"' '"steals"' '"probes"'; do
  grep -qF "$key" results/BENCH_scale_smoke.json \
    || { echo "BENCH_scale_smoke.json is missing $key" >&2; exit 1; }
done

echo "==> chaos bench smoke run + schema check"
cargo run --release --offline -p mris-bench --bin chaos -- \
  --smoke --out results/BENCH_chaos_smoke.json >/dev/null
for key in '"bench": "chaos"' '"mode": "smoke"' '"restart"' '"rates"' \
  '"schedulers"' '"baseline_awct"' '"results"' '"rate"' '"awct"' \
  '"awct_inflation"' '"failures"' '"kills"' '"re_releases"'; do
  grep -qF "$key" results/BENCH_chaos_smoke.json \
    || { echo "BENCH_chaos_smoke.json is missing $key" >&2; exit 1; }
done

echo "==> workloads bench smoke run + schema check (DAGs x heterogeneous clusters)"
cargo run --release --offline -p mris-bench --bin workloads -- \
  --smoke --out results/BENCH_workloads_smoke.json >/dev/null
for key in '"bench": "workloads"' '"mode": "smoke"' '"families"' \
  '"clusters"' '"speeds"' '"independent"' '"chain"' '"fork-join"' \
  '"random-dag"' '"uniform"' '"related"' '"precedence_counters"' \
  '"mris_prec_gated_total"' '"mris_prec_ready_total"' \
  '"mris_prec_revoked_total"' '"grid"' '"edges"' '"supported"' \
  '"awct"' '"makespan"'; do
  grep -qF "$key" results/BENCH_workloads_smoke.json \
    || { echo "BENCH_workloads_smoke.json is missing $key" >&2; exit 1; }
done

echo "==> service bench smoke run + schema check"
cargo run --release --offline -p mris-bench --bin service -- \
  --smoke --out results/BENCH_service_smoke.json >/dev/null
for key in '"bench": "service"' '"mode": "smoke"' '"poisson_rate"' \
  '"schedulers"' '"process": "poisson"' '"process": "bursts"' \
  '"throughput_jobs_per_sec"' '"decision_latency_us"' '"p50"' '"p95"' \
  '"p99"' '"submitted"' '"completed"' '"epochs"' '"max_queue_depth"' \
  '"stage_breakdown"' '"stages"' '"grid"' '"filter"' '"solve"' '"probe"' \
  '"commit"' '"memo_hits"' '"memo_misses"' '"durability"' \
  '"journal_off_jobs_per_sec"' '"journal_on_jobs_per_sec"' \
  '"overhead_pct"' '"within_budget"' '"journal_bytes"' '"restore"' \
  '"regenerated"' '"clean_shutdown"' '"restore_seconds"' \
  '"net"' '"inproc_jobs_per_sec"' '"tcp_jobs_per_sec"' \
  '"tcp_vs_inproc_ratio"' '"submit_rtt_us"' '"fair_split"' \
  '"target_share": 0.75' '"measured_share"' '"within_5pct"'; do
  grep -qF "$key" results/BENCH_service_smoke.json \
    || { echo "BENCH_service_smoke.json is missing $key" >&2; exit 1; }
done

echo "==> durability suites in release (crash-restart equivalence + codec fuzz)"
cargo test -q --release --offline -p mris-service \
  --test crash_restart --test durability_codec

echo "==> net + tenancy suites in release (TCP ≡ in-process, frame fuzz, DRR split)"
cargo test -q --release --offline -p mris-net --test net_conservativity
cargo test -q --release --offline -p mris-service --test tenant_fairness

echo "==> CLI crash-restart smoke (serve --journal, torn tail, restore)"
DUR_TMP=$(mktemp -d)
trap 'rm -rf "$DUR_TMP"' EXIT
cargo run --release --offline -p mris-cli --bin mris -- generate \
  --jobs 80 --out "$DUR_TMP/trace.csv" >/dev/null
cargo run --release --offline -p mris-cli --bin mris -- serve \
  --trace "$DUR_TMP/trace.csv" --algo pq-wsjf --machines 3 \
  --journal "$DUR_TMP/wal.mrjl" --snapshot-dir "$DUR_TMP/snaps" \
  --snapshot-every 16 > "$DUR_TMP/serve.txt"
# Crash simulation: keep only the first two thirds of the journal.
WAL_BYTES=$(wc -c < "$DUR_TMP/wal.mrjl")
head -c $((WAL_BYTES * 2 / 3)) "$DUR_TMP/wal.mrjl" > "$DUR_TMP/torn.mrjl"
cargo run --release --offline -p mris-cli --bin mris -- restore \
  --trace "$DUR_TMP/trace.csv" --algo pq-wsjf --machines 3 \
  --journal "$DUR_TMP/torn.mrjl" --snapshot-every 16 > "$DUR_TMP/restore.txt"
grep -q 'shutdown    = crash' "$DUR_TMP/restore.txt" \
  || { echo "restore did not classify the torn journal as a crash" >&2; exit 1; }
SERVE_AWCT=$(grep '^AWCT' "$DUR_TMP/serve.txt")
grep -qF "$SERVE_AWCT" "$DUR_TMP/restore.txt" \
  || { echo "crash-restart AWCT diverged from the uncrashed serve" >&2; exit 1; }

echo "==> CLI loopback smoke (serve --listen, client submit, drain, AWCT grep)"
NET_TMP=$(mktemp -d)
trap 'rm -rf "$DUR_TMP" "$NET_TMP"' EXIT
cargo run --release --offline -p mris-cli --bin mris -- generate \
  --jobs 60 --out "$NET_TMP/trace.csv" >/dev/null
# Two tenants so the per-tenant metric families are live; the ephemeral
# port lands in --port-file once the door is open.
cargo run --release --offline -p mris-cli --bin mris -- serve \
  --trace "$NET_TMP/trace.csv" --algo pq-wsjf --machines 3 \
  --tenants 'alpha:tok-a:3.0,beta:tok-b:1.0' \
  --listen 127.0.0.1:0 --port-file "$NET_TMP/port.txt" \
  --metrics-path "$NET_TMP/metrics.prom" > "$NET_TMP/serve.txt" 2>/dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$NET_TMP/port.txt" ] && break
  sleep 0.1
done
[ -s "$NET_TMP/port.txt" ] || { echo "serve --listen never opened its door" >&2; exit 1; }
ADDR=$(cat "$NET_TMP/port.txt")
cargo run --release --offline -p mris-cli --bin mris -- client submit \
  --connect "$ADDR" --trace "$NET_TMP/trace.csv" --token tok-a > "$NET_TMP/submit.txt"
grep -q 'accepted 60, rejected 0' "$NET_TMP/submit.txt" \
  || { echo "client submit did not admit the whole trace" >&2; exit 1; }
cargo run --release --offline -p mris-cli --bin mris -- client drain \
  --connect "$ADDR" --token tok-b > "$NET_TMP/drain.txt"
wait "$SERVE_PID" || { echo "serve --listen exited non-zero" >&2; exit 1; }
grep -q '^AWCT' "$NET_TMP/drain.txt" \
  || { echo "client drain printed no AWCT" >&2; exit 1; }
SERVE_AWCT=$(grep '^AWCT' "$NET_TMP/serve.txt")
grep -qF "$SERVE_AWCT" "$NET_TMP/drain.txt" \
  || { echo "client-side AWCT diverged from the server's report" >&2; exit 1; }
grep -q 'fault log verified OK' "$NET_TMP/drain.txt" \
  || { echo "client drain skipped fault-log verification" >&2; exit 1; }
for family in mris_net_connections_total mris_net_frames_rx_total \
  mris_net_frames_tx_total mris_net_bytes_rx_total mris_net_bytes_tx_total \
  mris_tenant_admitted_total mris_tenant_queued_demand_total; do
  grep -q "^# TYPE $family " "$NET_TMP/metrics.prom" \
    || { echo "serve --listen metrics are missing the $family family" >&2; exit 1; }
done

echo "==> obs bench smoke run + schema check"
cargo run --release --offline -p mris-bench --bin obs -- \
  --smoke --out results/BENCH_obs_smoke.json >/dev/null
for key in '"bench": "obs"' '"mode": "smoke"' '"disabled_path"' \
  '"counter_ns_per_op"' '"span_ns_per_op"' '"budget_ns_per_op"' \
  '"trace_replay"' '"metrics_overhead_pct"' '"disabled_repeat_delta_pct"' \
  '"within_budget"' '"instrumented_run"' '"metric_families"' \
  '"snapshot_valid": true'; do
  grep -qF "$key" results/BENCH_obs_smoke.json \
    || { echo "BENCH_obs_smoke.json is missing $key" >&2; exit 1; }
done
# The bench writes its format-validated Prometheus snapshot next to the
# JSON; require every instrumented subsystem's metric family to be present.
for family in mris_dispatcher_placements_total mris_knapsack_solves_total \
  mris_timeline_probes_total mris_timeline_commits_total \
  mris_service_admitted_total mris_service_epochs_total \
  mris_service_decision_latency_seconds mris_schedule_seconds \
  mris_epoch_grid_seconds mris_epoch_filter_seconds mris_epoch_solve_seconds \
  mris_epoch_probe_seconds mris_epoch_commit_seconds \
  mris_epoch_memo_misses_total mris_journal_appends_total \
  mris_journal_bytes_total mris_journal_fsyncs_total mris_snapshot_seconds \
  mris_restore_seconds; do
  grep -q "^# TYPE $family " results/BENCH_obs_smoke.prom \
    || { echo "BENCH_obs_smoke.prom is missing the $family family" >&2; exit 1; }
done

echo "CI OK"
