#!/usr/bin/env bash
# Full local CI: formatting, lints, hermetic offline build, and tests.
#
# The workspace has no external dependencies, so both the build and the
# tests must succeed with an empty cargo registry cache and no network —
# `--offline` enforces that invariant on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo clippy -p mris-bench --features criterion --benches --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> benches compile under --features criterion"
cargo build --offline -p mris-bench --features criterion --benches

echo "CI OK"
