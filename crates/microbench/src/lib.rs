//! An in-tree, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The real `criterion` crate lives on crates.io, which the target build
//! environment cannot reach. `mris-bench` therefore depends on this crate
//! under the name `criterion` (a Cargo dependency rename), behind an
//! off-by-default `criterion` feature — the bench sources keep their
//! `use criterion::...` imports unchanged.
//!
//! Supported surface:
//!
//! * [`Criterion`]: `default()`, `sample_size`, `warm_up_time`,
//!   `measurement_time`, `benchmark_group`, `bench_function`,
//!   `final_summary`.
//! * [`BenchmarkGroup`]: `bench_function`, `bench_with_input`, `finish`.
//! * [`Bencher::iter`], [`BenchmarkId::new`],
//!   [`BenchmarkId::from_parameter`], and [`criterion_main!`].
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, sizes a
//! batch so one sample lasts roughly `measurement_time / sample_size`,
//! then records `sample_size` samples of mean-time-per-iteration and
//! prints mean / median / min / max. This is deliberately simpler than
//! criterion (no outlier analysis, no plots) but stable enough to compare
//! runs of the deterministic workloads benched here.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

struct BenchResult {
    id: String,
    mean: Duration,
    median: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_secs(1),
            measurement_time: Duration::from_secs(3),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total target measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render();
        self.run_one(id, &mut f);
        self
    }

    /// Prints the collected results table. Call once at the end of `main`.
    pub fn final_summary(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let width = self
            .results
            .iter()
            .map(|r| r.id.len())
            .max()
            .unwrap_or(0)
            .max(9);
        println!(
            "\n{:<width$}  {:>12} {:>12} {:>12} {:>12}  {:>8}",
            "benchmark", "mean", "median", "min", "max", "iters"
        );
        for r in &self.results {
            println!(
                "{:<width$}  {:>12} {:>12} {:>12} {:>12}  {:>8}",
                r.id,
                fmt_duration(r.mean),
                fmt_duration(r.median),
                fmt_duration(r.min),
                fmt_duration(r.max),
                r.iters_per_sample,
            );
        }
        self.results.clear();
    }

    fn run_one<F>(&mut self, id: String, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: Mode::Warmup {
                deadline: Instant::now() + self.warm_up_time,
                iters_done: 0,
                elapsed: Duration::ZERO,
            },
        };
        f(&mut bencher);
        let per_iter = match bencher.mode {
            Mode::Warmup {
                iters_done,
                elapsed,
                ..
            } => {
                if iters_done == 0 {
                    eprintln!("{id}: benchmark closure never called iter(); skipping");
                    return;
                }
                elapsed / iters_done as u32
            }
            _ => unreachable!("bencher left warm-up mode on its own"),
        };

        // Size a sample so sample_size samples fill measurement_time.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                mode: Mode::Measure {
                    iters: iters_per_sample,
                    elapsed: Duration::ZERO,
                },
            };
            f(&mut bencher);
            let elapsed = match bencher.mode {
                Mode::Measure { elapsed, .. } => elapsed,
                _ => unreachable!("bencher left measure mode on its own"),
            };
            samples.push(elapsed / iters_per_sample as u32);
        }
        samples.sort();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let result = BenchResult {
            id: id.clone(),
            mean,
            median: samples[samples.len() / 2],
            min: samples[0],
            max: samples[samples.len() - 1],
            iters_per_sample,
        };
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_duration(result.min),
            fmt_duration(result.mean),
            fmt_duration(result.max)
        );
        self.results.push(result);
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().render());
        self.criterion.run_one(id, &mut f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.render());
        self.criterion
            .run_one(id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

enum Mode {
    Warmup {
        deadline: Instant,
        iters_done: u64,
        elapsed: Duration,
    },
    Measure {
        iters: u64,
        elapsed: Duration,
    },
}

/// Timer handle passed to benchmark closures; mirrors `criterion::Bencher`.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times repeated calls of `routine` according to the current phase.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::Warmup {
                deadline,
                iters_done,
                elapsed,
            } => loop {
                let start = Instant::now();
                std::hint::black_box(routine());
                *elapsed += start.elapsed();
                *iters_done += 1;
                if Instant::now() >= *deadline {
                    break;
                }
            },
            Mode::Measure { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    std::hint::black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }
}

/// Identifier combining a function name and an optional parameter, mirrors
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier that is only a parameter (the group supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Generates `fn main` that runs the given bench entry points; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "sum");
        assert!(c.results[0].iters_per_sample >= 1);
        c.final_summary();
        assert!(c.results.is_empty());
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6));
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("g", 7), &3u64, |b, &x| b.iter(|| x * 2));
        g.finish();
        let ids: Vec<&str> = c.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["grp/f", "grp/g/7"]);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("wsjf").render(), "wsjf");
        assert_eq!(BenchmarkId::from(String::from("solo")).render(), "solo");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
