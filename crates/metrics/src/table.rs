//! Plain-text series output for the figure regeneration binaries.

/// A simple column-oriented results table rendered as markdown or CSV — the
/// textual equivalent of one paper figure (each row a data point, each
/// column a series).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (no quoting; callers must not embed commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_render() {
        let mut t = Table::new(vec!["N", "MRIS"]);
        t.push_row(vec!["1000", "1.25"]);
        let md = t.to_markdown();
        assert!(md.contains("|    N | MRIS |"));
        assert!(md.contains("| 1000 | 1.25 |"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_render() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["1", "2"]);
    }
}
