//! Fairness and slowdown metrics.
//!
//! Section 7.5.2 of the paper reads the queuing-delay CDF as a fairness
//! story: PQ-class schedulers start most jobs instantly but "there are
//! instances in which jobs are not treated fairly, as exemplified by
//! Lemma 4.1". These metrics quantify that.

use mris_types::{Instance, Schedule};

/// Jain's fairness index of a non-negative sample:
/// `(sum x)^2 / (n * sum x^2)` — 1.0 when all values are equal, `1/n` when
/// one value dominates. Returns 1.0 for empty or all-zero samples (nothing
/// to be unfair about).
pub fn jains_index(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|&v| v >= 0.0 && v.is_finite()),
        "Jain's index requires finite non-negative values"
    );
    let sum: f64 = values.iter().sum();
    if values.is_empty() || sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Per-job slowdown `(C_j - r_j) / p_j` (flow over processing time), in
/// job-id order. 1.0 means the job ran immediately with no waiting.
pub fn slowdowns(instance: &Instance, schedule: &Schedule) -> Vec<f64> {
    schedule
        .assignments()
        .map(|a| {
            let job = instance.job(a.job);
            (a.start + job.proc_time - job.release) / job.proc_time
        })
        .collect()
}

/// Fairness report for one schedule: Jain's index over slowdowns, plus the
/// max and mean slowdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// Jain's index over per-job slowdowns (1.0 = perfectly even).
    pub jains_slowdown: f64,
    /// Largest slowdown any job suffered.
    pub max_slowdown: f64,
    /// Mean slowdown.
    pub mean_slowdown: f64,
}

/// Computes the [`FairnessReport`] of a (complete) schedule.
pub fn fairness_report(instance: &Instance, schedule: &Schedule) -> FairnessReport {
    let s = slowdowns(instance, schedule);
    let mean = if s.is_empty() {
        1.0
    } else {
        s.iter().sum::<f64>() / s.len() as f64
    };
    FairnessReport {
        jains_slowdown: jains_index(&s),
        max_slowdown: s.iter().copied().fold(1.0, f64::max),
        mean_slowdown: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Job, JobId};

    #[test]
    fn jains_bounds() {
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
        assert!((jains_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One dominant value among n: index -> 1/n.
        let idx = jains_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        // Monotone: more even is fairer.
        assert!(jains_index(&[2.0, 2.0, 4.0]) > jains_index(&[1.0, 1.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jains_rejects_negative() {
        let _ = jains_index(&[-1.0]);
    }

    #[test]
    fn slowdown_and_report() {
        let instance = Instance::from_unnumbered(
            vec![
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[1.0]),
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[1.0]),
            ],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(2, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 2.0).unwrap();
        // Slowdowns: job 0 = 2/2 = 1; job 1 = (3 - 0)/1 = 3.
        assert_eq!(slowdowns(&instance, &s), vec![1.0, 3.0]);
        let report = fairness_report(&instance, &s);
        assert_eq!(report.max_slowdown, 3.0);
        assert!((report.mean_slowdown - 2.0).abs() < 1e-12);
        assert!(report.jains_slowdown < 1.0);
    }

    #[test]
    fn patient_schedule_is_fairer_on_lemma_4_1() {
        // PQ-shaped schedule (blocker first) vs patient schedule (blocker
        // last) on a Lemma 4.1-style instance: patience is fairer in
        // slowdown terms.
        let n = 6;
        let mut jobs = vec![Job::from_fractions(JobId(0), 0.0, n as f64, 1.0, &[1.0])];
        for _ in 1..n {
            jobs.push(Job::from_fractions(
                JobId(0),
                0.1,
                1.0,
                1.0,
                &[1.0 / (n - 1) as f64],
            ));
        }
        let instance = Instance::from_unnumbered(jobs, 1).unwrap();

        let mut pq_like = Schedule::new(n, 1);
        pq_like.assign(JobId(0), 0, 0.0).unwrap();
        for i in 1..n {
            pq_like.assign(JobId(i as u32), 0, n as f64).unwrap();
        }
        let mut patient = Schedule::new(n, 1);
        for i in 1..n {
            patient.assign(JobId(i as u32), 0, 0.1).unwrap();
        }
        patient.assign(JobId(0), 0, 1.1).unwrap();

        let unfair = fairness_report(&instance, &pq_like);
        let fair = fairness_report(&instance, &patient);
        assert!(fair.jains_slowdown > unfair.jains_slowdown);
        assert!(fair.max_slowdown < unfair.max_slowdown);
    }
}
