//! Lower bounds on the optimal objective values.
//!
//! The paper's competitive analysis compares against an optimal offline
//! scheduler, which is NP-hard to compute. These bounds make empirical
//! ratio reporting possible: since `LB <= OPT`, the observable quantity
//! `ALG / LB` **upper-bounds** the true ratio `ALG / OPT` — a conservative
//! (pessimistic) estimate. If `ALG / LB` is small, the algorithm's true
//! ratio is at least as small.

use mris_types::{Instance, Time};

/// A valid lower bound on the optimal **makespan** on `machines` machines:
/// `max(V_I / (R*M), max_j (r_j + p_j))` (Lemma 6.2 plus the trivial
/// per-job bound).
pub fn makespan_lower_bound(instance: &Instance, machines: usize) -> Time {
    instance.makespan_lower_bound(machines)
}

/// A valid lower bound on the optimal **total weighted completion time**
/// `sum_j w_j C*_j`, combining two relaxations:
///
/// 1. **Release bound**: `C*_j >= r_j + p_j` for every job, giving
///    `sum_j w_j (r_j + p_j)`.
/// 2. **Volume-congestion bound**: in any feasible schedule, the `k` jobs
///    that complete earliest have together at least the sum of the `k`
///    smallest volumes, and all of that volume is processed at aggregate
///    rate at most `R*M`; hence the `k`-th completion is at least
///    `V_k / (R*M)` where `V_k` is the sum of the `k` smallest volumes.
///    Pairing the largest weights with the earliest completion slots
///    (rearrangement inequality) yields the schedule-independent bound
///    `sum_k w^{desc}_k * V_k / (R*M)`.
///
/// The result is the larger of the two.
pub fn total_weighted_completion_lower_bound(instance: &Instance, machines: usize) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    let release_bound: f64 = instance
        .jobs()
        .iter()
        .map(|j| j.weight * (j.release + j.proc_time))
        .sum();

    let rm = (instance.num_resources() * machines) as f64;
    let mut volumes: Vec<f64> = instance.jobs().iter().map(|j| j.volume()).collect();
    volumes.sort_by(f64::total_cmp);
    let mut weights: Vec<f64> = instance.jobs().iter().map(|j| j.weight).collect();
    weights.sort_by(|a, b| b.total_cmp(a));
    let mut prefix = 0.0;
    let volume_bound: f64 = volumes
        .iter()
        .zip(&weights)
        .map(|(&v, &w)| {
            prefix += v;
            w * prefix / rm
        })
        .sum();

    release_bound.max(volume_bound)
}

/// A valid lower bound on the optimal **AWCT**
/// (`total_weighted_completion_lower_bound / N`).
pub fn awct_lower_bound(instance: &Instance, machines: usize) -> f64 {
    if instance.is_empty() {
        return 0.0;
    }
    total_weighted_completion_lower_bound(instance, machines) / instance.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Job, JobId};

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::from_unnumbered(jobs, r).unwrap()
    }

    #[test]
    fn release_bound_binds_spread_jobs() {
        // Two light jobs far apart in release: the release bound dominates.
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1]),
                Job::from_fractions(JobId(0), 100.0, 1.0, 1.0, &[0.1]),
            ],
            1,
        );
        let lb = awct_lower_bound(&instance, 1);
        assert!((lb - (1.0 + 101.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn volume_bound_binds_congested_instances() {
        // Many simultaneous full-demand unit jobs on one machine, R = 1:
        // the volume term forces completions at 1, 2, 3, ...
        let n = 10;
        let jobs: Vec<Job> = (0..n)
            .map(|_| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[1.0]))
            .collect();
        let instance = inst(jobs, 1);
        let lb = total_weighted_completion_lower_bound(&instance, 1);
        // Exact optimum is 1 + 2 + ... + 10 = 55; the bound matches it.
        assert!((lb - 55.0).abs() < 1e-9);
    }

    #[test]
    fn bound_is_valid_against_real_schedules() {
        use mris_types::Schedule;
        // A feasible serial schedule; its objective must dominate the bound.
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::from_fractions(JobId(0), i as f64, 2.0, 1.0 + i as f64, &[0.8]))
            .collect();
        let instance = inst(jobs, 1);
        let mut s = Schedule::new(5, 1);
        let mut t = 0.0_f64;
        for j in instance.jobs() {
            let start = t.max(j.release);
            s.assign(j.id, 0, start).unwrap();
            t = start + j.proc_time;
        }
        s.validate(&instance).unwrap();
        assert!(
            s.total_weighted_completion(&instance)
                >= total_weighted_completion_lower_bound(&instance, 1) - 1e-9
        );
    }

    #[test]
    fn empty_instance_bounds_are_zero() {
        let instance = Instance::new(vec![], 2).unwrap();
        assert_eq!(awct_lower_bound(&instance, 3), 0.0);
        assert_eq!(total_weighted_completion_lower_bound(&instance, 3), 0.0);
    }

    #[test]
    fn more_machines_weaken_the_volume_bound() {
        let jobs: Vec<Job> = (0..8)
            .map(|_| Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[1.0]))
            .collect();
        let instance = inst(jobs, 1);
        let lb1 = awct_lower_bound(&instance, 1);
        let lb4 = awct_lower_bound(&instance, 4);
        assert!(lb4 <= lb1);
        // But never below the release bound.
        assert!(lb4 >= 1.0);
    }
}
