//! Empirical cumulative distribution functions (Figure 5) and the shared
//! p50/p95/p99 latency summary used by the service and bench reports.

/// An empirical CDF over a sample of values (e.g. per-job queuing delays).
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF of `values` (NaNs are rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "CDF values must not be NaN"
        );
        values.sort_by(f64::total_cmp);
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X <= x]`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` (nearest-rank). Panics when
    /// empty or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0, 1]");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// `(value, cumulative fraction)` pairs at `k` evenly spaced quantiles,
    /// suitable for plotting the CDF curve. Always includes the endpoints.
    pub fn curve(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k >= 2 && !self.sorted.is_empty());
        (0..k)
            .map(|i| {
                let q = i as f64 / (k - 1) as f64;
                let idx = ((q * (self.sorted.len() - 1) as f64).round()) as usize;
                (
                    self.sorted[idx],
                    (idx + 1) as f64 / self.sorted.len() as f64,
                )
            })
            .collect()
    }

    /// Fraction of samples equal to the minimum (used to report "share of
    /// jobs with zero queuing delay").
    pub fn fraction_zero(&self) -> f64 {
        self.fraction_at_most(0.0)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Sample mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The standard p50/p95/p99 summary of this CDF (nearest-rank), or
    /// `None` when the CDF has no samples. [`Percentiles::of`] is the
    /// equivalent entry point for unsorted slices; both are total.
    pub fn percentiles(&self) -> Option<Percentiles> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        })
    }
}

/// The p50/p95/p99 summary every latency-style report in the workspace
/// shares (service decision latencies, timeline query latencies, …), so
/// quantile math lives in one place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median (nearest-rank 0.50-quantile).
    pub p50: f64,
    /// Nearest-rank 0.95-quantile.
    pub p95: f64,
    /// Nearest-rank 0.99-quantile.
    pub p99: f64,
}

impl Percentiles {
    /// Summarizes `values` (need not be sorted; NaNs are rejected).
    /// Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Percentiles> {
        Cdf::new(values.to_vec()).percentiles()
    }

    /// Divides all three percentiles by `scale` — e.g. nanosecond samples
    /// reported in microseconds.
    pub fn scaled(&self, scale: f64) -> Percentiles {
        Percentiles {
            p50: self.p50 / scale,
            p95: self.p95 / scale,
            p99: self.p99 / scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 0.0]);
        assert_eq!(cdf.fraction_at_most(-1.0), 0.0);
        assert_eq!(cdf.fraction_at_most(0.0), 0.25);
        assert_eq!(cdf.fraction_at_most(1.5), 0.5);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 1.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert_eq!(cdf.quantile(0.0), 0.0);
    }

    #[test]
    fn zero_fraction() {
        let cdf = Cdf::new(vec![0.0, 0.0, 5.0, 1.0]);
        assert_eq!(cdf.fraction_zero(), 0.5);
    }

    #[test]
    fn curve_spans_range() {
        let cdf = Cdf::new((0..100).map(f64::from).collect());
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[10].0, 99.0);
        assert!((curve[10].1 - 1.0).abs() < 1e-12);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&values).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(Some(p), Cdf::new(values).percentiles());
        assert_eq!(Percentiles::of(&[]), None);
        assert_eq!(Cdf::new(vec![]).percentiles(), None);
        let single = Percentiles::of(&[7.0]).unwrap();
        assert_eq!((single.p50, single.p95, single.p99), (7.0, 7.0, 7.0));
        let us = p.scaled(1_000.0);
        assert_eq!(us.p50, 0.05);
    }

    #[test]
    fn mean_and_max() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(cdf.mean(), Some(2.0));
        assert_eq!(cdf.max(), Some(3.0));
        assert_eq!(Cdf::new(vec![]).mean(), None);
    }
}
