//! Metrics and statistics for scheduling experiments.
//!
//! Covers everything the paper's evaluation reports:
//!
//! * [`Summary`] — mean and 95% confidence interval over repeated sampled
//!   job sets (Section 7.1 plots the mean of 10 samples with a shaded 95%
//!   CI).
//! * [`Cdf`] — empirical distribution of queuing delays (Figure 5).
//! * [`Percentiles`] — the shared p50/p95/p99 summary for latency-style
//!   reports (service decision latencies, timeline query latencies).
//! * [`Table`] — plain-text/CSV/markdown series output for the figure
//!   regeneration binaries.
//! * [`utilization_profile`] / [`render_utilization`] — resource usage over
//!   time for schedule visualizations (Figure 7).
//! * [`awct_lower_bound`] / [`makespan_lower_bound`] — provable lower
//!   bounds on the optimum, for empirical competitive-ratio estimates.
//! * [`render_gantt`] — textual per-machine Gantt charts for small
//!   schedules.
//! * [`fairness_report`] / [`jains_index`] — slowdown-fairness metrics
//!   (Section 7.5.2 reads the delay CDF as a fairness story).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod cdf;
mod fairness;
mod gantt;
mod render;
mod summary;
mod table;

pub use bounds::{awct_lower_bound, makespan_lower_bound, total_weighted_completion_lower_bound};
pub use cdf::{Cdf, Percentiles};
pub use fairness::{fairness_report, jains_index, slowdowns, FairnessReport};
pub use gantt::{gantt_lanes, render_gantt, GanttLane};
pub use render::{render_utilization, utilization_profile};
pub use summary::Summary;
pub use table::Table;
