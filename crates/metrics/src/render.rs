//! Resource-utilization-over-time profiles and ASCII rendering (Figure 7).

use mris_types::{fraction, Instance, Schedule};

/// Samples the utilization of resource `resource` on machine `machine` into
/// `buckets` equal time buckets over `[0, horizon)`. Each bucket reports the
/// *time-averaged* fraction of capacity in use.
pub fn utilization_profile(
    instance: &Instance,
    schedule: &Schedule,
    machine: usize,
    resource: usize,
    horizon: f64,
    buckets: usize,
) -> Vec<f64> {
    assert!(buckets > 0 && horizon > 0.0);
    let width = horizon / buckets as f64;
    let mut acc = vec![0.0f64; buckets];
    for a in schedule.assignments() {
        if a.machine != machine {
            continue;
        }
        let job = instance.job(a.job);
        let demand = fraction(job.demands[resource]);
        if demand == 0.0 {
            continue;
        }
        let start = a.start.max(0.0);
        let end = (a.start + job.proc_time).min(horizon);
        if end <= start {
            continue;
        }
        let first = (start / width).floor() as usize;
        let last = ((end / width).ceil() as usize).min(buckets);
        for (b, slot) in acc.iter_mut().enumerate().take(last).skip(first) {
            let b_start = b as f64 * width;
            let b_end = b_start + width;
            let overlap = (end.min(b_end) - start.max(b_start)).max(0.0);
            *slot += demand * overlap / width;
        }
    }
    acc
}

/// Renders a utilization profile as a one-line ASCII bar chart: each
/// character is one bucket, with nine intensity levels from `' '` (idle)
/// to `'█'` (full).
pub fn render_utilization(profile: &[f64]) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    profile
        .iter()
        .map(|&u| {
            let idx = ((u.clamp(0.0, 1.0)) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Job, JobId};

    #[test]
    fn profile_averages_within_buckets() {
        let instance = Instance::new(
            vec![Job::from_fractions(JobId(0), 0.0, 5.0, 1.0, &[0.5])],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(1, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        let p = utilization_profile(&instance, &s, 0, 0, 10.0, 10);
        assert_eq!(p.len(), 10);
        for (b, &u) in p.iter().enumerate() {
            let expected = if b < 5 { 0.5 } else { 0.0 };
            assert!((u - expected).abs() < 1e-9, "bucket {b}: {u}");
        }
    }

    #[test]
    fn partial_bucket_overlap() {
        let instance = Instance::new(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[1.0])],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(1, 1);
        s.assign(JobId(0), 0, 0.5).unwrap();
        // Buckets of width 1 over [0, 2): bucket 0 half-covered, bucket 1 half.
        let p = utilization_profile(&instance, &s, 0, 0, 2.0, 2);
        assert!((p[0] - 0.5).abs() < 1e-9);
        assert!((p[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn other_machines_ignored() {
        let instance = Instance::new(
            vec![Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[1.0])],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(1, 2);
        s.assign(JobId(0), 1, 0.0).unwrap();
        let p = utilization_profile(&instance, &s, 0, 0, 2.0, 2);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn render_maps_levels() {
        let art = render_utilization(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = art.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[1], '▄');
        assert_eq!(chars[2], '█');
    }
}
