//! Mean / 95% confidence interval summaries over repeated samples.

/// Summary statistics of a set of repeated measurements (one per sampled job
/// set, following Section 7.1's protocol of 10 downsampled sets per point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for `n < 2`).
    pub std_dev: f64,
    /// Lower edge of the 95% confidence interval of the mean.
    pub ci95_low: f64,
    /// Upper edge of the 95% confidence interval of the mean.
    pub ci95_high: f64,
}

/// Two-sided 97.5% Student-t critical values for `df = 1..=30`; beyond 30
/// the normal approximation (1.96) is used.
const T_TABLE: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_critical(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T_TABLE.len() {
        T_TABLE[df - 1]
    } else {
        1.96
    }
}

impl Summary {
    /// Summarizes `samples`. Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary {
                n,
                mean,
                std_dev: 0.0,
                ci95_low: mean,
                ci95_high: mean,
            };
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let std_dev = var.sqrt();
        let half = t_critical(n - 1) * std_dev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95_low: mean - half,
            ci95_high: mean + half,
        }
    }

    /// Half-width of the 95% confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        (self.ci95_high - self.ci95_low) / 2.0
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.ci95_half_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_degenerates() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_low, 3.5);
        assert_eq!(s.ci95_high, 3.5);
    }

    #[test]
    fn known_values() {
        // Samples 1..=10: mean 5.5, sd ~3.0277, t(9) = 2.262.
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        let s = Summary::of(&v);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert!((s.std_dev - 3.02765).abs() < 1e-4);
        let half = 2.262 * s.std_dev / 10f64.sqrt();
        assert!((s.ci95_half_width() - half).abs() < 1e-9);
    }

    #[test]
    fn interval_contains_mean() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert!(s.ci95_low <= s.mean && s.mean <= s.ci95_high);
    }

    #[test]
    fn large_n_uses_normal_critical() {
        let v: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let s = Summary::of(&v);
        let half = 1.96 * s.std_dev / 10.0;
        assert!((s.ci95_half_width() - half).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
