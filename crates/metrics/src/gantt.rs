//! Textual Gantt-style schedule rendering.
//!
//! Complements [`crate::utilization_profile`]: instead of aggregate
//! utilization, renders *which* jobs occupy each machine over time — useful
//! for inspecting small schedules in examples and docs.

use mris_types::{Instance, Schedule};

/// One lane of a Gantt chart: the jobs of one machine in start order.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttLane {
    /// The machine index.
    pub machine: usize,
    /// `(job index, start, end)` sorted by start time (ties by job id).
    pub entries: Vec<(u32, f64, f64)>,
}

/// Extracts Gantt lanes (one per machine) from a schedule.
pub fn gantt_lanes(instance: &Instance, schedule: &Schedule) -> Vec<GanttLane> {
    let mut lanes: Vec<GanttLane> = (0..schedule.num_machines())
        .map(|machine| GanttLane {
            machine,
            entries: Vec::new(),
        })
        .collect();
    for a in schedule.assignments() {
        let job = instance.job(a.job);
        lanes[a.machine]
            .entries
            .push((a.job.0, a.start, a.start + job.proc_time));
    }
    for lane in &mut lanes {
        lane.entries
            .sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }
    lanes
}

/// Renders a compact textual Gantt chart: one line per machine listing jobs
/// as `jID[start..end)`. Intended for small schedules (tens of jobs).
pub fn render_gantt(instance: &Instance, schedule: &Schedule) -> String {
    let mut out = String::new();
    for lane in gantt_lanes(instance, schedule) {
        out.push_str(&format!("machine {}:", lane.machine));
        for (job, start, end) in &lane.entries {
            out.push_str(&format!(" j{job}[{start:.1}..{end:.1})"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{Job, JobId};

    fn setup() -> (Instance, Schedule) {
        let instance = Instance::new(
            vec![
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.5]),
                Job::from_fractions(JobId(1), 0.0, 1.0, 1.0, &[0.5]),
                Job::from_fractions(JobId(2), 0.0, 3.0, 1.0, &[1.0]),
            ],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(3, 2);
        s.assign(JobId(0), 0, 1.0).unwrap();
        s.assign(JobId(1), 0, 0.0).unwrap();
        s.assign(JobId(2), 1, 0.0).unwrap();
        (instance, s)
    }

    #[test]
    fn lanes_sorted_by_start() {
        let (instance, s) = setup();
        let lanes = gantt_lanes(&instance, &s);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0].entries, vec![(1, 0.0, 1.0), (0, 1.0, 3.0)]);
        assert_eq!(lanes[1].entries, vec![(2, 0.0, 3.0)]);
    }

    #[test]
    fn render_contains_all_jobs() {
        let (instance, s) = setup();
        let art = render_gantt(&instance, &s);
        assert!(
            art.contains("machine 0: j1[0.0..1.0) j0[1.0..3.0)"),
            "{art}"
        );
        assert!(art.contains("machine 1: j2[0.0..3.0)"), "{art}");
    }

    #[test]
    fn partial_schedules_render_assigned_jobs_only() {
        let (instance, _) = setup();
        let mut s = Schedule::new(3, 1);
        s.assign(JobId(1), 0, 0.0).unwrap();
        let lanes = gantt_lanes(&instance, &s);
        assert_eq!(lanes[0].entries.len(), 1);
    }
}
