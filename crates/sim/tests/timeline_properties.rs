//! Property tests of `MachineTimeline` against a naive reference model.
//!
//! The reference stores committed occupations as a plain interval list and
//! answers usage/feasibility queries by direct summation; the step-function
//! timeline must agree with it everywhere.

use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};
use mris_sim::MachineTimeline;
use mris_types::{Amount, CAPACITY};

/// Naive model: list of (start, duration, demands).
struct Reference {
    num_resources: usize,
    occupations: Vec<(f64, f64, Vec<Amount>)>,
}

impl Reference {
    fn usage_at(&self, t: f64) -> Vec<Amount> {
        let mut usage = vec![0; self.num_resources];
        for (s, d, demands) in &self.occupations {
            if *s <= t && t < s + d {
                for (u, &dem) in usage.iter_mut().zip(demands) {
                    *u += dem;
                }
            }
        }
        usage
    }

    fn is_feasible(&self, start: f64, dur: f64, demands: &[Amount]) -> bool {
        // Check at all interval endpoints within [start, start + dur), plus
        // the start itself — usage is piecewise constant between them.
        let mut points = vec![start];
        for (s, d, _) in &self.occupations {
            for &p in &[*s, s + d] {
                if p > start && p < start + dur {
                    points.push(p);
                }
            }
        }
        points.iter().all(|&p| {
            self.usage_at(p)
                .iter()
                .zip(demands)
                .all(|(&u, &d)| u + d <= CAPACITY)
        })
    }
}

/// A commit script: sequences of (start, duration, demand fractions).
fn gen_commits(rng: &mut Rng, r: usize) -> Vec<(f64, f64, Vec<f64>)> {
    let n = rng.gen_range(0..20usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..50.0),
                rng.gen_range(0.1..10.0),
                (0..r).map(|_| rng.gen_range(0.0..0.3)).collect(),
            )
        })
        .collect()
}

fn to_amounts(fracs: &[f64]) -> Vec<Amount> {
    fracs
        .iter()
        .map(|&f| mris_types::amount_from_fraction(f))
        .collect()
}

/// Replays a commit script into both models, keeping only feasible commits
/// (`commit()` requires feasibility by contract). `None` for shrink
/// candidates whose demand vectors lost the 2-resource invariant.
fn replay(commits: &[(f64, f64, Vec<f64>)]) -> Option<(MachineTimeline, Reference)> {
    if commits.iter().any(|(_, _, fr)| fr.len() != 2) {
        return None;
    }
    let mut tl = MachineTimeline::new(2);
    let mut reference = Reference {
        num_resources: 2,
        occupations: vec![],
    };
    for (s, d, fr) in commits {
        let demands = to_amounts(fr);
        if tl.is_feasible(*s, *d, &demands) {
            tl.commit(*s, *d, &demands);
            reference.occupations.push((*s, *d, demands));
        }
    }
    Some((tl, reference))
}

/// Usage queries agree with the naive model at arbitrary probe points.
#[test]
fn usage_matches_reference() {
    check(
        "usage matches reference",
        &Config::with_cases(128),
        |rng| {
            let commits = gen_commits(rng, 2);
            let n_probes = rng.gen_range(1..20usize);
            let probes: Vec<f64> = (0..n_probes).map(|_| rng.gen_range(0.0..80.0)).collect();
            (commits, probes)
        },
        |(commits, probes)| {
            let Some((tl, reference)) = replay(commits) else {
                return Ok(());
            };
            for &p in probes {
                prop_assert_eq!(tl.usage_at(p), &reference.usage_at(p)[..], "at {}", p);
            }
            Ok(())
        },
    );
}

/// `is_feasible` agrees with the naive model for arbitrary windows.
#[test]
fn feasibility_matches_reference() {
    check(
        "feasibility matches reference",
        &Config::with_cases(128),
        |rng| {
            let commits = gen_commits(rng, 2);
            let n_queries = rng.gen_range(1..16usize);
            let queries: Vec<(f64, f64, Vec<f64>)> = (0..n_queries)
                .map(|_| {
                    (
                        rng.gen_range(0.0..60.0),
                        rng.gen_range(0.1..15.0),
                        vec![rng.gen_range(0.0..=1.0), rng.gen_range(0.0..=1.0)],
                    )
                })
                .collect();
            (commits, queries)
        },
        |(commits, queries)| {
            let Some((tl, reference)) = replay(commits) else {
                return Ok(());
            };
            for (s, d, fr) in queries {
                if fr.len() != 2 {
                    return Ok(());
                }
                let demands = to_amounts(fr);
                prop_assert_eq!(
                    tl.is_feasible(*s, *d, &demands),
                    reference.is_feasible(*s, *d, &demands),
                    "window [{}, {})",
                    s,
                    s + d
                );
            }
            Ok(())
        },
    );
}

/// `earliest_fit` returns a feasible start, no earlier than requested,
/// and *minimal*: the window immediately before it is infeasible.
#[test]
fn earliest_fit_is_sound_and_minimal() {
    check(
        "earliest fit is sound and minimal",
        &Config::with_cases(128),
        |rng| {
            (
                gen_commits(rng, 2),
                rng.gen_range(0.0..40.0),
                rng.gen_range(0.1..10.0),
                vec![rng.gen_range(0.0..=1.0), rng.gen_range(0.0..=1.0)],
            )
        },
        |(commits, from, dur, probe_fr)| {
            if probe_fr.len() != 2 {
                return Ok(());
            }
            let Some((tl, _)) = replay(commits) else {
                return Ok(());
            };
            let demands = to_amounts(probe_fr);
            let start = tl.earliest_fit(*from, *dur, &demands);
            prop_assert!(start >= *from);
            prop_assert!(tl.is_feasible(start, *dur, &demands));
            // Minimality: any strictly earlier start (>= from) is infeasible.
            // Usage is piecewise constant, so checking a few candidates
            // earlier than `start` suffices: midpoints between `from` and
            // `start`.
            if start > *from {
                for frac in [0.0, 0.25, 0.5, 0.75, 0.999] {
                    let earlier = from + (start - from) * frac;
                    if earlier < start {
                        prop_assert!(
                            !tl.is_feasible(earlier, *dur, &demands),
                            "earlier start {} would fit before {}",
                            earlier,
                            start
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Committing at the earliest fit never violates capacity (exercised by
/// the debug assertions inside commit) and horizons grow monotonically.
#[test]
fn place_sequences_stay_feasible() {
    check(
        "place sequences stay feasible",
        &Config::with_cases(128),
        |rng| {
            let n = rng.gen_range(1..30usize);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.1..8.0),
                        vec![rng.gen_range(0.0..=1.0), rng.gen_range(0.0..=1.0)],
                    )
                })
                .collect::<Vec<(f64, Vec<f64>)>>()
        },
        |jobs| {
            use mris_sim::ClusterTimelines;
            if jobs.iter().any(|(_, fr)| fr.len() != 2) {
                return Ok(());
            }
            let mut cl = ClusterTimelines::new(2, 2);
            let mut horizon = 0.0f64;
            for (dur, fr) in jobs {
                let demands = to_amounts(fr);
                let (m, s) = cl.earliest_fit(0.0, *dur, &demands);
                cl.commit(m, s, *dur, &demands);
                let new_horizon = cl.horizon();
                prop_assert!(new_horizon >= horizon);
                horizon = new_horizon;
            }
            Ok(())
        },
    );
}
