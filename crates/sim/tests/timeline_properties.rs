//! Property tests of `MachineTimeline` against a naive reference model.
//!
//! The reference stores committed occupations as a plain interval list and
//! answers usage/feasibility queries by direct summation; the step-function
//! timeline must agree with it everywhere.

use mris_sim::MachineTimeline;
use mris_types::{Amount, CAPACITY};
use proptest::prelude::*;

/// Naive model: list of (start, duration, demands).
struct Reference {
    num_resources: usize,
    occupations: Vec<(f64, f64, Vec<Amount>)>,
}

impl Reference {
    fn usage_at(&self, t: f64) -> Vec<Amount> {
        let mut usage = vec![0; self.num_resources];
        for (s, d, demands) in &self.occupations {
            if *s <= t && t < s + d {
                for (u, &dem) in usage.iter_mut().zip(demands) {
                    *u += dem;
                }
            }
        }
        usage
    }

    fn is_feasible(&self, start: f64, dur: f64, demands: &[Amount]) -> bool {
        // Check at all interval endpoints within [start, start + dur), plus
        // the start itself — usage is piecewise constant between them.
        let mut points = vec![start];
        for (s, d, _) in &self.occupations {
            for &p in &[*s, s + d] {
                if p > start && p < start + dur {
                    points.push(p);
                }
            }
        }
        points.iter().all(|&p| {
            self.usage_at(p)
                .iter()
                .zip(demands)
                .all(|(&u, &d)| u + d <= CAPACITY)
        })
    }
}

/// A commit script: sequences of (start, duration, demand fractions).
fn arb_commits(r: usize) -> impl Strategy<Value = Vec<(f64, f64, Vec<f64>)>> {
    prop::collection::vec(
        (
            0.0f64..50.0,
            0.1f64..10.0,
            prop::collection::vec(0.0f64..0.3, r..=r),
        ),
        0..20,
    )
}

fn to_amounts(fracs: &[f64]) -> Vec<Amount> {
    fracs
        .iter()
        .map(|&f| mris_types::amount_from_fraction(f))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Usage queries agree with the naive model at arbitrary probe points.
    #[test]
    fn usage_matches_reference(
        commits in arb_commits(2),
        probes in prop::collection::vec(0.0f64..80.0, 1..20),
    ) {
        let mut tl = MachineTimeline::new(2);
        let mut reference = Reference { num_resources: 2, occupations: vec![] };
        for (s, d, fr) in &commits {
            let demands = to_amounts(fr);
            // Keep the reference feasible: skip commits that would overflow
            // (commit() requires feasibility by contract).
            if tl.is_feasible(*s, *d, &demands) {
                tl.commit(*s, *d, &demands);
                reference.occupations.push((*s, *d, demands));
            }
        }
        for &p in &probes {
            prop_assert_eq!(tl.usage_at(p), &reference.usage_at(p)[..], "at {}", p);
        }
    }

    /// `is_feasible` agrees with the naive model for arbitrary windows.
    #[test]
    fn feasibility_matches_reference(
        commits in arb_commits(2),
        queries in prop::collection::vec(
            (0.0f64..60.0, 0.1f64..15.0, prop::collection::vec(0.0f64..=1.0, 2..=2)),
            1..16,
        ),
    ) {
        let mut tl = MachineTimeline::new(2);
        let mut reference = Reference { num_resources: 2, occupations: vec![] };
        for (s, d, fr) in &commits {
            let demands = to_amounts(fr);
            if tl.is_feasible(*s, *d, &demands) {
                tl.commit(*s, *d, &demands);
                reference.occupations.push((*s, *d, demands));
            }
        }
        for (s, d, fr) in &queries {
            let demands = to_amounts(fr);
            prop_assert_eq!(
                tl.is_feasible(*s, *d, &demands),
                reference.is_feasible(*s, *d, &demands),
                "window [{}, {})", s, s + d
            );
        }
    }

    /// `earliest_fit` returns a feasible start, no earlier than requested,
    /// and *minimal*: the window immediately before it is infeasible.
    #[test]
    fn earliest_fit_is_sound_and_minimal(
        commits in arb_commits(2),
        from in 0.0f64..40.0,
        dur in 0.1f64..10.0,
        probe_fr in prop::collection::vec(0.0f64..=1.0, 2..=2),
    ) {
        let mut tl = MachineTimeline::new(2);
        for (s, d, fr) in &commits {
            let demands = to_amounts(fr);
            if tl.is_feasible(*s, *d, &demands) {
                tl.commit(*s, *d, &demands);
            }
        }
        let demands = to_amounts(&probe_fr);
        let start = tl.earliest_fit(from, dur, &demands);
        prop_assert!(start >= from);
        prop_assert!(tl.is_feasible(start, dur, &demands));
        // Minimality: any strictly earlier start (>= from) is infeasible.
        // Usage is piecewise constant, so checking a few candidates earlier
        // than `start` suffices: midpoints between `from` and `start`.
        if start > from {
            for frac in [0.0, 0.25, 0.5, 0.75, 0.999] {
                let earlier = from + (start - from) * frac;
                if earlier < start {
                    prop_assert!(
                        !tl.is_feasible(earlier, dur, &demands),
                        "earlier start {} would fit before {}", earlier, start
                    );
                }
            }
        }
    }

    /// Committing at the earliest fit never violates capacity (exercised by
    /// the debug assertions inside commit) and horizons grow monotonically.
    #[test]
    fn place_sequences_stay_feasible(
        jobs in prop::collection::vec(
            (0.1f64..8.0, prop::collection::vec(0.0f64..=1.0, 2..=2)),
            1..30,
        ),
    ) {
        use mris_sim::ClusterTimelines;
        let mut cl = ClusterTimelines::new(2, 2);
        let mut horizon = 0.0f64;
        for (dur, fr) in &jobs {
            let demands = to_amounts(fr);
            let (m, s) = cl.earliest_fit(0.0, *dur, &demands);
            cl.commit(m, s, *dur, &demands);
            let new_horizon = cl.horizon();
            prop_assert!(new_horizon >= horizon);
            horizon = new_horizon;
        }
    }
}
