//! Differential property suite: the indexed `MachineTimeline` against the
//! pre-index brute-force scan.
//!
//! [`BruteTimeline`] is a faithful copy of the original unindexed structure
//! (sorted breakpoints, `Vec::insert`/`splice` per commit, `O(segments)`
//! linear scans). Random scripts of commits, compactions, and queries are
//! replayed into both; every answer — usage, feasibility, earliest fit, and
//! segment count — must agree exactly. A second suite drives whole clusters
//! and checks the cutoff-pruned sequential scan, the hint cache, and the
//! scoped-thread parallel scan against the brute per-machine loop,
//! including the lower-machine-index tie-break.

use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};
use mris_sim::{ClusterTimelines, MachineTimeline};
use mris_types::{amount_from_fraction, Amount, CAPACITY};

const RESOURCES: usize = 2;

/// The original `MachineTimeline`: identical invariants, no skip index, no
/// hint cache, per-breakpoint `Vec::insert`/`splice`, linear scans.
struct BruteTimeline {
    num_resources: usize,
    times: Vec<f64>,
    usage: Vec<Amount>,
    watermark: f64,
}

impl BruteTimeline {
    fn new(num_resources: usize) -> Self {
        BruteTimeline {
            num_resources,
            times: vec![0.0],
            usage: vec![0; num_resources],
            watermark: 0.0,
        }
    }

    fn segment_index(&self, t: f64) -> usize {
        self.times.partition_point(|&bp| bp <= t) - 1
    }

    fn segment_usage(&self, i: usize) -> &[Amount] {
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    fn usage_at(&self, t: f64) -> &[Amount] {
        let i = self.segment_index(t);
        self.segment_usage(i)
    }

    fn ensure_breakpoint(&mut self, t: f64) -> usize {
        let i = self.segment_index(t);
        if self.times[i] == t {
            return i;
        }
        self.times.insert(i + 1, t);
        let r = self.num_resources;
        let seg: Vec<Amount> = self.segment_usage(i).to_vec();
        let at = (i + 1) * r;
        self.usage.splice(at..at, seg);
        i + 1
    }

    fn is_feasible(&self, start: f64, dur: f64, demands: &[Amount]) -> bool {
        let end = start + dur;
        let mut i = self.segment_index(start);
        while i < self.times.len() && self.times[i] < end {
            let seg = self.segment_usage(i);
            if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                return false;
            }
            i += 1;
        }
        true
    }

    fn earliest_fit(&self, from: f64, dur: f64, demands: &[Amount]) -> f64 {
        let mut cand = from.max(0.0);
        'outer: loop {
            let end = cand + dur;
            let mut i = self.segment_index(cand);
            while i < self.times.len() && self.times[i] < end {
                let seg = self.segment_usage(i);
                if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                    cand = self.times[i + 1];
                    continue 'outer;
                }
                i += 1;
            }
            return cand;
        }
    }

    fn commit(&mut self, start: f64, dur: f64, demands: &[Amount]) {
        let i0 = self.ensure_breakpoint(start);
        let i1 = self.ensure_breakpoint(start + dur);
        let r = self.num_resources;
        for i in i0..i1 {
            for (u, &d) in self.usage[i * r..(i + 1) * r].iter_mut().zip(demands) {
                *u += d;
            }
        }
    }

    fn compact_before(&mut self, horizon: f64) {
        let keep_from = self.segment_index(horizon.max(0.0));
        if keep_from == 0 {
            return;
        }
        self.watermark = self.watermark.max(self.times[keep_from]);
        self.times.drain(..keep_from);
        self.usage.drain(..keep_from * self.num_resources);
        self.times[0] = 0.0;
    }
}

/// One scripted operation against both structures.
#[derive(Debug, Clone)]
enum Op {
    Commit {
        start: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
    Compact {
        horizon: f64,
    },
    EarliestFit {
        from: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
    Feasible {
        start: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
    Usage {
        t: f64,
    },
}

fn to_amounts(fracs: &[f64]) -> Vec<Amount> {
    fracs.iter().map(|&f| amount_from_fraction(f)).collect()
}

fn gen_fracs(rng: &mut Rng, hi: f64) -> Vec<f64> {
    (0..RESOURCES).map(|_| rng.gen_range(0.0..hi)).collect()
}

fn gen_script(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_range(1..60usize);
    (0..n)
        .map(|_| match rng.gen_range(0..10usize) {
            0..=3 => Op::Commit {
                start: rng.gen_range(0.0..60.0),
                dur: rng.gen_range(0.1..12.0),
                fracs: gen_fracs(rng, 0.4),
            },
            4 => Op::Compact {
                horizon: rng.gen_range(0.0..70.0),
            },
            5..=7 => Op::EarliestFit {
                from: rng.gen_range(0.0..70.0),
                dur: rng.gen_range(0.1..15.0),
                fracs: gen_fracs(rng, 1.0),
            },
            8 => Op::Feasible {
                start: rng.gen_range(0.0..70.0),
                dur: rng.gen_range(0.1..15.0),
                fracs: gen_fracs(rng, 1.0),
            },
            _ => Op::Usage {
                t: rng.gen_range(0.0..90.0),
            },
        })
        .collect()
}

/// Replays a script into both structures, checking every answer. Commits
/// only apply when feasible (the `commit` contract); query instants are
/// clamped to the compaction watermark, below which answers are undefined
/// by contract.
#[test]
fn indexed_timeline_matches_brute_force_reference() {
    check(
        "indexed timeline matches brute-force reference",
        &Config::with_cases(128),
        gen_script,
        |script| {
            let mut indexed = MachineTimeline::new(RESOURCES);
            let mut brute = BruteTimeline::new(RESOURCES);
            for op in script {
                match op {
                    Op::Commit { start, dur, fracs } => {
                        if fracs.len() != RESOURCES {
                            continue;
                        }
                        let demands = to_amounts(fracs);
                        let start = start.max(brute.watermark);
                        let ok_brute = brute.is_feasible(start, *dur, &demands);
                        prop_assert_eq!(
                            indexed.is_feasible(start, *dur, &demands),
                            ok_brute,
                            "pre-commit feasibility at [{}, {})",
                            start,
                            start + dur
                        );
                        if ok_brute {
                            indexed.commit(start, *dur, &demands);
                            brute.commit(start, *dur, &demands);
                        }
                    }
                    Op::Compact { horizon } => {
                        indexed.compact_before(*horizon);
                        brute.compact_before(*horizon);
                        prop_assert_eq!(
                            indexed.compaction_watermark(),
                            brute.watermark,
                            "watermark after compact_before({})",
                            horizon
                        );
                    }
                    Op::EarliestFit { from, dur, fracs } => {
                        if fracs.len() != RESOURCES {
                            continue;
                        }
                        let demands = to_amounts(fracs);
                        let from = from.max(brute.watermark);
                        prop_assert_eq!(
                            indexed.earliest_fit(from, *dur, &demands),
                            brute.earliest_fit(from, *dur, &demands),
                            "earliest_fit(from = {}, dur = {})",
                            from,
                            dur
                        );
                    }
                    Op::Feasible { start, dur, fracs } => {
                        if fracs.len() != RESOURCES {
                            continue;
                        }
                        let demands = to_amounts(fracs);
                        let start = start.max(brute.watermark);
                        prop_assert_eq!(
                            indexed.is_feasible(start, *dur, &demands),
                            brute.is_feasible(start, *dur, &demands),
                            "is_feasible([{}, {}))",
                            start,
                            start + dur
                        );
                    }
                    Op::Usage { t } => {
                        let t = t.max(brute.watermark);
                        prop_assert_eq!(indexed.usage_at(t), brute.usage_at(t), "usage_at({})", t);
                    }
                }
                prop_assert_eq!(indexed.num_segments(), brute.times.len(), "segment count");
            }
            Ok(())
        },
    );
}

/// Cluster-level differential: sequential cutoff-pruned scan, forced
/// parallel scan, and the brute per-machine loop all place identical
/// `(machine, start)` sequences — pruning, caching, and threading must not
/// disturb results or the lower-machine-index tie-break.
#[test]
fn cluster_scans_match_brute_force_reference() {
    check(
        "cluster scans match brute-force reference",
        &Config::with_cases(128),
        |rng| {
            let machines = rng.gen_range(2..6usize);
            let n = rng.gen_range(1..40usize);
            let jobs: Vec<(f64, f64, Vec<f64>)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.0..20.0),
                        rng.gen_range(0.1..9.0),
                        gen_fracs(rng, 1.0),
                    )
                })
                .collect();
            (machines, jobs)
        },
        |(machines, jobs)| {
            let machines = (*machines).clamp(2, 8);
            let mut sequential = ClusterTimelines::new(machines, RESOURCES);
            sequential.set_parallel_threshold(usize::MAX);
            let mut parallel = ClusterTimelines::new(machines, RESOURCES);
            parallel.set_parallel_threshold(1);
            let mut brute: Vec<BruteTimeline> = (0..machines)
                .map(|_| BruteTimeline::new(RESOURCES))
                .collect();
            for (from, dur, fracs) in jobs {
                if fracs.len() != RESOURCES {
                    return Ok(());
                }
                let demands = to_amounts(fracs);
                // Original cluster loop: full scan, strict < tie-break.
                let mut expect = (0usize, f64::INFINITY);
                for (m, tl) in brute.iter().enumerate() {
                    let s = tl.earliest_fit(*from, *dur, &demands);
                    if s < expect.1 {
                        expect = (m, s);
                    }
                }
                let got_seq = sequential.earliest_fit(*from, *dur, &demands);
                let got_par = parallel.earliest_fit(*from, *dur, &demands);
                prop_assert_eq!(got_seq, expect, "sequential scan from {}", from);
                prop_assert_eq!(got_par, expect, "parallel scan from {}", from);
                brute[expect.0].commit(expect.1, *dur, &demands);
                sequential.commit(expect.0, expect.1, *dur, &demands);
                parallel.commit(expect.0, expect.1, *dur, &demands);
                prop_assert!(sequential.horizon() == parallel.horizon());
            }
            Ok(())
        },
    );
}
