//! Differential property suite: the pooled sharded cluster scan against
//! the sequential cutoff-pruned scan.
//!
//! Random cluster scenarios — placements, machine failures (reset +
//! full-capacity downtime block), compactions, and queries — are replayed
//! into a sequential reference (`set_parallel_threshold(usize::MAX)`) and
//! into pooled clusters (`set_parallel_threshold(1)`, every query through
//! the persistent worker pool) at shard sizes 1, 7, and 64. Every
//! `(machine, start)` answer must agree bit for bit, including the
//! lowest-machine-index tie-break — shard boundaries, the shared pruning
//! bound, the floor short-circuit, and the cross-shard reduce must be
//! invisible in results.

use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert_eq, Rng};
use mris_sim::ClusterTimelines;
use mris_types::{amount_from_fraction, Amount, CAPACITY};

const RESOURCES: usize = 2;
const SHARD_SIZES: [usize; 3] = [1, 7, 64];

#[derive(Debug, Clone)]
enum Op {
    /// Query + commit of the winning placement (to every variant).
    Place {
        from_off: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
    /// Machine failure: reset the timeline, block out a downtime window.
    Down { pick: usize, at: f64, dur: f64 },
    /// Cluster-wide compaction; later queries start at the new watermark.
    Compact { horizon: f64 },
    /// Shared-access query (`earliest_fit`), no commit.
    Query {
        from_off: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
    /// Exclusive-access query (`earliest_fit_mut`), no commit.
    QueryMut {
        from_off: f64,
        dur: f64,
        fracs: Vec<f64>,
    },
}

fn gen_fracs(rng: &mut Rng, hi: f64) -> Vec<f64> {
    (0..RESOURCES).map(|_| rng.gen_range(0.0..hi)).collect()
}

fn gen_case(rng: &mut Rng) -> (usize, Vec<Op>) {
    let machines = rng.gen_range(2..80usize);
    let n = rng.gen_range(1..30usize);
    let ops = (0..n)
        .map(|_| match rng.gen_range(0..10usize) {
            0..=3 => Op::Place {
                from_off: rng.gen_range(0.0..20.0),
                dur: rng.gen_range(0.1..9.0),
                fracs: gen_fracs(rng, 0.8),
            },
            4 => Op::Down {
                pick: rng.gen_range(0..1024usize),
                at: rng.gen_range(0.0..40.0),
                dur: rng.gen_range(1.0..10.0),
            },
            5 => Op::Compact {
                horizon: rng.gen_range(0.0..50.0),
            },
            6..=7 => Op::Query {
                from_off: rng.gen_range(0.0..40.0),
                dur: rng.gen_range(0.1..12.0),
                fracs: gen_fracs(rng, 1.0),
            },
            _ => Op::QueryMut {
                from_off: rng.gen_range(0.0..40.0),
                dur: rng.gen_range(0.1..12.0),
                fracs: gen_fracs(rng, 1.0),
            },
        })
        .collect();
    (machines, ops)
}

fn to_amounts(fracs: &[f64]) -> Vec<Amount> {
    fracs.iter().map(|&f| amount_from_fraction(f)).collect()
}

/// The earliest instant still exact on *every* machine: queries at or
/// after it satisfy the watermark contract cluster-wide.
fn cluster_watermark(c: &ClusterTimelines) -> f64 {
    (0..c.num_machines())
        .map(|m| c.machine(m).compaction_watermark())
        .fold(0.0, f64::max)
}

#[test]
fn sharded_scan_matches_sequential_scan() {
    check(
        "pooled sharded scan matches sequential scan",
        &Config::with_cases(160),
        gen_case,
        |(machines, ops)| {
            let machines = (*machines).clamp(2, 128);
            let mut reference = ClusterTimelines::new(machines, RESOURCES);
            reference.set_parallel_threshold(usize::MAX);
            let mut pooled: Vec<ClusterTimelines> = SHARD_SIZES
                .iter()
                .map(|&z| {
                    let mut c = ClusterTimelines::with_shard_size(machines, RESOURCES, z);
                    c.set_parallel_threshold(1);
                    c
                })
                .collect();
            for op in ops {
                match op {
                    Op::Place {
                        from_off,
                        dur,
                        fracs,
                    } => {
                        let demands = to_amounts(fracs);
                        let from = cluster_watermark(&reference) + from_off;
                        let expect = reference.earliest_fit(from, *dur, &demands);
                        for (c, &z) in pooled.iter_mut().zip(&SHARD_SIZES) {
                            prop_assert_eq!(
                                c.earliest_fit(from, *dur, &demands),
                                expect,
                                "place query from {} at shard size {}",
                                from,
                                z
                            );
                        }
                        reference.commit(expect.0, expect.1, *dur, &demands);
                        for c in pooled.iter_mut() {
                            c.commit(expect.0, expect.1, *dur, &demands);
                        }
                    }
                    Op::Down { pick, at, dur } => {
                        let m = pick % machines;
                        let full = vec![CAPACITY; RESOURCES];
                        reference.reset_machine(m);
                        reference.commit(m, *at, *dur, &full);
                        for c in pooled.iter_mut() {
                            c.reset_machine(m);
                            c.commit(m, *at, *dur, &full);
                        }
                    }
                    Op::Compact { horizon } => {
                        reference.compact_before(*horizon);
                        for c in pooled.iter_mut() {
                            c.compact_before(*horizon);
                        }
                        for (c, &z) in pooled.iter().zip(&SHARD_SIZES) {
                            prop_assert_eq!(
                                cluster_watermark(c),
                                cluster_watermark(&reference),
                                "watermark after compact_before({}) at shard size {}",
                                horizon,
                                z
                            );
                        }
                    }
                    Op::Query {
                        from_off,
                        dur,
                        fracs,
                    } => {
                        let demands = to_amounts(fracs);
                        let from = cluster_watermark(&reference) + from_off;
                        let expect = reference.earliest_fit(from, *dur, &demands);
                        for (c, &z) in pooled.iter().zip(&SHARD_SIZES) {
                            prop_assert_eq!(
                                c.earliest_fit(from, *dur, &demands),
                                expect,
                                "query from {} at shard size {}",
                                from,
                                z
                            );
                        }
                    }
                    Op::QueryMut {
                        from_off,
                        dur,
                        fracs,
                    } => {
                        let demands = to_amounts(fracs);
                        let from = cluster_watermark(&reference) + from_off;
                        let expect = reference.earliest_fit_mut(from, *dur, &demands);
                        for (c, &z) in pooled.iter_mut().zip(&SHARD_SIZES) {
                            prop_assert_eq!(
                                c.earliest_fit_mut(from, *dur, &demands),
                                expect,
                                "mut query from {} at shard size {}",
                                from,
                                z
                            );
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
