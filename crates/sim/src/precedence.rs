//! Precedence gating for DAG-structured instances.
//!
//! An [`Instance`](mris_types::Instance) may carry precedence edges
//! `(pred, succ)`: a successor cannot *start* until every predecessor has
//! completed. The driver enforces this by withholding gated jobs from
//! [`OnlinePolicy::on_arrivals`](crate::OnlinePolicy::on_arrivals) — a
//! policy never sees a job it is not yet allowed to place, so every
//! registered policy runs DAG workloads unmodified. [`PrecedenceGate`] is
//! the bookkeeping behind that: per-job outstanding-predecessor counters
//! driven by completion events, walking the instance's CSR successor lists.
//!
//! The gate is deliberately separate from the policy-facing pending queues:
//! it tracks *eligibility*, not priority. For an edge-free instance the gate
//! is inert ([`PrecedenceGate::is_active`] is `false`) and the driver keeps
//! its historical arrival path byte for byte.

use mris_types::{Instance, JobId};

/// Tracks, for every job, how many predecessors have not yet completed, and
/// which released jobs are currently withheld from the policy.
#[derive(Debug, Clone)]
pub struct PrecedenceGate {
    /// Outstanding (incomplete) predecessor count per job.
    remaining: Vec<u32>,
    /// Whether each job has completed.
    completed: Vec<bool>,
    /// Released (past `r_j`) but withheld because `remaining > 0`.
    held: Vec<bool>,
    /// False for edge-free instances: every query short-circuits to "ready".
    active: bool,
}

impl PrecedenceGate {
    /// Builds the gate for `instance`. Inert when the instance has no
    /// precedence edges.
    pub fn new(instance: &Instance) -> Self {
        let n = instance.len();
        let active = instance.has_precedence();
        PrecedenceGate {
            remaining: (0..n)
                .map(|i| instance.num_predecessors(JobId(i as u32)))
                .collect(),
            completed: vec![false; n],
            held: vec![false; n],
            active,
        }
    }

    /// Whether the instance has precedence edges at all.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether `job` may start now: every predecessor has completed.
    #[inline]
    pub fn is_ready(&self, job: JobId) -> bool {
        !self.active || self.remaining[job.index()] == 0
    }

    /// Whether `job` has completed.
    #[inline]
    pub fn is_complete(&self, job: JobId) -> bool {
        self.active && self.completed[job.index()]
    }

    /// Marks a released-but-gated job as withheld; it will be surfaced
    /// through `opened` by the [`PrecedenceGate::complete`] call that
    /// clears its last predecessor.
    pub fn hold(&mut self, job: JobId) {
        debug_assert!(self.active && !self.is_ready(job));
        if !self.held[job.index()] {
            self.held[job.index()] = true;
            mris_obs::counter_add("mris_prec_gated_total", 1);
        }
    }

    /// Records the completion of `job` and opens its successors' gates:
    /// every successor whose outstanding count hits zero is counted ready,
    /// and the ones previously withheld by [`PrecedenceGate::hold`] are
    /// appended to `opened` (ascending id, per the CSR successor order) for
    /// same-event delivery to the policy.
    pub fn complete(&mut self, job: JobId, instance: &Instance, opened: &mut Vec<JobId>) {
        if !self.active || self.completed[job.index()] {
            return;
        }
        self.completed[job.index()] = true;
        for &s in instance.successors(job) {
            let si = s.index();
            debug_assert!(self.remaining[si] > 0);
            self.remaining[si] -= 1;
            if self.remaining[si] == 0 {
                mris_obs::counter_add("mris_prec_ready_total", 1);
                if self.held[si] {
                    self.held[si] = false;
                    opened.push(s);
                }
            }
        }
    }

    /// Re-arms the gates downstream of `job`, undoing a completion: every
    /// successor whose count was zero is returned so the caller can withhold
    /// it again (if it has not already started — non-preemptive starts are
    /// never recalled).
    ///
    /// This is the chaos path's defensive counterpart to
    /// [`PrecedenceGate::complete`]. The driver orders completions before
    /// failures at a shared instant, so a completed predecessor can never be
    /// killed and this is unreachable from [`crate::run_driver`]; it is kept
    /// (and tested) so the gate stays correct if a caller with different
    /// event ordering ever revokes a completion.
    pub fn revoke(&mut self, job: JobId, instance: &Instance) -> Vec<JobId> {
        if !self.active || !self.completed[job.index()] {
            return Vec::new();
        }
        self.completed[job.index()] = false;
        let mut regated = Vec::new();
        for &s in instance.successors(job) {
            let si = s.index();
            if self.remaining[si] == 0 {
                regated.push(s);
            }
            self.remaining[si] += 1;
        }
        mris_obs::counter_add("mris_prec_revoked_total", 1);
        regated
    }

    /// The lowest-id predecessor of `job` that has not completed, if any.
    /// Used to attribute
    /// [`PredecessorIncomplete`](mris_types::SchedulingError::PredecessorIncomplete)
    /// errors.
    pub fn first_incomplete_pred(&self, job: JobId, instance: &Instance) -> Option<JobId> {
        if !self.active {
            return None;
        }
        instance
            .predecessors(job)
            .find(|p| !self.completed[p.index()])
    }

    /// Appends a canonical encoding of the gate state to `out` **only when
    /// active**, so durable fingerprints of edge-free instances are
    /// unchanged. Layout: job count, then per job a packed
    /// `(remaining, completed, held)` triple.
    pub fn durable_bytes_if_active(&self, out: &mut Vec<u8>) {
        if !self.active {
            return;
        }
        out.extend_from_slice(&(self.remaining.len() as u64).to_le_bytes());
        for i in 0..self.remaining.len() {
            out.extend_from_slice(&self.remaining[i].to_le_bytes());
            out.push(self.completed[i] as u8);
            out.push(self.held[i] as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{InstanceBuilder, Instance};

    /// A diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Instance {
        let mut b = InstanceBuilder::new(1);
        for _ in 0..4 {
            b.push_job(0.0, 1.0, 1.0, &[0.5]);
        }
        b.edge(JobId(0), JobId(1));
        b.edge(JobId(0), JobId(2));
        b.edge(JobId(1), JobId(3));
        b.edge(JobId(2), JobId(3));
        b.build().unwrap()
    }

    #[test]
    fn inert_for_edge_free_instances() {
        let mut b = InstanceBuilder::new(1);
        b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let inst = b.build().unwrap();
        let gate = PrecedenceGate::new(&inst);
        assert!(!gate.is_active());
        assert!(gate.is_ready(JobId(0)));
        let mut out = Vec::new();
        gate.durable_bytes_if_active(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn diamond_opens_in_topological_order() {
        let inst = diamond();
        let mut gate = PrecedenceGate::new(&inst);
        assert!(gate.is_active());
        assert!(gate.is_ready(JobId(0)));
        assert!(!gate.is_ready(JobId(1)));
        assert!(!gate.is_ready(JobId(3)));
        gate.hold(JobId(1));
        gate.hold(JobId(3));

        let mut opened = Vec::new();
        gate.complete(JobId(0), &inst, &mut opened);
        // 1 was held and opens; 2 becomes ready but was never held.
        assert_eq!(opened, vec![JobId(1)]);
        assert!(gate.is_ready(JobId(2)));
        assert!(!gate.is_ready(JobId(3)));

        opened.clear();
        gate.complete(JobId(1), &inst, &mut opened);
        assert!(opened.is_empty()); // 3 still waits on 2
        gate.complete(JobId(2), &inst, &mut opened);
        assert_eq!(opened, vec![JobId(3)]);
        assert_eq!(gate.first_incomplete_pred(JobId(3), &inst), None);
    }

    #[test]
    fn first_incomplete_pred_names_the_blocker() {
        let inst = diamond();
        let mut gate = PrecedenceGate::new(&inst);
        assert_eq!(
            gate.first_incomplete_pred(JobId(3), &inst),
            Some(JobId(1))
        );
        let mut opened = Vec::new();
        gate.complete(JobId(0), &inst, &mut opened);
        gate.complete(JobId(1), &inst, &mut opened);
        assert_eq!(
            gate.first_incomplete_pred(JobId(3), &inst),
            Some(JobId(2))
        );
    }

    #[test]
    fn revoke_re_arms_opened_gates() {
        let inst = diamond();
        let mut gate = PrecedenceGate::new(&inst);
        let mut opened = Vec::new();
        gate.complete(JobId(0), &inst, &mut opened);
        gate.complete(JobId(1), &inst, &mut opened);
        gate.complete(JobId(2), &inst, &mut opened);
        assert!(gate.is_ready(JobId(3)));

        // Killing completed predecessor 2 must re-gate 3.
        let regated = gate.revoke(JobId(2), &inst);
        assert_eq!(regated, vec![JobId(3)]);
        assert!(!gate.is_ready(JobId(3)));
        assert_eq!(
            gate.first_incomplete_pred(JobId(3), &inst),
            Some(JobId(2))
        );
        // Revoking a never-completed job is a no-op.
        assert!(gate.revoke(JobId(3), &inst).is_empty());

        // Completing 2 again re-opens the gate.
        gate.hold(JobId(3));
        opened.clear();
        gate.complete(JobId(2), &inst, &mut opened);
        assert_eq!(opened, vec![JobId(3)]);
    }

    #[test]
    fn durable_bytes_track_gate_state() {
        let inst = diamond();
        let mut gate = PrecedenceGate::new(&inst);
        let mut before = Vec::new();
        gate.durable_bytes_if_active(&mut before);
        assert!(!before.is_empty());
        let mut opened = Vec::new();
        gate.complete(JobId(0), &inst, &mut opened);
        let mut after = Vec::new();
        gate.durable_bytes_if_active(&mut after);
        assert_ne!(before, after);
    }
}
