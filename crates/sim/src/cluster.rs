//! Instantaneous cluster state for online event-driven simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mris_types::{Amount, Instance, Job, JobId, Time, CAPACITY};

use crate::OrdTime;

/// The instantaneous state of `M` machines: per-machine available capacity
/// (exact fixed-point) and the set of running jobs with their completion
/// times. Used by online schedulers that start jobs at the current instant.
#[derive(Debug, Clone)]
pub struct ClusterState {
    num_machines: usize,
    num_resources: usize,
    /// Flattened `M x R` available capacity.
    avail: Vec<Amount>,
    /// Min-heap of running jobs by completion time.
    running: BinaryHeap<Reverse<(OrdTime, u32, JobId)>>,
}

impl ClusterState {
    /// An idle cluster of `num_machines` machines with `num_resources`
    /// resources each at full capacity.
    pub fn new(num_machines: usize, num_resources: usize) -> Self {
        assert!(num_machines > 0 && num_resources > 0);
        ClusterState {
            num_machines,
            num_resources,
            avail: vec![CAPACITY; num_machines * num_resources],
            running: BinaryHeap::new(),
        }
    }

    /// Number of machines `M`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Number of resources `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Remaining capacity vector of machine `m`.
    #[inline]
    pub fn avail(&self, m: usize) -> &[Amount] {
        &self.avail[m * self.num_resources..(m + 1) * self.num_resources]
    }

    /// Whether `demands` fits on machine `m` right now.
    #[inline]
    pub fn fits(&self, m: usize, demands: &[Amount]) -> bool {
        self.avail(m).iter().zip(demands).all(|(&a, &d)| d <= a)
    }

    /// The first machine (lowest index) where `demands` fits now, if any.
    pub fn first_fit(&self, demands: &[Amount]) -> Option<usize> {
        (0..self.num_machines).find(|&m| self.fits(m, demands))
    }

    /// Number of currently running jobs.
    #[inline]
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Completion time of the next job to finish, if any is running.
    pub fn next_completion(&self) -> Option<Time> {
        self.running.peek().map(|Reverse((t, _, _))| t.0)
    }

    /// Starts `job` on machine `m` at time `now`: capacity is consumed and a
    /// completion event is enqueued. Panics if the job does not fit.
    pub fn start(&mut self, m: usize, job: &Job, now: Time) {
        assert!(self.fits(m, &job.demands), "job {} does not fit", job.id);
        for (a, &d) in self.avail[m * self.num_resources..(m + 1) * self.num_resources]
            .iter_mut()
            .zip(job.demands.iter())
        {
            *a -= d;
        }
        self.running
            .push(Reverse((OrdTime(now + job.proc_time), m as u32, job.id)));
    }

    /// Pops every job completing at or before `now`, restores its capacity,
    /// and appends the machines that freed capacity to `freed` (deduplicated
    /// by the caller if needed).
    pub fn complete_due(&mut self, now: Time, instance: &Instance, freed: &mut Vec<usize>) {
        while let Some(Reverse((t, m, job))) = self.running.peek().copied() {
            if t.0 > now {
                break;
            }
            self.running.pop();
            let m = m as usize;
            let demands = &instance.job(job).demands;
            for (a, &d) in self.avail[m * self.num_resources..(m + 1) * self.num_resources]
                .iter_mut()
                .zip(demands.iter())
            {
                *a += d;
                debug_assert!(*a <= CAPACITY);
            }
            freed.push(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, p: f64, demand: f64) -> Job {
        Job::from_fractions(JobId(id), 0.0, p, 1.0, &[demand])
    }

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(jobs, 1).unwrap()
    }

    #[test]
    fn start_and_complete_roundtrip() {
        let inst = instance(vec![job(0, 2.0, 0.6), job(1, 3.0, 0.6)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        assert!(!cs.fits(0, &inst.job(JobId(1)).demands));
        assert_eq!(cs.next_completion(), Some(2.0));
        let mut freed = Vec::new();
        cs.complete_due(2.0, &inst, &mut freed);
        assert_eq!(freed, vec![0]);
        assert!(cs.fits(0, &inst.job(JobId(1)).demands));
        assert_eq!(cs.num_running(), 0);
    }

    #[test]
    fn complete_due_only_pops_due_jobs() {
        let inst = instance(vec![job(0, 2.0, 0.3), job(1, 5.0, 0.3)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
        let mut freed = Vec::new();
        cs.complete_due(3.0, &inst, &mut freed);
        assert_eq!(freed, vec![0]);
        assert_eq!(cs.next_completion(), Some(5.0));
    }

    #[test]
    fn first_fit_scans_machines_in_order() {
        let inst = instance(vec![job(0, 2.0, 1.0)]);
        let mut cs = ClusterState::new(3, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        assert_eq!(cs.first_fit(&inst.job(JobId(0)).demands), Some(1));
    }

    #[test]
    fn first_fit_none_when_cluster_full() {
        let inst = instance(vec![job(0, 5.0, 1.0), job(1, 5.0, 1.0), job(2, 1.0, 0.5)]);
        let mut cs = ClusterState::new(2, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(1, inst.job(JobId(1)), 0.0);
        assert_eq!(cs.first_fit(&inst.job(JobId(2)).demands), None);
        assert_eq!(cs.num_running(), 2);
    }

    #[test]
    fn simultaneous_completions_free_multiple_machines() {
        let inst = instance(vec![job(0, 2.0, 0.8), job(1, 2.0, 0.8)]);
        let mut cs = ClusterState::new(2, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(1, inst.job(JobId(1)), 0.0);
        let mut freed = Vec::new();
        cs.complete_due(2.0, &inst, &mut freed);
        freed.sort_unstable();
        assert_eq!(freed, vec![0, 1]);
        assert_eq!(cs.next_completion(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn start_rejects_oversubscription() {
        let inst = instance(vec![job(0, 2.0, 0.7), job(1, 2.0, 0.7)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
    }
}
