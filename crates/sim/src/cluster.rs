//! Instantaneous cluster state for online event-driven simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mris_types::{Amount, ClusterSpec, Instance, Job, JobId, Time, CAPACITY};

use crate::OrdTime;

/// The instantaneous state of `M` machines: per-machine available capacity
/// (exact fixed-point) and the set of running jobs with their completion
/// times. Used by online schedulers that start jobs at the current instant.
///
/// Machines can be *failed* ([`ClusterState::fail_machine`]): a down machine
/// reports no capacity ([`ClusterState::fits`] is `false` for every demand),
/// so first-fit scans and placement checks skip it until
/// [`ClusterState::recover_machine`].
///
/// Heterogeneous clusters ([`ClusterState::with_spec`]) give each machine its
/// own capacity vector and relative speed: a job with nominal processing time
/// `p` started on machine `m` completes after `p / speed_m` wall time. The
/// uniform constructor ([`ClusterState::new`]) is bit-identical to the
/// historical behavior (`p / 1.0 == p`, capacities all [`CAPACITY`]).
#[derive(Debug, Clone)]
pub struct ClusterState {
    num_machines: usize,
    num_resources: usize,
    /// Flattened `M x R` available capacity.
    avail: Vec<Amount>,
    /// Flattened `M x R` per-machine full capacity (all [`CAPACITY`] for a
    /// uniform cluster).
    caps: Vec<Amount>,
    /// Per-machine relative speed (all `1.0` for a uniform cluster).
    speeds: Vec<f64>,
    /// Every machine is the reference machine — durable encodings omit the
    /// machine table so uniform fingerprints are unchanged.
    uniform: bool,
    /// Per-machine failed flag; a down machine holds no capacity.
    down: Vec<bool>,
    /// Min-heap of running jobs by completion time.
    running: BinaryHeap<Reverse<(OrdTime, u32, JobId)>>,
}

impl ClusterState {
    /// An idle cluster of `num_machines` identical machines with
    /// `num_resources` resources each at full capacity.
    pub fn new(num_machines: usize, num_resources: usize) -> Self {
        assert!(num_machines > 0 && num_resources > 0);
        ClusterState {
            num_machines,
            num_resources,
            avail: vec![CAPACITY; num_machines * num_resources],
            caps: vec![CAPACITY; num_machines * num_resources],
            speeds: vec![1.0; num_machines],
            uniform: true,
            down: vec![false; num_machines],
            running: BinaryHeap::new(),
        }
    }

    /// An idle cluster following `spec`: machine `m` starts with `spec`'s
    /// per-resource capacity and runs jobs at `spec.speed(m)`.
    pub fn with_spec(spec: &ClusterSpec, num_resources: usize) -> Self {
        assert!(num_resources > 0);
        let num_machines = spec.len();
        let mut caps = Vec::with_capacity(num_machines * num_resources);
        for m in 0..num_machines {
            for r in 0..num_resources {
                caps.push(spec.capacity(m, r));
            }
        }
        ClusterState {
            num_machines,
            num_resources,
            avail: caps.clone(),
            caps,
            speeds: (0..num_machines).map(|m| spec.speed(m)).collect(),
            uniform: spec.is_uniform(),
            down: vec![false; num_machines],
            running: BinaryHeap::new(),
        }
    }

    /// Number of machines `M`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Number of resources `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Remaining capacity vector of machine `m`.
    #[inline]
    pub fn avail(&self, m: usize) -> &[Amount] {
        &self.avail[m * self.num_resources..(m + 1) * self.num_resources]
    }

    /// Full (idle) capacity vector of machine `m`.
    #[inline]
    pub fn capacity(&self, m: usize) -> &[Amount] {
        &self.caps[m * self.num_resources..(m + 1) * self.num_resources]
    }

    /// Machine `m`'s relative speed.
    #[inline]
    pub fn speed(&self, m: usize) -> f64 {
        self.speeds[m]
    }

    /// Wall time machine `m` needs for nominal processing time `p`. Exact
    /// (`p / 1.0 == p`) on uniform clusters.
    #[inline]
    pub fn effective_time(&self, m: usize, p: Time) -> Time {
        p / self.speeds[m]
    }

    /// Whether every machine is the reference machine.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Whether `demands` fits on machine `m` right now. Always `false` for a
    /// failed machine.
    #[inline]
    pub fn fits(&self, m: usize, demands: &[Amount]) -> bool {
        !self.down[m] && self.avail(m).iter().zip(demands).all(|(&a, &d)| d <= a)
    }

    /// Whether machine `m` is currently up (not failed).
    #[inline]
    pub fn is_up(&self, m: usize) -> bool {
        !self.down[m]
    }

    /// The first machine (lowest index) where `demands` fits now, if any.
    pub fn first_fit(&self, demands: &[Amount]) -> Option<usize> {
        (0..self.num_machines).find(|&m| self.fits(m, demands))
    }

    /// Number of currently running jobs.
    #[inline]
    pub fn num_running(&self) -> usize {
        self.running.len()
    }

    /// Completion time of the next job to finish, if any is running.
    pub fn next_completion(&self) -> Option<Time> {
        self.running.peek().map(|Reverse((t, _, _))| t.0)
    }

    /// Starts `job` on machine `m` at time `now`: capacity is consumed and a
    /// completion event is enqueued at `now + p / speed_m`. Panics if the job
    /// does not fit.
    pub fn start(&mut self, m: usize, job: &Job, now: Time) {
        assert!(self.fits(m, &job.demands), "job {} does not fit", job.id);
        for (a, &d) in self.avail[m * self.num_resources..(m + 1) * self.num_resources]
            .iter_mut()
            .zip(job.demands.iter())
        {
            *a -= d;
        }
        self.running.push(Reverse((
            OrdTime(now + job.proc_time / self.speeds[m]),
            m as u32,
            job.id,
        )));
    }

    /// Pops every job completing at or before `now`, restores its capacity,
    /// and appends the machines that freed capacity to `freed` (deduplicated
    /// by the caller if needed).
    pub fn complete_due(&mut self, now: Time, instance: &Instance, freed: &mut Vec<usize>) {
        while let Some(Reverse((t, m, job))) = self.running.peek().copied() {
            if t.0 > now {
                break;
            }
            self.running.pop();
            let m = m as usize;
            let demands = &instance.job(job).demands;
            let base = m * self.num_resources;
            for (r, (a, &d)) in self.avail[base..base + self.num_resources]
                .iter_mut()
                .zip(demands.iter())
                .enumerate()
            {
                *a += d;
                debug_assert!(*a <= self.caps[base + r]);
            }
            freed.push(m);
        }
    }

    /// Like [`ClusterState::complete_due`], but records `(job, machine)` for
    /// each popped completion instead of just the freed machine. Used by the
    /// fault-aware driver, which needs per-job completion records for its
    /// invariant checker.
    pub fn complete_due_recorded(
        &mut self,
        now: Time,
        instance: &Instance,
        completed: &mut Vec<(JobId, usize)>,
    ) {
        while let Some(Reverse((t, m, job))) = self.running.peek().copied() {
            if t.0 > now {
                break;
            }
            self.running.pop();
            let m = m as usize;
            let demands = &instance.job(job).demands;
            let base = m * self.num_resources;
            for (r, (a, &d)) in self.avail[base..base + self.num_resources]
                .iter_mut()
                .zip(demands.iter())
                .enumerate()
            {
                *a += d;
                debug_assert!(*a <= self.caps[base + r]);
            }
            completed.push((job, m));
        }
    }

    /// Iterates over the running jobs as `(completion_time, machine, job)`,
    /// in heap (unspecified) order.
    pub fn running_jobs(&self) -> impl Iterator<Item = (Time, usize, JobId)> + '_ {
        self.running
            .iter()
            .map(|&Reverse((t, m, job))| (t.0, m as usize, job))
    }

    /// Fails machine `m`: every job running on it is killed (its completion
    /// event removed), the machine's capacity is restored to full (held
    /// behind the down flag, so nothing can use it), and the machine reports
    /// no capacity until [`ClusterState::recover_machine`]. Returns the
    /// killed jobs sorted by id.
    ///
    /// # Panics
    ///
    /// If `m` is already down — the caller (the fault-event queue) is
    /// responsible for absorbing failures targeting down machines.
    pub fn fail_machine(&mut self, m: usize) -> Vec<JobId> {
        assert!(!self.down[m], "machine {m} failed while already down");
        self.down[m] = true;
        let mut killed = Vec::new();
        let mut kept = Vec::with_capacity(self.running.len());
        for Reverse((t, machine, job)) in self.running.drain() {
            if machine as usize == m {
                killed.push(job);
            } else {
                kept.push(Reverse((t, machine, job)));
            }
        }
        self.running = BinaryHeap::from(kept);
        let base = m * self.num_resources;
        self.avail[base..base + self.num_resources]
            .copy_from_slice(&self.caps[base..base + self.num_resources]);
        killed.sort_unstable();
        killed
    }

    /// Brings a failed machine back up at full capacity.
    ///
    /// # Panics
    ///
    /// If `m` is not down.
    pub fn recover_machine(&mut self, m: usize) {
        assert!(self.down[m], "machine {m} recovered while already up");
        self.down[m] = false;
        debug_assert!(self.avail(m) == self.capacity(m));
    }

    /// Appends a canonical little-endian encoding of the cluster state to
    /// `out`, for the service durability layer's snapshots. Running jobs
    /// are emitted in sorted `(completion, machine, job)` order so two
    /// clusters with the same observable state encode identically
    /// regardless of heap layout history. The machine table (capacities and
    /// speed bits) is appended **only for non-uniform clusters**, so uniform
    /// fingerprints are unchanged from before heterogeneity existed.
    pub fn durable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.num_machines as u64).to_le_bytes());
        out.extend_from_slice(&(self.num_resources as u64).to_le_bytes());
        for &a in &self.avail {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &d in &self.down {
            out.push(d as u8);
        }
        let mut running: Vec<(u64, u32, u32)> = self
            .running
            .iter()
            .map(|&Reverse((t, m, job))| (t.0.to_bits(), m, job.0))
            .collect();
        running.sort_unstable();
        out.extend_from_slice(&(running.len() as u64).to_le_bytes());
        for (t, m, j) in running {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&m.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
        }
        if !self.uniform {
            for &c in &self.caps {
                out.extend_from_slice(&c.to_le_bytes());
            }
            for &s in &self.speeds {
                out.extend_from_slice(&s.to_bits().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::MachineSpec;

    fn job(id: u32, p: f64, demand: f64) -> Job {
        Job::from_fractions(JobId(id), 0.0, p, 1.0, &[demand])
    }

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(jobs, 1).unwrap()
    }

    #[test]
    fn start_and_complete_roundtrip() {
        let inst = instance(vec![job(0, 2.0, 0.6), job(1, 3.0, 0.6)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        assert!(!cs.fits(0, &inst.job(JobId(1)).demands));
        assert_eq!(cs.next_completion(), Some(2.0));
        let mut freed = Vec::new();
        cs.complete_due(2.0, &inst, &mut freed);
        assert_eq!(freed, vec![0]);
        assert!(cs.fits(0, &inst.job(JobId(1)).demands));
        assert_eq!(cs.num_running(), 0);
    }

    #[test]
    fn complete_due_only_pops_due_jobs() {
        let inst = instance(vec![job(0, 2.0, 0.3), job(1, 5.0, 0.3)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
        let mut freed = Vec::new();
        cs.complete_due(3.0, &inst, &mut freed);
        assert_eq!(freed, vec![0]);
        assert_eq!(cs.next_completion(), Some(5.0));
    }

    #[test]
    fn first_fit_scans_machines_in_order() {
        let inst = instance(vec![job(0, 2.0, 1.0)]);
        let mut cs = ClusterState::new(3, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        assert_eq!(cs.first_fit(&inst.job(JobId(0)).demands), Some(1));
    }

    #[test]
    fn first_fit_none_when_cluster_full() {
        let inst = instance(vec![job(0, 5.0, 1.0), job(1, 5.0, 1.0), job(2, 1.0, 0.5)]);
        let mut cs = ClusterState::new(2, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(1, inst.job(JobId(1)), 0.0);
        assert_eq!(cs.first_fit(&inst.job(JobId(2)).demands), None);
        assert_eq!(cs.num_running(), 2);
    }

    #[test]
    fn simultaneous_completions_free_multiple_machines() {
        let inst = instance(vec![job(0, 2.0, 0.8), job(1, 2.0, 0.8)]);
        let mut cs = ClusterState::new(2, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(1, inst.job(JobId(1)), 0.0);
        let mut freed = Vec::new();
        cs.complete_due(2.0, &inst, &mut freed);
        freed.sort_unstable();
        assert_eq!(freed, vec![0, 1]);
        assert_eq!(cs.next_completion(), None);
    }

    #[test]
    fn fail_kills_running_jobs_and_blocks_fits() {
        let inst = instance(vec![job(0, 2.0, 0.3), job(1, 5.0, 0.3), job(2, 3.0, 0.3)]);
        let mut cs = ClusterState::new(2, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
        cs.start(1, inst.job(JobId(2)), 0.0);
        let killed = cs.fail_machine(0);
        assert_eq!(killed, vec![JobId(0), JobId(1)]);
        assert!(!cs.is_up(0));
        assert!(cs.is_up(1));
        // Down machines report no capacity, even for a zero demand.
        assert!(!cs.fits(0, &inst.job(JobId(0)).demands));
        assert_eq!(cs.first_fit(&inst.job(JobId(0)).demands), Some(1));
        // The survivor on machine 1 still completes normally.
        assert_eq!(cs.next_completion(), Some(3.0));
        let mut freed = Vec::new();
        cs.complete_due(3.0, &inst, &mut freed);
        assert_eq!(freed, vec![1]);
        // Recovery restores full capacity.
        cs.recover_machine(0);
        assert!(cs.is_up(0));
        assert!(cs.fits(0, &inst.job(JobId(0)).demands));
    }

    #[test]
    fn fail_on_idle_machine_kills_nothing() {
        let mut cs = ClusterState::new(2, 1);
        assert_eq!(cs.fail_machine(1), vec![]);
        assert!(!cs.is_up(1));
        cs.recover_machine(1);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_fail_panics() {
        let mut cs = ClusterState::new(1, 1);
        cs.fail_machine(0);
        cs.fail_machine(0);
    }

    #[test]
    #[should_panic(expected = "already up")]
    fn recover_up_machine_panics() {
        let mut cs = ClusterState::new(1, 1);
        cs.recover_machine(0);
    }

    #[test]
    fn complete_due_recorded_reports_jobs() {
        let inst = instance(vec![job(0, 2.0, 0.3), job(1, 5.0, 0.3)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
        let mut done = Vec::new();
        cs.complete_due_recorded(2.0, &inst, &mut done);
        assert_eq!(done, vec![(JobId(0), 0)]);
        cs.complete_due_recorded(5.0, &inst, &mut done);
        assert_eq!(done, vec![(JobId(0), 0), (JobId(1), 0)]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn start_rejects_oversubscription() {
        let inst = instance(vec![job(0, 2.0, 0.7), job(1, 2.0, 0.7)]);
        let mut cs = ClusterState::new(1, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(0, inst.job(JobId(1)), 0.0);
    }

    #[test]
    fn fast_machine_finishes_early() {
        let inst = instance(vec![job(0, 4.0, 0.5), job(1, 4.0, 0.5)]);
        let spec = ClusterSpec::related(2, &[1.0, 2.0]);
        let mut cs = ClusterState::with_spec(&spec, 1);
        assert!(!cs.is_uniform());
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.start(1, inst.job(JobId(1)), 0.0);
        // Machine 1 runs at speed 2: the job completes at t = 2, not 4.
        assert_eq!(cs.next_completion(), Some(2.0));
        let mut freed = Vec::new();
        cs.complete_due(2.0, &inst, &mut freed);
        assert_eq!(freed, vec![1]);
        cs.complete_due(4.0, &inst, &mut freed);
        assert_eq!(freed, vec![1, 0]);
    }

    #[test]
    fn restricted_capacity_blocks_fit() {
        let inst = instance(vec![job(0, 2.0, 0.6)]);
        let spec = ClusterSpec::new(vec![
            MachineSpec::from_fractions(1.0, &[0.5]),
            MachineSpec::unit(),
        ]);
        let cs = ClusterState::with_spec(&spec, 1);
        // Machine 0 caps at 0.5 and cannot host a 0.6 demand.
        assert!(!cs.fits(0, &inst.job(JobId(0)).demands));
        assert_eq!(cs.first_fit(&inst.job(JobId(0)).demands), Some(1));
    }

    #[test]
    fn fail_restores_restricted_capacity_not_global() {
        let inst = instance(vec![job(0, 2.0, 0.3)]);
        let spec = ClusterSpec::new(vec![MachineSpec::from_fractions(1.0, &[0.5])]);
        let mut cs = ClusterState::with_spec(&spec, 1);
        cs.start(0, inst.job(JobId(0)), 0.0);
        cs.fail_machine(0);
        cs.recover_machine(0);
        assert_eq!(cs.avail(0), cs.capacity(0));
        assert_eq!(cs.avail(0)[0], CAPACITY / 2);
    }

    #[test]
    fn uniform_durable_bytes_have_no_machine_table() {
        let mut uni = Vec::new();
        ClusterState::new(2, 1).durable_bytes(&mut uni);
        let mut via_spec = Vec::new();
        ClusterState::with_spec(&ClusterSpec::uniform(2), 1).durable_bytes(&mut via_spec);
        assert_eq!(uni, via_spec);
        let mut het = Vec::new();
        ClusterState::with_spec(&ClusterSpec::related(2, &[2.0]), 1).durable_bytes(&mut het);
        assert!(het.len() > uni.len());
    }
}
