//! Committed-schedule machine timelines with earliest-fit queries.
//!
//! A [`MachineTimeline`] is a step function from time to per-resource usage,
//! stored as sorted breakpoints. MRIS commits schedule fragments ahead of
//! wall-clock time and backfills jobs at "the earliest feasible instant
//! `>= t`", which requires querying usage over an entire candidate window
//! `[s, s + p)` — something the instantaneous [`ClusterState`] cannot answer.
//!
//! # The skip index
//!
//! Scanning breakpoints one by one makes a query `O(segments)` and a batch
//! placement quadratic over a trace. The timeline therefore maintains a
//! per-resource **interval-max/min skip index**: segments are grouped into
//! fixed blocks of [`BLOCK`] and each block stores, per resource, the
//! maximum and minimum usage over its segments (a branching-factor-`BLOCK`
//! segment tree of height two, rebuilt incrementally on commit).
//! [`MachineTimeline::earliest_fit`] uses it two ways:
//!
//! * a block whose **max** usage plus the demand fits capacity on every
//!   resource contains no violating segment — the feasibility scan jumps
//!   over all of it in `O(R)`;
//! * a block whose **min** usage plus the demand exceeds capacity on some
//!   resource consists *only* of violating segments — the candidate start
//!   jumps past the entire block in `O(R)`.
//!
//! On top of that, cluster-level scans are pruned with a best-so-far cutoff
//! (machines that cannot beat the current best abort early) and answered
//! from a per-machine hint cache when a batch repeats the same query
//! (invalidated only by commits that overlap the hinted window — usage is
//! monotone, so other commits cannot change the answer).
//!
//! # Shards and the persistent scan pool
//!
//! A [`ClusterTimelines`] stores its machines in fixed-size
//! [`TimelineShard`]s of [`SHARD_SIZE`] machines. Shards are the unit of
//! parallel work: once the machine count reaches
//! [`PARALLEL_SCAN_THRESHOLD`], `earliest_fit` queries are served by a
//! **persistent** per-cluster worker pool ([`crate::pool`]) whose scanners
//! claim shards dynamically and share a lock-free best-so-far bound —
//! threads are created once per cluster, never per query (per-query
//! [`std::thread::scope`] spawns measured as a 0.93x *slowdown* at 256
//! machines). Mutations (`commit`, `reset_machine`, `compact_before`) go
//! through `&mut self` shard ownership, so per-machine fit hints and skip
//! indexes are only ever touched by one scanner at a time. The sequential
//! cutoff-pruned scan below the threshold is byte-identical to what it
//! always was, and the pooled scan reproduces it bit for bit (same
//! lowest-machine-index tie-break, same one-ulp slack semantics).
//!
//! [`ClusterState`]: crate::ClusterState

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mris_types::{Amount, ClusterSpec, Job, Time, CAPACITY};

use crate::pool::ScanPool;

/// Segments per skip-index block. 16 is small enough that a block is often
/// uniformly saturated (so the min-skip fires inside packed prefixes) while
/// keeping the index under 10% of segment storage; larger blocks straddle the
/// packed/idle boundary and lose most skip opportunities.
pub const BLOCK: usize = 16;

/// Machine count at which [`ClusterTimelines::earliest_fit`] switches from
/// the sequential cutoff-pruned scan to the persistent sharded scan pool.
/// The sequential scan's cutoff pruning already skips most machines, so
/// parallelism only pays for itself on wide clusters; below this threshold
/// the pool is never even spawned.
/// [`ClusterTimelines::set_parallel_threshold`] overrides it.
pub const PARALLEL_SCAN_THRESHOLD: usize = 512;

/// Machines per [`TimelineShard`] — the unit of work one pool scanner
/// claims at a time. 64 machines is coarse enough that the claim CAS and
/// the shared-bound traffic are amortized over thousands of probed
/// segments, while still splitting a 1k-machine cluster into ~16 claims,
/// plenty for dynamic load balancing across at most 8 scanners.
/// [`ClusterTimelines::with_shard_size`] overrides it (the differential
/// suite runs shard sizes 1, 7, and 64).
pub const SHARD_SIZE: usize = 64;

/// What the last scan of a machine learned, kept for reuse by later probes.
///
/// With `exact == true`, `result` is the full answer to the hinted query —
/// valid until a commit overlaps the hinted window or the timeline is
/// compacted/reset. With `exact == false`, the scan was cut off and `result`
/// is only a proven *lower bound* on the answer ("no feasible start below
/// `result`") — usage only ever increases, so a bound stays valid across
/// commits unconditionally.
///
/// Either form also bounds every *at-least-as-hard* query (later `from`,
/// longer `dur`, pointwise-greater `demands`) from below, which lets a
/// cutoff-pruned cluster sweep rule a machine out without scanning it.
#[derive(Debug, Clone)]
struct FitHint {
    from: Time,
    dur: Time,
    demands: Vec<Amount>,
    result: Time,
    exact: bool,
}

/// Per-machine resource usage over time as a step function.
///
/// Invariants:
/// * breakpoints are strictly increasing, starting at `0.0`;
/// * segment `i` spans `[times[i], times[i+1])` (the last segment extends to
///   infinity) with constant usage `usage[i*R .. (i+1)*R]`;
/// * every committed occupation is finite, so the last segment's usage is
///   always all-zero — which guarantees [`MachineTimeline::earliest_fit`]
///   terminates for any demand within machine capacity;
/// * `block_max`/`block_min` hold the per-resource max/min usage of each
///   [`BLOCK`]-segment block (the skip index);
/// * queries are only valid at or after [`MachineTimeline::compaction_watermark`].
#[derive(Debug)]
pub struct MachineTimeline {
    num_resources: usize,
    /// Per-resource capacity of this machine (all [`CAPACITY`] for the
    /// reference machine). Feasibility compares usage against this, not the
    /// global constant, so restricted machines reject what they cannot hold.
    cap: Vec<Amount>,
    /// Relative speed of this machine (`1.0` for the reference machine).
    /// The timeline itself is wall-time; cluster-level scans and commits
    /// scale nominal durations by this before querying.
    speed: f64,
    times: Vec<Time>,
    usage: Vec<Amount>,
    /// Flattened `num_blocks x R` per-resource maximum usage per block.
    block_max: Vec<Amount>,
    /// Flattened `num_blocks x R` per-resource minimum usage per block.
    block_min: Vec<Amount>,
    /// Earliest instant at which queries are still exact (see
    /// [`MachineTimeline::compact_before`]).
    watermark: Time,
    /// What the last scan learned (answer or lower bound); interior-mutable
    /// so `&self` queries can maintain it (also from the parallel cluster
    /// scan).
    hint: Mutex<Option<FitHint>>,
}

impl Clone for MachineTimeline {
    fn clone(&self) -> Self {
        MachineTimeline {
            num_resources: self.num_resources,
            cap: self.cap.clone(),
            speed: self.speed,
            times: self.times.clone(),
            usage: self.usage.clone(),
            block_max: self.block_max.clone(),
            block_min: self.block_min.clone(),
            watermark: self.watermark,
            hint: Mutex::new(self.hint.lock().expect("timeline hint lock").clone()),
        }
    }
}

impl MachineTimeline {
    /// An empty timeline for a reference machine (unit speed, full
    /// capacity) with `num_resources` resources.
    pub fn new(num_resources: usize) -> Self {
        Self::with_limits(num_resources, vec![CAPACITY; num_resources], 1.0)
    }

    /// An empty timeline for a machine with the given per-resource
    /// capacities and relative speed.
    ///
    /// # Panics
    ///
    /// If `cap.len() != num_resources`, any capacity is outside
    /// `(0, CAPACITY]`, or `speed` is not finite and positive.
    pub fn with_limits(num_resources: usize, cap: Vec<Amount>, speed: f64) -> Self {
        assert!(num_resources > 0);
        assert_eq!(cap.len(), num_resources);
        assert!(
            cap.iter().all(|&c| c > 0 && c <= CAPACITY),
            "machine capacities must lie in (0, CAPACITY]"
        );
        assert!(
            speed.is_finite() && speed > 0.0,
            "machine speed must be finite and positive, got {speed}"
        );
        MachineTimeline {
            num_resources,
            cap,
            speed,
            times: vec![0.0],
            usage: vec![0; num_resources],
            block_max: vec![0; num_resources],
            block_min: vec![0; num_resources],
            watermark: 0.0,
            hint: Mutex::new(None),
        }
    }

    /// Number of resources `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// This machine's per-resource capacity vector.
    #[inline]
    pub fn capacity(&self) -> &[Amount] {
        &self.cap
    }

    /// This machine's relative speed.
    #[inline]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Whether this is a reference machine (unit speed, full capacity):
    /// such timelines behave bit-identically to the pre-heterogeneity code.
    #[inline]
    pub fn is_unit_machine(&self) -> bool {
        self.speed.to_bits() == 1.0_f64.to_bits() && self.cap.iter().all(|&c| c == CAPACITY)
    }

    /// Number of segments in the step function (for diagnostics).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.times.len()
    }

    /// Earliest instant at which queries are still exact. `0.0` until
    /// [`MachineTimeline::compact_before`] discards history.
    #[inline]
    pub fn compaction_watermark(&self) -> Time {
        self.watermark
    }

    /// Appends a canonical little-endian encoding of the committed step
    /// function (watermark, breakpoints as f64 bit patterns, usage) to
    /// `out`. The block skip index and the fit-hint cache are derived
    /// acceleration structures and are excluded, so two timelines with the
    /// same committed load encode identically.
    pub fn durable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.watermark.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.times.len() as u64).to_le_bytes());
        for &t in &self.times {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        for &u in &self.usage {
            out.extend_from_slice(&u.to_le_bytes());
        }
    }

    /// Index of the segment containing `t` (requires `t >= 0`).
    fn segment_index(&self, t: Time) -> usize {
        debug_assert!(t >= 0.0);
        // Last index i with times[i] <= t.
        self.times.partition_point(|&bp| bp <= t) - 1
    }

    /// Usage vector in effect at instant `t`.
    ///
    /// After [`MachineTimeline::compact_before`], instants earlier than the
    /// watermark no longer have exact usage; querying them is a caller bug
    /// (checked in debug builds).
    pub fn usage_at(&self, t: Time) -> &[Amount] {
        debug_assert!(
            t >= self.watermark,
            "usage_at({t}) queries history compacted away before {}",
            self.watermark
        );
        let i = self.segment_index(t);
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    fn segment_usage(&self, i: usize) -> &[Amount] {
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    /// Whether every segment of block `b` is feasible for `demands` (its
    /// per-resource max usage leaves room on every resource).
    #[inline]
    fn block_feasible(&self, b: usize, demands: &[Amount]) -> bool {
        let r = self.num_resources;
        self.block_max[b * r..(b + 1) * r]
            .iter()
            .zip(demands)
            .zip(&self.cap)
            .all(|((&u, &d), &c)| u + d <= c)
    }

    /// Whether every segment of block `b` violates `demands` (some resource's
    /// per-resource *min* usage already exceeds the remaining room).
    #[inline]
    fn block_saturated(&self, b: usize, demands: &[Amount]) -> bool {
        let r = self.num_resources;
        self.block_min[b * r..(b + 1) * r]
            .iter()
            .zip(demands)
            .zip(&self.cap)
            .any(|((&u, &d), &c)| u + d > c)
    }

    /// Recomputes the skip-index entry of block `b` in place.
    /// Dispatches to a core monomorphized on the resource count — commits
    /// that splice breakpoints into the middle of a long timeline recompute
    /// every shifted tail block, so the per-segment fold is hot.
    fn recompute_block(&mut self, b: usize) {
        match self.num_resources {
            1 => self.recompute_block_core::<1>(b),
            2 => self.recompute_block_core::<2>(b),
            3 => self.recompute_block_core::<3>(b),
            4 => self.recompute_block_core::<4>(b),
            _ => self.recompute_block_any(b),
        }
    }

    /// Monomorphized fold; `R` must equal `self.num_resources`. The min/max
    /// accumulators live in fixed-size locals and `chunks_exact` removes
    /// the per-visit bounds checks. Mirrors
    /// [`MachineTimeline::recompute_block_any`] — keep the two in sync.
    fn recompute_block_core<const R: usize>(&mut self, b: usize) {
        debug_assert_eq!(self.num_resources, R);
        let lo = b * BLOCK;
        let hi = (lo + BLOCK).min(self.times.len());
        debug_assert!(lo < hi);
        let usage = &self.usage[lo * R..hi * R];
        let mut mx: [Amount; R] = std::array::from_fn(|r| usage[r]);
        let mut mn = mx;
        for seg in usage[R..].chunks_exact(R) {
            for r in 0..R {
                mx[r] = mx[r].max(seg[r]);
                mn[r] = mn[r].min(seg[r]);
            }
        }
        let base = b * R;
        self.block_max[base..base + R].copy_from_slice(&mx);
        self.block_min[base..base + R].copy_from_slice(&mn);
    }

    /// Slice-generic fold for resource counts with no monomorphized core.
    fn recompute_block_any(&mut self, b: usize) {
        let r = self.num_resources;
        let lo = b * BLOCK;
        let hi = (lo + BLOCK).min(self.times.len());
        debug_assert!(lo < hi);
        let base = b * r;
        self.block_max[base..base + r].copy_from_slice(&self.usage[lo * r..lo * r + r]);
        self.block_min[base..base + r].copy_from_slice(&self.usage[lo * r..lo * r + r]);
        for i in lo + 1..hi {
            for (res, &u) in self.usage[i * r..(i + 1) * r].iter().enumerate() {
                if u > self.block_max[base + res] {
                    self.block_max[base + res] = u;
                }
                if u < self.block_min[base + res] {
                    self.block_min[base + res] = u;
                }
            }
        }
    }

    /// Rebuilds the skip index for every block containing a segment `>=
    /// first_seg` (segment indices at or after an insertion point shift, so
    /// their blocks must be recomputed; earlier blocks are untouched).
    fn rebuild_index_from(&mut self, first_seg: usize) {
        let r = self.num_resources;
        let num_blocks = self.times.len().div_ceil(BLOCK);
        let first_block = first_seg / BLOCK;
        self.block_max.resize(num_blocks * r, 0);
        self.block_min.resize(num_blocks * r, 0);
        for b in first_block..num_blocks {
            self.recompute_block(b);
        }
    }

    /// Whether a job with `demands` fits throughout `[start, start + dur)`.
    pub fn is_feasible(&self, start: Time, dur: Time, demands: &[Amount]) -> bool {
        debug_assert_eq!(demands.len(), self.num_resources);
        debug_assert!(dur > 0.0 && start >= 0.0);
        debug_assert!(
            start >= self.watermark,
            "is_feasible({start}, ..) queries history compacted away before {}",
            self.watermark
        );
        let n = self.times.len();
        let end = start + dur;
        let mut i = self.segment_index(start);
        while i < n && self.times[i] < end {
            if i.is_multiple_of(BLOCK) && self.block_feasible(i / BLOCK, demands) {
                i += BLOCK;
                continue;
            }
            let seg = self.segment_usage(i);
            if seg
                .iter()
                .zip(demands)
                .zip(&self.cap)
                .any(|((&u, &d), &c)| u + d > c)
            {
                return false;
            }
            i += 1;
        }
        true
    }

    /// The earliest instant `s >= from` such that the job fits throughout
    /// `[s, s + dur)`. Always exists for demands within machine capacity
    /// because the timeline's tail is empty. Runs in `O(segments / BLOCK +
    /// BLOCK)` per infeasible run skipped, instead of the naive
    /// `O(segments)` per segment stepped.
    pub fn earliest_fit(&self, from: Time, dur: Time, demands: &[Amount]) -> Time {
        self.earliest_fit_bounded(from, dur, demands, f64::INFINITY)
            .expect("unbounded earliest_fit always finds the empty tail")
    }

    /// Like [`MachineTimeline::earliest_fit`], but gives up as soon as the
    /// answer provably is `>= cutoff` and returns `None`. Cluster scans use
    /// this to prune machines that cannot beat the best start found so far.
    /// A non-finite `cutoff` disables pruning.
    pub fn earliest_fit_bounded(
        &self,
        from: Time,
        dur: Time,
        demands: &[Amount],
        cutoff: Time,
    ) -> Option<Time> {
        debug_assert_eq!(demands.len(), self.num_resources);
        assert!(dur > 0.0, "job duration must be positive");
        assert!(
            demands.iter().all(|&d| d <= CAPACITY),
            "demand exceeds machine capacity; job can never fit"
        );
        debug_assert!(
            from.max(0.0) >= self.watermark,
            "earliest_fit(from = {from}) queries history compacted away before {}",
            self.watermark
        );
        // Uphold the documented contract in release builds too: below the
        // watermark the retained step function is approximate (compaction
        // folded history into the first segment), so an unclamped scan
        // could return a stale pre-watermark start.
        let from = from.max(self.watermark);
        let cutoff = if cutoff.is_finite() {
            cutoff
        } else {
            f64::INFINITY
        };
        let mut slot = self.hint.lock().expect("timeline hint lock");
        self.fit_via_hint(&mut slot, from, dur, demands, cutoff)
    }

    /// Like [`MachineTimeline::earliest_fit_bounded`], but for exclusive
    /// access: the hint cache is reached through `Mutex::get_mut`, skipping
    /// the lock entirely. Batch placement probes every machine once per job,
    /// so the per-probe lock round-trips add up.
    pub fn earliest_fit_bounded_mut(
        &mut self,
        from: Time,
        dur: Time,
        demands: &[Amount],
        cutoff: Time,
    ) -> Option<Time> {
        debug_assert_eq!(demands.len(), self.num_resources);
        assert!(dur > 0.0, "job duration must be positive");
        assert!(
            demands.iter().all(|&d| d <= CAPACITY),
            "demand exceeds machine capacity; job can never fit"
        );
        debug_assert!(
            from.max(0.0) >= self.watermark,
            "earliest_fit(from = {from}) queries history compacted away before {}",
            self.watermark
        );
        // Same release-mode watermark clamp as `earliest_fit_bounded`.
        let from = from.max(self.watermark);
        let cutoff = if cutoff.is_finite() {
            cutoff
        } else {
            f64::INFINITY
        };
        let mut slot = std::mem::take(self.hint.get_mut().expect("timeline hint lock"));
        let result = self.fit_via_hint(&mut slot, from, dur, demands, cutoff);
        *self.hint.get_mut().expect("timeline hint lock") = slot;
        result
    }

    /// The shared hint-then-scan core of the `earliest_fit_bounded` family,
    /// with the hint slot already exclusively borrowed by the caller.
    fn fit_via_hint(
        &self,
        slot: &mut Option<FitHint>,
        from: Time,
        dur: Time,
        demands: &[Amount],
        cutoff: Time,
    ) -> Option<Time> {
        mris_obs::counter_add("mris_timeline_probes_total", 1);
        if let Some(hint) = slot.as_ref() {
            if hint.exact
                && hint.dur == dur
                && hint.from <= from
                && from <= hint.result
                && *hint.demands == *demands
            {
                mris_obs::counter_add("mris_timeline_hint_hits_total", 1);
                let hit = hint.result;
                return if hit < cutoff { Some(hit) } else { None };
            }
            // Dominance pruning: answers are monotone in `from`, `dur`, and
            // every demand, so a query at least as hard as the hinted one has
            // an answer >= hint.result; when that already reaches the cutoff
            // the machine is ruled out without scanning.
            if hint.result >= cutoff
                && hint.from <= from
                && hint.dur <= dur
                && hint.demands.len() == demands.len()
                && hint.demands.iter().zip(demands).all(|(&h, &d)| h <= d)
            {
                mris_obs::counter_add("mris_timeline_hint_hits_total", 1);
                return None;
            }
        }
        mris_obs::counter_add("mris_timeline_hint_misses_total", 1);
        let result = self.scan_earliest(from, dur, demands, cutoff);
        // Remember what the scan learned either way: the answer itself, or —
        // on a cutoff abort — that this query has no feasible start below
        // `cutoff` (the scan is exhaustive up to there).
        let (learned, exact) = match result {
            Some(t) => (t, true),
            None => (cutoff, false),
        };
        if learned.is_finite() {
            match slot.as_mut() {
                // Reuse the existing allocation: batch placement stores a
                // hint on every probe, so this path is hot.
                Some(hint) => {
                    hint.from = from;
                    hint.dur = dur;
                    hint.demands.clear();
                    hint.demands.extend_from_slice(demands);
                    hint.result = learned;
                    hint.exact = exact;
                }
                None => {
                    *slot = Some(FitHint {
                        from,
                        dur,
                        demands: demands.to_vec(),
                        result: learned,
                        exact,
                    });
                }
            }
        }
        result
    }

    /// The cutoff-pruned skip-index scan behind the `earliest_fit` family.
    ///
    /// Dispatches to a core monomorphized on the resource count so the
    /// per-segment feasibility check compiles to straight-line compares —
    /// the scan visits hundreds of thousands of segments per scheduling run,
    /// so per-visit iterator and bounds-check overhead is measurable.
    fn scan_earliest(
        &self,
        from: Time,
        dur: Time,
        demands: &[Amount],
        cutoff: Time,
    ) -> Option<Time> {
        // A demand beyond this machine's own capacity never fits here (other
        // machines may still hold it — the cluster scan just skips this one).
        if demands.iter().zip(&self.cap).any(|(&d, &c)| d > c) {
            return None;
        }
        match demands.len() {
            1 => self.scan_core::<1>(from, dur, demands, cutoff),
            2 => self.scan_core::<2>(from, dur, demands, cutoff),
            3 => self.scan_core::<3>(from, dur, demands, cutoff),
            4 => self.scan_core::<4>(from, dur, demands, cutoff),
            _ => self.scan_any(from, dur, demands, cutoff),
        }
    }

    /// Monomorphized scan core; `R` must equal `demands.len()`. Mirrors
    /// [`MachineTimeline::scan_any`] exactly — keep the two in sync.
    fn scan_core<const R: usize>(
        &self,
        from: Time,
        dur: Time,
        demands: &[Amount],
        cutoff: Time,
    ) -> Option<Time> {
        debug_assert_eq!(demands.len(), R);
        // Free room per resource: `usage + demand > cap` iff `usage > room`
        // (exact in fixed point), saving an add per visit. The caller
        // (`scan_earliest`) already rejected demands above this machine's
        // capacity, so the subtraction cannot underflow.
        let room: [Amount; R] = std::array::from_fn(|r| self.cap[r] - demands[r]);
        let n = self.times.len();
        let times = &self.times[..n];
        let usage = &self.usage[..n * R];
        let bmax = self.block_max.as_slice();
        let bmin = self.block_min.as_slice();
        let mut cand = from.max(0.0);
        if cand >= cutoff {
            return None;
        }
        // `cand` lands on a breakpoint after every jump, so the binary
        // search runs once and the window start `start_k` is carried from
        // there. After a hole-hop, segment `start_k - 1` (the window's first
        // segment) was just verified feasible by the advance loop, so the
        // window re-check starts one past it.
        let mut start_k = self.segment_index(cand);
        let mut block_jumps: u64 = 0;
        let result = 'outer: loop {
            let end = cand + dur;
            let mut k = start_k;
            while k < n && times[k] < end {
                if k.is_multiple_of(BLOCK) {
                    let mut feasible = true;
                    for r in 0..R {
                        feasible &= bmax[(k / BLOCK) * R + r] <= room[r];
                    }
                    if feasible {
                        k += BLOCK;
                        block_jumps += 1;
                        continue;
                    }
                }
                let mut fits = true;
                for r in 0..R {
                    fits &= usage[k * R + r] <= room[r];
                }
                if !fits {
                    // Any start overlapping this segment is infeasible; jump
                    // past the whole violating run, giving up as soon as the
                    // run provably reaches the cutoff. The last segment is
                    // all-zero so a violating segment always has a feasible
                    // successor.
                    let mut j = k + 1;
                    loop {
                        debug_assert!(j < n, "tail segment is all-zero and must be feasible");
                        if times[j] >= cutoff {
                            break 'outer None;
                        }
                        if j.is_multiple_of(BLOCK) {
                            let mut saturated = false;
                            for r in 0..R {
                                saturated |= bmin[(j / BLOCK) * R + r] > room[r];
                            }
                            if saturated {
                                j += BLOCK;
                                block_jumps += 1;
                                continue;
                            }
                        }
                        let mut free = true;
                        for r in 0..R {
                            free &= usage[j * R + r] <= room[r];
                        }
                        if free {
                            break;
                        }
                        j += 1;
                    }
                    cand = times[j];
                    start_k = j + 1;
                    continue 'outer;
                }
                k += 1;
            }
            break 'outer Some(cand);
        };
        if block_jumps > 0 {
            mris_obs::counter_add("mris_timeline_block_jumps_total", block_jumps);
        }
        result
    }

    /// Slice-generic scan for resource counts with no monomorphized core.
    /// Mirrors [`MachineTimeline::scan_core`] exactly — keep the two in sync.
    fn scan_any(&self, from: Time, dur: Time, demands: &[Amount], cutoff: Time) -> Option<Time> {
        let n = self.times.len();
        let mut cand = from.max(0.0);
        if cand >= cutoff {
            return None;
        }
        let mut start_k = self.segment_index(cand);
        let mut block_jumps: u64 = 0;
        let result = 'outer: loop {
            let end = cand + dur;
            let mut k = start_k;
            while k < n && self.times[k] < end {
                if k.is_multiple_of(BLOCK) && self.block_feasible(k / BLOCK, demands) {
                    k += BLOCK;
                    block_jumps += 1;
                    continue;
                }
                let seg = self.segment_usage(k);
                if seg
                    .iter()
                    .zip(demands)
                    .zip(&self.cap)
                    .any(|((&u, &d), &c)| u + d > c)
                {
                    let mut j = k + 1;
                    loop {
                        debug_assert!(j < n, "tail segment is all-zero and must be feasible");
                        if self.times[j] >= cutoff {
                            break 'outer None;
                        }
                        if j.is_multiple_of(BLOCK) && self.block_saturated(j / BLOCK, demands) {
                            j += BLOCK;
                            block_jumps += 1;
                            continue;
                        }
                        if self
                            .segment_usage(j)
                            .iter()
                            .zip(demands)
                            .zip(&self.cap)
                            .all(|((&u, &d), &c)| u + d <= c)
                        {
                            break;
                        }
                        j += 1;
                    }
                    cand = self.times[j];
                    start_k = j + 1;
                    continue 'outer;
                }
                k += 1;
            }
            break 'outer Some(cand);
        };
        if block_jumps > 0 {
            mris_obs::counter_add("mris_timeline_block_jumps_total", block_jumps);
        }
        result
    }

    /// Drops any memoized query answer; must follow every mutation whose
    /// effect on the hint cannot be reasoned about more precisely.
    fn invalidate_hint(&mut self) {
        *self.hint.get_mut().expect("timeline hint lock") = None;
    }

    /// Drops the memoized query answer only if adding usage over
    /// `[start, end)` can change it. Usage only ever *increases*, so a
    /// commit cannot create a feasible start below `hint.result` (the "no
    /// earlier fit" half of the hint stays true unconditionally); it can
    /// only invalidate the "fits at `result`" half of an *exact* hint, and
    /// only by overlapping the hinted window `[result, result + dur)`.
    /// Lower-bound hints have no such half and survive every commit.
    fn invalidate_hint_overlapping(&mut self, start: Time, end: Time) {
        let guard = self.hint.get_mut().expect("timeline hint lock");
        if let Some(hint) = guard.as_ref() {
            if hint.exact && start < hint.result + hint.dur && hint.result < end {
                *guard = None;
            }
        }
    }

    /// Splits segment `i` at instant `at` by inserting a breakpoint after
    /// it; the new segment inherits segment `i`'s usage. In-place tail move,
    /// no reallocation once the vectors have grown.
    fn split_segment(&mut self, i: usize, at: Time) {
        let r = self.num_resources;
        self.times.insert(i + 1, at);
        let old_len = self.usage.len();
        self.usage.resize(old_len + r, 0);
        self.usage.copy_within(i * r..old_len, (i + 1) * r);
    }

    /// Ensures `start` and `end` are breakpoints by splicing them into the
    /// existing vectors (two tail moves at most, instead of rebuilding the
    /// whole step function), and returns the segment index range `[i0, i1)`
    /// covering exactly `[start, end)`.
    fn insert_breakpoints(&mut self, start: Time, end: Time) -> (usize, usize) {
        debug_assert!(start < end);
        let i_s = self.segment_index(start);
        let need_s = self.times[i_s] != start;
        let i_e = self.segment_index(end);
        let need_e = self.times[i_e] != end;
        let inserted = need_s as usize + need_e as usize;
        let i0 = i_s + need_s as usize;
        let i1 = i_e + inserted;
        if inserted == 0 {
            return (i0, i1);
        }
        // Split the later segment first so the earlier index stays valid.
        if need_e {
            self.split_segment(i_e, end);
        }
        if need_s {
            self.split_segment(i_s, start);
        }
        self.rebuild_index_from(i0);
        (i0, i1)
    }

    /// Adds `demands` to the usage over `[start, start + dur)`.
    ///
    /// # Panics
    ///
    /// Panics — in **every** build profile — if the result would exceed
    /// capacity on any resource: callers must check feasibility first (e.g.
    /// via [`MachineTimeline::earliest_fit`]). An over-committed timeline
    /// would silently corrupt every subsequent feasibility answer, so this
    /// is checked before any usage is modified; on panic the step function
    /// is semantically unchanged (at most already-implied breakpoints were
    /// materialized).
    pub fn commit(&mut self, start: Time, dur: Time, demands: &[Amount]) {
        assert_eq!(demands.len(), self.num_resources);
        assert!(start >= 0.0 && dur > 0.0 && (start + dur).is_finite());
        let segments_before = self.times.len();
        let (i0, i1) = self.insert_breakpoints(start, start + dur);
        mris_obs::counter_add("mris_timeline_commits_total", 1);
        mris_obs::counter_add(
            "mris_timeline_commit_breakpoints_total",
            (self.times.len() - segments_before) as u64,
        );
        let r = self.num_resources;
        // One fused walk: add optimistically and, on the first violating
        // segment, roll back everything added before panicking — so the step
        // function is still semantically unchanged on panic, at half the
        // segment traffic of a separate check pass.
        let cap = &self.cap;
        let usage = &mut self.usage;
        for i in i0..i1 {
            let mut ok = true;
            for ((u, &d), &c) in usage[i * r..(i + 1) * r].iter_mut().zip(demands).zip(cap) {
                *u += d;
                ok &= *u <= c;
            }
            if !ok {
                for j in i0..=i {
                    for (u, &d) in usage[j * r..(j + 1) * r].iter_mut().zip(demands) {
                        *u -= d;
                    }
                }
                panic!(
                    "timeline commit exceeds capacity in [{start}, {})",
                    start + dur
                );
            }
        }
        for b in i0 / BLOCK..=(i1 - 1) / BLOCK {
            self.recompute_block(b);
        }
        self.invalidate_hint_overlapping(start, start + dur);
    }

    /// Drops breakpoints earlier than `horizon` whose removal does not change
    /// the step function at or after `horizon`. Bounds memory in long
    /// simulations where the past is no longer queried.
    ///
    /// After compaction, usage before the retained prefix is approximate;
    /// [`MachineTimeline::compaction_watermark`] advances to the earliest
    /// still-exact instant and queries below it are rejected in debug
    /// builds.
    pub fn compact_before(&mut self, horizon: Time) {
        let keep_from = self.segment_index(horizon.max(0.0));
        if keep_from == 0 {
            return;
        }
        self.watermark = self.watermark.max(self.times[keep_from]);
        self.times.drain(..keep_from);
        self.usage.drain(..keep_from * self.num_resources);
        // Re-anchor the first breakpoint at zero so `segment_index` stays
        // valid for any t >= 0 (usage before the watermark is now
        // approximate, which is fine: callers promise not to query it).
        self.times[0] = 0.0;
        let num_blocks = self.times.len().div_ceil(BLOCK);
        self.block_max.truncate(num_blocks * self.num_resources);
        self.block_min.truncate(num_blocks * self.num_resources);
        self.rebuild_index_from(0);
        self.invalidate_hint();
    }
}

/// A fixed-size run of consecutive machines — the unit of work one pool
/// scanner claims at a time, and the unit the cross-shard reduce folds
/// over. Shard `i` of a cluster with shard size `Z` holds machines
/// `[i * Z, min((i + 1) * Z, M))`, so concatenating shards in order
/// recovers machine order — which is what keeps the in-order reduce's
/// tie-break identical to the sequential scan's.
#[derive(Debug, Clone)]
pub(crate) struct TimelineShard {
    /// Global index of this shard's first machine.
    base: usize,
    machines: Vec<MachineTimeline>,
}

impl TimelineShard {
    /// The cutoff-pruned earliest fit over this shard, in machine order:
    /// returns the shard's lexicographic `(start, global machine)` minimum,
    /// or `(usize::MAX, INFINITY)` when the shared bound rules every
    /// machine out. `shared_best` carries the best start found anywhere in
    /// the cluster so far; it is read as a pruning bound — with one ulp of
    /// slack, so an equal start in this shard survives to the in-order
    /// reduce where shard order decides the tie — and CAS-min published on
    /// every improvement. `floor` (`from.max(0.0)`) ends the shard scan
    /// early: within a shard no later machine can beat a fit at the floor.
    pub(crate) fn scan_bounded(
        &self,
        from: Time,
        dur: Time,
        demands: &[Amount],
        floor: Time,
        shared_best: &AtomicU64,
    ) -> (usize, Time) {
        let mut local = (usize::MAX, f64::INFINITY);
        let mut probed: u64 = 0;
        for (k, tl) in self.machines.iter().enumerate() {
            let global = f64::from_bits(shared_best.load(Ordering::Relaxed));
            let slack = if global.is_finite() {
                global.next_up()
            } else {
                f64::INFINITY
            };
            let cutoff = local.1.min(slack);
            probed += 1;
            // `dur` is nominal work; this machine occupies it for
            // `dur / speed` wall time (exact `dur / 1.0 == dur` on the
            // reference machine, preserving the uniform path bit for bit).
            if let Some(s) = tl.earliest_fit_bounded(from, dur / tl.speed(), demands, cutoff) {
                if s < local.1 {
                    local = (self.base + k, s);
                }
                let mut cur = shared_best.load(Ordering::Relaxed);
                while f64::from_bits(cur) > s {
                    match shared_best.compare_exchange_weak(
                        cur,
                        s.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(observed) => cur = observed,
                    }
                }
                if s <= floor {
                    break;
                }
            }
        }
        mris_obs::counter_add("mris_shard_probes_total", probed);
        local
    }
}

/// Timelines for a cluster of `M` identical machines, stored in
/// [`SHARD_SIZE`]-machine shards served by a lazily-spawned persistent
/// scan pool (see the module docs).
pub struct ClusterTimelines {
    shards: Vec<TimelineShard>,
    num_machines: usize,
    num_resources: usize,
    shard_size: usize,
    parallel_threshold: usize,
    /// Machine probed first by [`ClusterTimelines::earliest_fit_mut`] to
    /// seed the pruning cutoff: one past the previous winner, i.e. the
    /// machine least recently loaded. Pure probe-order heuristic — the
    /// returned placement is independent of it.
    scan_seed: usize,
    /// The cluster's persistent scan workers, spawned on the first query
    /// that crosses `parallel_threshold` and joined on drop. Never cloned:
    /// a cloned cluster lazily spawns its own.
    pool: OnceLock<ScanPool>,
}

impl Clone for ClusterTimelines {
    fn clone(&self) -> Self {
        ClusterTimelines {
            shards: self.shards.clone(),
            num_machines: self.num_machines,
            num_resources: self.num_resources,
            shard_size: self.shard_size,
            parallel_threshold: self.parallel_threshold,
            scan_seed: self.scan_seed,
            pool: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for ClusterTimelines {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterTimelines")
            .field("shards", &self.shards)
            .field("num_machines", &self.num_machines)
            .field("shard_size", &self.shard_size)
            .field("parallel_threshold", &self.parallel_threshold)
            .field("scan_seed", &self.scan_seed)
            .field("pool", &self.pool.get())
            .finish()
    }
}

impl ClusterTimelines {
    /// Empty timelines for `num_machines` machines with `num_resources`
    /// resources each, sharded at the default [`SHARD_SIZE`].
    pub fn new(num_machines: usize, num_resources: usize) -> Self {
        Self::with_shard_size(num_machines, num_resources, SHARD_SIZE)
    }

    /// Like [`ClusterTimelines::new`] with an explicit shard size (clamped
    /// to at least 1). Placements are independent of the shard size — the
    /// differential suite pins this for sizes 1, 7, and 64 — so this only
    /// exists for tests and experiments; production callers use `new`.
    pub fn with_shard_size(num_machines: usize, num_resources: usize, shard_size: usize) -> Self {
        Self::with_spec_shard_size(
            &ClusterSpec::uniform(num_machines),
            num_resources,
            shard_size,
        )
    }

    /// Empty timelines following `spec`: machine `m` carries `spec`'s
    /// per-resource capacity and relative speed. Scans and
    /// [`ClusterTimelines::commit_job`] treat durations as *nominal work*
    /// and scale them per machine; [`ClusterTimelines::commit`] stays
    /// wall-time for occupations that do not shrink on faster machines
    /// (e.g. downtime blocks).
    pub fn with_spec(spec: &ClusterSpec, num_resources: usize) -> Self {
        Self::with_spec_shard_size(spec, num_resources, SHARD_SIZE)
    }

    /// [`ClusterTimelines::with_spec`] with an explicit shard size.
    pub fn with_spec_shard_size(
        spec: &ClusterSpec,
        num_resources: usize,
        shard_size: usize,
    ) -> Self {
        let num_machines = spec.len();
        assert!(num_machines > 0);
        let shard_size = shard_size.max(1);
        let shards = (0..num_machines)
            .step_by(shard_size)
            .map(|base| TimelineShard {
                base,
                machines: (base..(base + shard_size).min(num_machines))
                    .map(|m| {
                        MachineTimeline::with_limits(
                            num_resources,
                            spec.capacity_vec(m, num_resources).into_vec(),
                            spec.speed(m),
                        )
                    })
                    .collect(),
            })
            .collect();
        ClusterTimelines {
            shards,
            num_machines,
            num_resources,
            shard_size,
            parallel_threshold: PARALLEL_SCAN_THRESHOLD,
            scan_seed: 0,
            pool: OnceLock::new(),
        }
    }

    /// Number of machines `M`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// All machines in index order (shards hold consecutive machine runs).
    #[inline]
    fn machines(&self) -> impl Iterator<Item = &MachineTimeline> {
        self.shards.iter().flat_map(|s| s.machines.iter())
    }

    /// Access a single machine's timeline.
    #[inline]
    pub fn machine(&self, m: usize) -> &MachineTimeline {
        &self.shards[m / self.shard_size].machines[m % self.shard_size]
    }

    #[inline]
    fn machine_mut(&mut self, m: usize) -> &mut MachineTimeline {
        &mut self.shards[m / self.shard_size].machines[m % self.shard_size]
    }

    /// Replaces machine `m`'s timeline with a fresh, empty one — keeping
    /// the machine's capacity and speed. Used by the fault layer when a
    /// machine fails: every commitment on it (running and planned) is
    /// invalidated at once, and the caller re-commits what should survive
    /// (e.g. a full-capacity block covering the downtime).
    pub fn reset_machine(&mut self, m: usize) {
        let num_resources = self.num_resources;
        let tl = self.machine_mut(m);
        *tl = MachineTimeline::with_limits(num_resources, tl.cap.clone(), tl.speed);
    }

    /// Total segments across all machines (for diagnostics and benches).
    pub fn total_segments(&self) -> usize {
        self.machines().map(|tl| tl.num_segments()).sum()
    }

    /// Overrides the machine count at which [`ClusterTimelines::earliest_fit`]
    /// switches to the pooled sharded scan (default
    /// [`PARALLEL_SCAN_THRESHOLD`]). `usize::MAX` forces the sequential
    /// path, small values force the pooled one — the results are
    /// identical either way, including the lower-machine-index tie-break.
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold.max(1);
    }

    /// Earliest `(machine, start)` with `start >= from` at which the job
    /// fits for `dur` units of *nominal work* (machine `m` occupies it for
    /// `dur / speed_m` wall time); ties on start break toward the lower
    /// machine index.
    ///
    /// # Panics
    ///
    /// Debug builds panic if no machine can ever hold `demands` (every
    /// machine's capacity is exceeded on some resource) — the driver
    /// rejects such jobs up front with
    /// [`SchedulingError::UnplaceableJob`](mris_types::SchedulingError::UnplaceableJob).
    pub fn earliest_fit(&self, from: Time, dur: Time, demands: &[Amount]) -> (usize, Time) {
        let best = if self.num_machines >= self.parallel_threshold {
            self.earliest_fit_pooled(from, dur, demands)
        } else {
            self.earliest_fit_sequential(from, dur, demands)
        };
        debug_assert!(best.1.is_finite());
        best
    }

    /// The cutoff-pruned sequential scan: each machine only searches below
    /// the best start found so far, and the scan stops outright once some
    /// machine fits at the floor (no later machine can strictly beat it).
    fn earliest_fit_sequential(&self, from: Time, dur: Time, demands: &[Amount]) -> (usize, Time) {
        let floor = from.max(0.0);
        let mut best = (0usize, f64::INFINITY);
        for (m, tl) in self.machines().enumerate() {
            if let Some(s) = tl.earliest_fit_bounded(from, dur / tl.speed(), demands, best.1) {
                best = (m, s);
                if s <= floor {
                    break;
                }
            }
        }
        best
    }

    /// The seeded sequential scan over exclusive timelines, probing through
    /// the lock-free [`MachineTimeline::earliest_fit_bounded_mut`].
    ///
    /// The seed machine (one past the previous winner, so the least recently
    /// loaded) is probed first without a cutoff; its answer then prunes the
    /// in-order sweep over the rest. Machines below the current winner are
    /// probed with one ulp of cutoff slack so that an equal-start answer
    /// from a lower index survives to win the tie — the result is the
    /// lexicographic minimum of `(start, machine)` over all machines,
    /// exactly what the unseeded in-order scan returns.
    fn earliest_fit_seeded_mut(
        &mut self,
        from: Time,
        dur: Time,
        demands: &[Amount],
    ) -> (usize, Time) {
        let floor = from.max(0.0);
        let g = self.scan_seed.min(self.num_machines - 1);
        let seed_speed = self.machine(g).speed();
        // A restricted seed machine can be incapable of ever holding the
        // demand (`None` even unbounded); fall back to an unseeded sweep.
        let mut best = match self.machine_mut(g).earliest_fit_bounded_mut(
            from,
            dur / seed_speed,
            demands,
            f64::INFINITY,
        ) {
            Some(s_g) => (g, s_g),
            None => (usize::MAX, f64::INFINITY),
        };
        'shards: for shard in self.shards.iter_mut() {
            for (k, tl) in shard.machines.iter_mut().enumerate() {
                let m = shard.base + k;
                // Every machine below best.0 has been probed, and no machine
                // at or above m can beat a fit at the floor (ties go lower).
                if best.1 <= floor && best.0 <= m {
                    break 'shards;
                }
                if m == g {
                    continue;
                }
                let cutoff = if m < best.0 { best.1.next_up() } else { best.1 };
                if let Some(s) = tl.earliest_fit_bounded_mut(from, dur / tl.speed, demands, cutoff)
                {
                    if s < best.1 || (s == best.1 && m < best.0) {
                        best = (m, s);
                    }
                }
            }
        }
        if best.0 < self.num_machines {
            self.scan_seed = (best.0 + 1) % self.num_machines;
        }
        best
    }

    /// The sharded scan for wide clusters, served by the cluster's
    /// persistent worker pool: scanners claim shards dynamically, share a
    /// relaxed atomic best-so-far as a pruning bound (with one ulp of slack
    /// so ties survive), and the caller reduces per-shard minima in shard
    /// order — reproducing the sequential scan's answers exactly,
    /// lower-machine-index tie-break included.
    fn earliest_fit_pooled(&self, from: Time, dur: Time, demands: &[Amount]) -> (usize, Time) {
        debug_assert_eq!(demands.len(), self.num_resources);
        let pool = self.pool.get_or_init(ScanPool::new);
        pool.scan(&self.shards, from, dur, demands)
    }

    /// Commits a **wall-time** occupation on a machine: `dur` is used as
    /// is, regardless of the machine's speed. For downtime blocks and other
    /// occupations whose length is not job work. Job commitments go through
    /// [`ClusterTimelines::commit_job`].
    pub fn commit(&mut self, machine: usize, start: Time, dur: Time, demands: &[Amount]) {
        self.machine_mut(machine).commit(start, dur, demands);
    }

    /// Commits `work` units of nominal job work on `machine`, occupying it
    /// for `work / speed_m` wall time — the commit counterpart of the
    /// nominal-work `earliest_fit` family. Exact (`work / 1.0 == work`) on
    /// reference machines.
    pub fn commit_job(&mut self, machine: usize, start: Time, work: Time, demands: &[Amount]) {
        let tl = self.machine_mut(machine);
        let dur = work / tl.speed;
        tl.commit(start, dur, demands);
    }

    /// Machine `m`'s per-resource capacity vector.
    #[inline]
    pub fn capacity(&self, m: usize) -> &[Amount] {
        self.machine(m).capacity()
    }

    /// Machine `m`'s relative speed.
    #[inline]
    pub fn speed(&self, m: usize) -> f64 {
        self.machine(m).speed()
    }

    /// [`ClusterTimelines::earliest_fit`] over exclusive timelines: the
    /// sequential scan skips the hint-cache lock on every probe. Same
    /// answers, including the lower-machine-index tie-break.
    pub fn earliest_fit_mut(&mut self, from: Time, dur: Time, demands: &[Amount]) -> (usize, Time) {
        let best = if self.num_machines >= self.parallel_threshold {
            self.earliest_fit_pooled(from, dur, demands)
        } else {
            self.earliest_fit_seeded_mut(from, dur, demands)
        };
        debug_assert!(best.1.is_finite());
        best
    }

    /// Finds the earliest fit for `job` at or after `from`, commits it
    /// (scaled by the winning machine's speed), and returns the placement.
    pub fn place_earliest(&mut self, job: &Job, from: Time) -> (usize, Time) {
        let (m, s) = self.earliest_fit_mut(from, job.proc_time, &job.demands);
        self.commit_job(m, s, job.proc_time, &job.demands);
        (m, s)
    }

    /// Compacts every machine's timeline before `horizon` (see
    /// [`MachineTimeline::compact_before`]). Callers promise that no future
    /// query or commit looks below `horizon`; MRIS upholds this because both
    /// only ever happen at or after the current grid point `gamma_k`, which
    /// is monotone.
    pub fn compact_before(&mut self, horizon: Time) {
        for shard in &mut self.shards {
            for tl in &mut shard.machines {
                tl.compact_before(horizon);
            }
        }
    }

    /// The latest committed breakpoint across machines — an upper bound on
    /// the makespan of everything committed so far.
    pub fn horizon(&self) -> Time {
        self.machines()
            .map(|tl| *tl.times.last().unwrap())
            .fold(0.0, f64::max)
    }

    /// Appends a canonical encoding of every machine's committed timeline
    /// (including shard layout, since the differential suite treats shard
    /// size as part of the configured identity) to `out`. Scan-seed, pool,
    /// and parallel-threshold are runtime heuristics and are excluded. The
    /// machine table (capacities and speed bits) is appended **only for
    /// non-uniform clusters**, so uniform fingerprints are unchanged from
    /// before heterogeneity existed.
    pub fn durable_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.num_machines as u64).to_le_bytes());
        out.extend_from_slice(&(self.num_resources as u64).to_le_bytes());
        out.extend_from_slice(&(self.shard_size as u64).to_le_bytes());
        for tl in self.machines() {
            tl.durable_bytes(out);
        }
        if !self.machines().all(MachineTimeline::is_unit_machine) {
            for tl in self.machines() {
                for &c in &tl.cap {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out.extend_from_slice(&tl.speed.to_bits().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::amount_from_fraction as amt;

    fn d(fracs: &[f64]) -> Vec<Amount> {
        fracs.iter().copied().map(amt).collect()
    }

    #[test]
    fn empty_timeline_fits_anywhere() {
        let tl = MachineTimeline::new(2);
        assert_eq!(tl.earliest_fit(0.0, 5.0, &d(&[1.0, 1.0])), 0.0);
        assert_eq!(tl.earliest_fit(3.5, 5.0, &d(&[1.0, 1.0])), 3.5);
        assert!(tl.is_feasible(0.0, 100.0, &d(&[1.0, 1.0])));
    }

    #[test]
    fn commit_blocks_overlapping_full_demand() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(2.0, 3.0, &d(&[0.6]));
        // A 0.5-demand job cannot overlap [2, 5).
        assert_eq!(tl.earliest_fit(0.0, 3.0, &d(&[0.5])), 5.0);
        // But a 2-long job fits before, exactly in [0, 2).
        assert_eq!(tl.earliest_fit(0.0, 2.0, &d(&[0.5])), 0.0);
        // And a 0.4-demand job can share the interval.
        assert_eq!(tl.earliest_fit(0.0, 10.0, &d(&[0.4])), 0.0);
    }

    #[test]
    fn earliest_fit_finds_gap_between_commitments() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 2.0, &d(&[0.9]));
        tl.commit(5.0, 2.0, &d(&[0.9]));
        // Gap [2, 5) holds a 3-long job but not a 4-long one.
        assert_eq!(tl.earliest_fit(0.0, 3.0, &d(&[0.5])), 2.0);
        assert_eq!(tl.earliest_fit(0.0, 4.0, &d(&[0.5])), 7.0);
    }

    #[test]
    fn usage_accumulates_and_splits_segments() {
        let mut tl = MachineTimeline::new(2);
        tl.commit(1.0, 4.0, &d(&[0.3, 0.1]));
        tl.commit(2.0, 1.0, &d(&[0.2, 0.0]));
        assert_eq!(tl.usage_at(0.5), &d(&[0.0, 0.0])[..]);
        assert_eq!(tl.usage_at(1.5), &d(&[0.3, 0.1])[..]);
        assert_eq!(tl.usage_at(2.5), &d(&[0.5, 0.1])[..]);
        assert_eq!(tl.usage_at(3.5), &d(&[0.3, 0.1])[..]);
        assert_eq!(tl.usage_at(10.0), &d(&[0.0, 0.0])[..]);
    }

    #[test]
    fn exact_capacity_packing_is_feasible() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 5.0, &d(&[0.5]));
        assert!(tl.is_feasible(0.0, 5.0, &d(&[0.5])));
        assert!(!tl.is_feasible(0.0, 5.0, &[amt(0.5) + 1]));
        // Earliest fit for the over-half job is when the first one ends.
        assert_eq!(tl.earliest_fit(0.0, 1.0, &[amt(0.5) + 1]), 5.0);
    }

    #[test]
    fn cluster_picks_earliest_machine_with_tie_break() {
        let mut cl = ClusterTimelines::new(2, 1);
        cl.commit(0, 0.0, 4.0, &d(&[1.0]));
        // Machine 1 is empty: job goes there at time 0.
        assert_eq!(cl.earliest_fit(0.0, 2.0, &d(&[0.7])), (1, 0.0));
        cl.commit(1, 0.0, 2.0, &d(&[1.0]));
        // Now machine 1 frees at 2, machine 0 at 4.
        assert_eq!(cl.earliest_fit(0.0, 1.0, &d(&[0.7])), (1, 2.0));
        // Tie at time 4+ (both empty): lower machine index wins.
        assert_eq!(cl.earliest_fit(4.0, 1.0, &d(&[1.0])), (0, 4.0));
    }

    #[test]
    fn place_earliest_commits() {
        use mris_types::{Job, JobId};
        let mut cl = ClusterTimelines::new(1, 1);
        let j = Job::from_fractions(JobId(0), 0.0, 3.0, 1.0, &[0.8]);
        let (m0, s0) = cl.place_earliest(&j, 0.0);
        let (m1, s1) = cl.place_earliest(&j, 0.0);
        assert_eq!((m0, s0), (0, 0.0));
        assert_eq!((m1, s1), (0, 3.0));
        assert_eq!(cl.horizon(), 6.0);
    }

    #[test]
    fn reset_machine_clears_only_that_machine() {
        let mut cl = ClusterTimelines::new(2, 1);
        cl.commit(0, 0.0, 4.0, &d(&[1.0]));
        cl.commit(1, 0.0, 6.0, &d(&[1.0]));
        cl.reset_machine(0);
        // Machine 0 is empty again; machine 1 keeps its commitment.
        assert_eq!(cl.machine(0).num_segments(), 1);
        assert_eq!(cl.earliest_fit(0.0, 2.0, &d(&[1.0])), (0, 0.0));
        assert_eq!(cl.machine(1).usage_at(3.0), &d(&[1.0])[..]);
        // A fresh commit (e.g. a downtime block) works on the reset machine.
        cl.commit(0, 1.0, 2.0, &d(&[1.0]));
        assert_eq!(cl.machine(0).usage_at(1.5), &d(&[1.0])[..]);
    }

    #[test]
    fn backfill_before_later_commitment() {
        // A later commitment far in the future leaves the near past open.
        let mut tl = MachineTimeline::new(1);
        tl.commit(100.0, 10.0, &d(&[1.0]));
        assert_eq!(tl.earliest_fit(3.0, 5.0, &d(&[1.0])), 3.0);
        // A job longer than the gap has to wait until after the block.
        assert_eq!(tl.earliest_fit(3.0, 98.0, &d(&[1.0])), 110.0);
    }

    #[test]
    #[should_panic(expected = "demand exceeds machine capacity")]
    fn earliest_fit_rejects_impossible_demand() {
        let tl = MachineTimeline::new(1);
        let _ = tl.earliest_fit(0.0, 1.0, &[CAPACITY + 1]);
    }

    #[test]
    fn compact_preserves_future() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 1.0, &d(&[0.5]));
        tl.commit(2.0, 3.0, &d(&[0.5]));
        tl.commit(10.0, 1.0, &d(&[1.0]));
        let before = tl.earliest_fit(10.0, 2.0, &d(&[0.6]));
        tl.compact_before(9.0);
        assert_eq!(tl.earliest_fit(10.0, 2.0, &d(&[0.6])), before);
        assert!(tl.num_segments() <= 4);
    }

    #[test]
    fn compaction_advances_the_watermark() {
        let mut tl = MachineTimeline::new(1);
        assert_eq!(tl.compaction_watermark(), 0.0);
        tl.commit(1.0, 2.0, &d(&[0.5]));
        tl.commit(4.0, 2.0, &d(&[0.5]));
        tl.compact_before(5.0);
        // The kept segment starts at the last breakpoint <= 5, i.e. 4.0.
        assert_eq!(tl.compaction_watermark(), 4.0);
        // Queries at or after the watermark remain exact.
        assert_eq!(tl.usage_at(4.5), &d(&[0.5])[..]);
        assert_eq!(tl.earliest_fit(4.0, 3.0, &d(&[0.6])), 6.0);
        // Compacting below the watermark never regresses it.
        tl.compact_before(0.0);
        assert_eq!(tl.compaction_watermark(), 4.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "compacted away")]
    fn pre_watermark_usage_query_is_rejected_in_debug() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(1.0, 2.0, &d(&[0.5]));
        tl.commit(5.0, 2.0, &d(&[0.5]));
        tl.compact_before(6.0);
        let _ = tl.usage_at(0.5);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "compacted away")]
    fn pre_watermark_earliest_fit_is_rejected_in_debug() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(1.0, 2.0, &d(&[0.5]));
        tl.commit(5.0, 2.0, &d(&[0.5]));
        tl.compact_before(6.0);
        let _ = tl.earliest_fit(0.0, 1.0, &d(&[0.1]));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn pre_watermark_earliest_fit_clamps_in_release() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(1.0, 2.0, &d(&[0.5]));
        tl.commit(5.0, 2.0, &d(&[0.5]));
        tl.compact_before(6.0);
        assert_eq!(tl.compaction_watermark(), 5.0);
        // Compaction folded history into the retained prefix, which a
        // pre-watermark query would scan as if it were exact: without the
        // clamp this answers 0.0, a start in history that no longer
        // exists. The contract says answers never precede the watermark.
        assert_eq!(tl.earliest_fit(0.0, 1.0, &d(&[0.1])), 5.0);
        assert_eq!(
            tl.earliest_fit_bounded_mut(0.0, 1.0, &d(&[0.1]), f64::INFINITY),
            Some(5.0)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn commit_capacity_check_holds_in_every_profile() {
        // No debug_assert here: an over-commit must abort in --release too.
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 4.0, &d(&[0.7]));
        tl.commit(1.0, 2.0, &d(&[0.7]));
    }

    #[test]
    fn skip_index_survives_many_fragmented_commits() {
        // Enough commits to span several BLOCK-sized index blocks, with
        // answers checked against fresh rebuilt timelines along the way.
        let mut tl = MachineTimeline::new(2);
        for i in 0..(3 * BLOCK) {
            let start = (i * 2) as f64 + 0.5;
            tl.commit(start, 1.0, &d(&[0.8, 0.3]));
        }
        assert!(tl.num_segments() > 2 * BLOCK);
        // The gaps between commits are exactly 1 long: a 1-long 0.5-demand
        // job fits in the first inter-commit gap, a 1.5-long one only after
        // the last commitment.
        assert_eq!(tl.earliest_fit(0.0, 1.0, &d(&[0.5, 0.5])), 1.5);
        let last_end = ((3 * BLOCK - 1) * 2) as f64 + 1.5;
        assert_eq!(tl.earliest_fit(0.6, 1.5, &d(&[0.5, 0.5])), last_end);
    }

    #[test]
    fn hint_cache_survives_reads_and_dies_on_commit() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 4.0, &d(&[0.8]));
        let probe = d(&[0.5]);
        assert_eq!(tl.earliest_fit(0.0, 2.0, &probe), 4.0);
        // Cached: same query, and a query whose `from` lies below the
        // cached result, answer identically.
        assert_eq!(tl.earliest_fit(0.0, 2.0, &probe), 4.0);
        assert_eq!(tl.earliest_fit(3.0, 2.0, &probe), 4.0);
        // A commit invalidates: the same probe must now see the new block.
        tl.commit(4.0, 2.0, &d(&[0.8]));
        assert_eq!(tl.earliest_fit(0.0, 2.0, &probe), 6.0);
    }

    #[test]
    fn bounded_scan_prunes_but_never_lies() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 10.0, &d(&[0.9]));
        let probe = d(&[0.5]);
        assert_eq!(tl.earliest_fit_bounded(0.0, 1.0, &probe, 20.0), Some(10.0));
        assert_eq!(tl.earliest_fit_bounded(0.0, 1.0, &probe, 10.0), None);
        assert_eq!(tl.earliest_fit_bounded(0.0, 1.0, &probe, 5.0), None);
        // The None above must not have poisoned the cache.
        assert_eq!(tl.earliest_fit(0.0, 1.0, &probe), 10.0);
    }

    #[test]
    fn parallel_and_sequential_cluster_scans_agree() {
        use mris_types::{Job, JobId};
        let mut cl = ClusterTimelines::new(9, 2);
        for i in 0..40u32 {
            let j = Job::from_fractions(
                JobId(i),
                0.0,
                1.0 + (i % 5) as f64,
                1.0,
                &[0.2 + 0.1 * (i % 7) as f64, 0.3],
            );
            cl.place_earliest(&j, (i % 3) as f64);
        }
        let probe = d(&[0.6, 0.6]);
        let mut parallel = cl.clone();
        parallel.set_parallel_threshold(1);
        let mut sequential = cl.clone();
        sequential.set_parallel_threshold(usize::MAX);
        for from in [0.0, 1.5, 7.0, 30.0] {
            for dur in [0.5, 2.0, 9.0] {
                assert_eq!(
                    parallel.earliest_fit(from, dur, &probe),
                    sequential.earliest_fit(from, dur, &probe),
                    "from {from}, dur {dur}"
                );
            }
        }
    }

    #[test]
    fn fast_machine_wins_long_jobs() {
        use mris_types::{ClusterSpec, Job, JobId};
        // Machine 1 runs at speed 2: nominal work 4 occupies 2 wall time.
        let spec = ClusterSpec::related(2, &[1.0, 2.0]);
        let mut cl = ClusterTimelines::with_spec(&spec, 1);
        let j = Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[1.0]);
        let (m0, s0) = cl.place_earliest(&j, 0.0);
        assert_eq!((m0, s0), (0, 0.0));
        // Machine 0 is busy until 4; machine 1 until 2 — next full-demand
        // job starts on the fast machine at 2.
        let (m1, s1) = cl.place_earliest(&j, 0.0);
        assert_eq!((m1, s1), (1, 0.0));
        assert_eq!(cl.earliest_fit(0.0, 4.0, &d(&[1.0])), (1, 2.0));
        assert_eq!(cl.horizon(), 4.0);
    }

    #[test]
    fn restricted_machine_is_skipped_not_fatal() {
        use mris_types::{ClusterSpec, MachineSpec};
        let spec = ClusterSpec::new(vec![
            MachineSpec::from_fractions(1.0, &[0.5]),
            MachineSpec::unit(),
        ]);
        let mut cl = ClusterTimelines::with_spec(&spec, 1);
        // 0.6 demand exceeds machine 0's cap; the scan lands on machine 1.
        assert_eq!(cl.earliest_fit(0.0, 2.0, &d(&[0.6])), (1, 0.0));
        assert_eq!(cl.earliest_fit_mut(0.0, 2.0, &d(&[0.6])), (1, 0.0));
        // The restricted machine still takes what it can hold.
        assert_eq!(cl.earliest_fit(0.0, 2.0, &d(&[0.4])), (0, 0.0));
        // Per-machine feasibility on the restricted machine uses its cap.
        cl.commit(0, 0.0, 2.0, &d(&[0.3]));
        assert!(!cl.machine(0).is_feasible(0.0, 1.0, &d(&[0.4])));
        assert!(cl.machine(0).is_feasible(0.0, 1.0, &d(&[0.2])));
    }

    #[test]
    fn reset_machine_preserves_limits() {
        use mris_types::ClusterSpec;
        let spec = ClusterSpec::related(2, &[1.0, 4.0]);
        let mut cl = ClusterTimelines::with_spec(&spec, 1);
        cl.commit_job(1, 0.0, 8.0, &d(&[1.0]));
        assert_eq!(cl.machine(1).earliest_fit(0.0, 1.0, &d(&[1.0])), 2.0);
        cl.reset_machine(1);
        assert_eq!(cl.speed(1), 4.0);
        // The reset machine still scales nominal work by its speed: 8 units
        // of work occupy the speed-4 machine for only 2 wall time.
        cl.commit(0, 0.0, 1.0, &d(&[1.0]));
        assert_eq!(cl.earliest_fit(0.0, 8.0, &d(&[1.0])), (1, 0.0));
        cl.commit_job(1, 0.0, 8.0, &d(&[1.0]));
        assert_eq!(cl.machine(1).earliest_fit(0.0, 1.0, &d(&[1.0])), 2.0);
    }

    #[test]
    fn heterogeneous_pooled_matches_sequential() {
        use mris_types::{ClusterSpec, Job, JobId, MachineSpec};
        let spec = ClusterSpec::new(
            (0..11)
                .map(|m| {
                    MachineSpec::from_fractions(
                        1.0 + (m % 3) as f64,
                        &[1.0 - 0.1 * (m % 4) as f64],
                    )
                })
                .collect(),
        );
        let mut cl = ClusterTimelines::with_spec_shard_size(&spec, 1, 3);
        for i in 0..50u32 {
            let j = Job::from_fractions(
                JobId(i),
                0.0,
                1.0 + (i % 4) as f64,
                1.0,
                &[0.3 + 0.1 * (i % 4) as f64],
            );
            cl.place_earliest(&j, (i % 5) as f64);
        }
        let mut pooled = cl.clone();
        pooled.set_parallel_threshold(1);
        let mut sequential = cl.clone();
        sequential.set_parallel_threshold(usize::MAX);
        for from in [0.0, 2.5, 11.0] {
            for dur in [0.75, 3.0] {
                for demand in [0.3, 0.55, 0.65] {
                    let probe = d(&[demand]);
                    assert_eq!(
                        pooled.earliest_fit(from, dur, &probe),
                        sequential.earliest_fit(from, dur, &probe),
                        "from {from}, dur {dur}, demand {demand}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_durable_bytes_have_no_machine_table() {
        use mris_types::ClusterSpec;
        let mut via_new = Vec::new();
        ClusterTimelines::new(3, 2).durable_bytes(&mut via_new);
        let mut via_spec = Vec::new();
        ClusterTimelines::with_spec(&ClusterSpec::uniform(3), 2).durable_bytes(&mut via_spec);
        assert_eq!(via_new, via_spec);
        let mut het = Vec::new();
        ClusterTimelines::with_spec(&ClusterSpec::related(3, &[2.0]), 2).durable_bytes(&mut het);
        assert!(het.len() > via_new.len());
    }

    #[test]
    fn pooled_scan_spans_shard_boundaries() {
        use mris_types::{Job, JobId};
        // 13 machines in shards of 3: the last shard is ragged, and winners
        // land on either side of shard boundaries across the probes.
        let mut cl = ClusterTimelines::with_shard_size(13, 1, 3);
        for i in 0..60u32 {
            let j = Job::from_fractions(
                JobId(i),
                0.0,
                1.0 + (i % 4) as f64,
                1.0,
                &[0.4 + 0.1 * (i % 6) as f64],
            );
            cl.place_earliest(&j, (i % 5) as f64);
        }
        let mut pooled = cl.clone();
        pooled.set_parallel_threshold(1);
        let mut sequential = cl.clone();
        sequential.set_parallel_threshold(usize::MAX);
        for from in [0.0, 2.5, 11.0] {
            for dur in [0.75, 3.0] {
                for demand in [0.3, 0.55, 0.9] {
                    let probe = d(&[demand]);
                    assert_eq!(
                        pooled.earliest_fit(from, dur, &probe),
                        sequential.earliest_fit(from, dur, &probe),
                        "earliest_fit from {from}, dur {dur}, demand {demand}"
                    );
                    assert_eq!(
                        pooled.earliest_fit_mut(from, dur, &probe),
                        sequential.earliest_fit_mut(from, dur, &probe),
                        "earliest_fit_mut from {from}, dur {dur}, demand {demand}"
                    );
                }
            }
        }
    }
}
