//! Committed-schedule machine timelines with earliest-fit queries.
//!
//! A [`MachineTimeline`] is a step function from time to per-resource usage,
//! stored as sorted breakpoints. MRIS commits schedule fragments ahead of
//! wall-clock time and backfills jobs at "the earliest feasible instant
//! `>= t`", which requires querying usage over an entire candidate window
//! `[s, s + p)` — something the instantaneous [`ClusterState`] cannot answer.
//!
//! [`ClusterState`]: crate::ClusterState

use mris_types::{Amount, Job, Time, CAPACITY};

/// Per-machine resource usage over time as a step function.
///
/// Invariants:
/// * breakpoints are strictly increasing, starting at `0.0`;
/// * segment `i` spans `[times[i], times[i+1])` (the last segment extends to
///   infinity) with constant usage `usage[i*R .. (i+1)*R]`;
/// * every committed occupation is finite, so the last segment's usage is
///   always all-zero — which guarantees [`MachineTimeline::earliest_fit`]
///   terminates for any demand within machine capacity.
#[derive(Debug, Clone)]
pub struct MachineTimeline {
    num_resources: usize,
    times: Vec<Time>,
    usage: Vec<Amount>,
}

impl MachineTimeline {
    /// An empty timeline for a machine with `num_resources` resources.
    pub fn new(num_resources: usize) -> Self {
        assert!(num_resources > 0);
        MachineTimeline {
            num_resources,
            times: vec![0.0],
            usage: vec![0; num_resources],
        }
    }

    /// Number of resources `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of segments in the step function (for diagnostics).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.times.len()
    }

    /// Index of the segment containing `t` (requires `t >= 0`).
    fn segment_index(&self, t: Time) -> usize {
        debug_assert!(t >= 0.0);
        // Last index i with times[i] <= t.
        self.times.partition_point(|&bp| bp <= t) - 1
    }

    /// Usage vector in effect at instant `t`.
    pub fn usage_at(&self, t: Time) -> &[Amount] {
        let i = self.segment_index(t);
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    fn segment_usage(&self, i: usize) -> &[Amount] {
        &self.usage[i * self.num_resources..(i + 1) * self.num_resources]
    }

    /// Ensures `t` is a breakpoint, splitting its containing segment if
    /// needed; returns the index of the segment that starts at `t`.
    fn ensure_breakpoint(&mut self, t: Time) -> usize {
        let i = self.segment_index(t);
        if self.times[i] == t {
            return i;
        }
        self.times.insert(i + 1, t);
        let r = self.num_resources;
        let seg: Vec<Amount> = self.segment_usage(i).to_vec();
        // Insert a copy of segment i's usage for the new segment i+1.
        let at = (i + 1) * r;
        self.usage.splice(at..at, seg);
        i + 1
    }

    /// Whether a job with `demands` fits throughout `[start, start + dur)`.
    pub fn is_feasible(&self, start: Time, dur: Time, demands: &[Amount]) -> bool {
        debug_assert_eq!(demands.len(), self.num_resources);
        debug_assert!(dur > 0.0 && start >= 0.0);
        let end = start + dur;
        let mut i = self.segment_index(start);
        while i < self.times.len() && self.times[i] < end {
            let seg = self.segment_usage(i);
            if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                return false;
            }
            i += 1;
        }
        true
    }

    /// The earliest instant `s >= from` such that the job fits throughout
    /// `[s, s + dur)`. Always exists for demands within machine capacity
    /// because the timeline's tail is empty. Runs in `O(segments)`.
    pub fn earliest_fit(&self, from: Time, dur: Time, demands: &[Amount]) -> Time {
        debug_assert_eq!(demands.len(), self.num_resources);
        assert!(dur > 0.0, "job duration must be positive");
        assert!(
            demands.iter().all(|&d| d <= CAPACITY),
            "demand exceeds machine capacity; job can never fit"
        );
        let mut cand = from.max(0.0);
        'outer: loop {
            let end = cand + dur;
            let mut i = self.segment_index(cand);
            while i < self.times.len() && self.times[i] < end {
                let seg = self.segment_usage(i);
                if seg.iter().zip(demands).any(|(&u, &d)| u + d > CAPACITY) {
                    // Any start overlapping this segment is infeasible; jump
                    // past it. The last segment is all-zero so a violating
                    // segment always has a successor.
                    cand = self.times[i + 1];
                    continue 'outer;
                }
                i += 1;
            }
            return cand;
        }
    }

    /// Adds `demands` to the usage over `[start, start + dur)`.
    ///
    /// Panics (debug) if the result would exceed capacity — callers must
    /// check feasibility first (e.g. via [`MachineTimeline::earliest_fit`]).
    pub fn commit(&mut self, start: Time, dur: Time, demands: &[Amount]) {
        debug_assert_eq!(demands.len(), self.num_resources);
        assert!(start >= 0.0 && dur > 0.0 && (start + dur).is_finite());
        let i0 = self.ensure_breakpoint(start);
        let i1 = self.ensure_breakpoint(start + dur);
        let r = self.num_resources;
        for i in i0..i1 {
            for (u, &d) in self.usage[i * r..(i + 1) * r].iter_mut().zip(demands) {
                *u += d;
                debug_assert!(*u <= CAPACITY, "timeline commit exceeds capacity");
            }
        }
    }

    /// Drops breakpoints earlier than `horizon` whose removal does not change
    /// the step function at or after `horizon`. Bounds memory in long
    /// simulations where the past is no longer queried. After compaction,
    /// queries before `horizon` are invalid.
    pub fn compact_before(&mut self, horizon: Time) {
        let keep_from = self.segment_index(horizon.max(0.0));
        if keep_from == 0 {
            return;
        }
        self.times.drain(..keep_from);
        self.usage.drain(..keep_from * self.num_resources);
        // Re-anchor the first breakpoint at zero so `segment_index` stays
        // valid for any t >= 0 (usage before `horizon` is now approximate,
        // which is fine: callers promise not to query it).
        self.times[0] = 0.0;
    }
}

/// Timelines for a cluster of `M` identical machines.
#[derive(Debug, Clone)]
pub struct ClusterTimelines {
    machines: Vec<MachineTimeline>,
}

impl ClusterTimelines {
    /// Empty timelines for `num_machines` machines with `num_resources`
    /// resources each.
    pub fn new(num_machines: usize, num_resources: usize) -> Self {
        assert!(num_machines > 0);
        ClusterTimelines {
            machines: vec![MachineTimeline::new(num_resources); num_machines],
        }
    }

    /// Number of machines `M`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Access a single machine's timeline.
    #[inline]
    pub fn machine(&self, m: usize) -> &MachineTimeline {
        &self.machines[m]
    }

    /// Earliest `(machine, start)` with `start >= from` at which the job
    /// fits for `dur`; ties on start break toward the lower machine index.
    pub fn earliest_fit(&self, from: Time, dur: Time, demands: &[Amount]) -> (usize, Time) {
        let mut best = (0usize, f64::INFINITY);
        for (m, tl) in self.machines.iter().enumerate() {
            let s = tl.earliest_fit(from, dur, demands);
            if s < best.1 {
                best = (m, s);
            }
        }
        debug_assert!(best.1.is_finite());
        best
    }

    /// Commits a job occupation on a machine.
    pub fn commit(&mut self, machine: usize, start: Time, dur: Time, demands: &[Amount]) {
        self.machines[machine].commit(start, dur, demands);
    }

    /// Finds the earliest fit for `job` at or after `from`, commits it, and
    /// returns the placement.
    pub fn place_earliest(&mut self, job: &Job, from: Time) -> (usize, Time) {
        let (m, s) = self.earliest_fit(from, job.proc_time, &job.demands);
        self.commit(m, s, job.proc_time, &job.demands);
        (m, s)
    }

    /// The latest committed breakpoint across machines — an upper bound on
    /// the makespan of everything committed so far.
    pub fn horizon(&self) -> Time {
        self.machines
            .iter()
            .map(|tl| *tl.times.last().unwrap())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::amount_from_fraction as amt;

    fn d(fracs: &[f64]) -> Vec<Amount> {
        fracs.iter().copied().map(amt).collect()
    }

    #[test]
    fn empty_timeline_fits_anywhere() {
        let tl = MachineTimeline::new(2);
        assert_eq!(tl.earliest_fit(0.0, 5.0, &d(&[1.0, 1.0])), 0.0);
        assert_eq!(tl.earliest_fit(3.5, 5.0, &d(&[1.0, 1.0])), 3.5);
        assert!(tl.is_feasible(0.0, 100.0, &d(&[1.0, 1.0])));
    }

    #[test]
    fn commit_blocks_overlapping_full_demand() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(2.0, 3.0, &d(&[0.6]));
        // A 0.5-demand job cannot overlap [2, 5).
        assert_eq!(tl.earliest_fit(0.0, 3.0, &d(&[0.5])), 5.0);
        // But a 2-long job fits before, exactly in [0, 2).
        assert_eq!(tl.earliest_fit(0.0, 2.0, &d(&[0.5])), 0.0);
        // And a 0.4-demand job can share the interval.
        assert_eq!(tl.earliest_fit(0.0, 10.0, &d(&[0.4])), 0.0);
    }

    #[test]
    fn earliest_fit_finds_gap_between_commitments() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 2.0, &d(&[0.9]));
        tl.commit(5.0, 2.0, &d(&[0.9]));
        // Gap [2, 5) holds a 3-long job but not a 4-long one.
        assert_eq!(tl.earliest_fit(0.0, 3.0, &d(&[0.5])), 2.0);
        assert_eq!(tl.earliest_fit(0.0, 4.0, &d(&[0.5])), 7.0);
    }

    #[test]
    fn usage_accumulates_and_splits_segments() {
        let mut tl = MachineTimeline::new(2);
        tl.commit(1.0, 4.0, &d(&[0.3, 0.1]));
        tl.commit(2.0, 1.0, &d(&[0.2, 0.0]));
        assert_eq!(tl.usage_at(0.5), &d(&[0.0, 0.0])[..]);
        assert_eq!(tl.usage_at(1.5), &d(&[0.3, 0.1])[..]);
        assert_eq!(tl.usage_at(2.5), &d(&[0.5, 0.1])[..]);
        assert_eq!(tl.usage_at(3.5), &d(&[0.3, 0.1])[..]);
        assert_eq!(tl.usage_at(10.0), &d(&[0.0, 0.0])[..]);
    }

    #[test]
    fn exact_capacity_packing_is_feasible() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 5.0, &d(&[0.5]));
        assert!(tl.is_feasible(0.0, 5.0, &d(&[0.5])));
        assert!(!tl.is_feasible(0.0, 5.0, &[amt(0.5) + 1]));
        // Earliest fit for the over-half job is when the first one ends.
        assert_eq!(tl.earliest_fit(0.0, 1.0, &[amt(0.5) + 1]), 5.0);
    }

    #[test]
    fn cluster_picks_earliest_machine_with_tie_break() {
        let mut cl = ClusterTimelines::new(2, 1);
        cl.commit(0, 0.0, 4.0, &d(&[1.0]));
        // Machine 1 is empty: job goes there at time 0.
        assert_eq!(cl.earliest_fit(0.0, 2.0, &d(&[0.7])), (1, 0.0));
        cl.commit(1, 0.0, 2.0, &d(&[1.0]));
        // Now machine 1 frees at 2, machine 0 at 4.
        assert_eq!(cl.earliest_fit(0.0, 1.0, &d(&[0.7])), (1, 2.0));
        // Tie at time 4+ (both empty): lower machine index wins.
        assert_eq!(cl.earliest_fit(4.0, 1.0, &d(&[1.0])), (0, 4.0));
    }

    #[test]
    fn place_earliest_commits() {
        use mris_types::{Job, JobId};
        let mut cl = ClusterTimelines::new(1, 1);
        let j = Job::from_fractions(JobId(0), 0.0, 3.0, 1.0, &[0.8]);
        let (m0, s0) = cl.place_earliest(&j, 0.0);
        let (m1, s1) = cl.place_earliest(&j, 0.0);
        assert_eq!((m0, s0), (0, 0.0));
        assert_eq!((m1, s1), (0, 3.0));
        assert_eq!(cl.horizon(), 6.0);
    }

    #[test]
    fn backfill_before_later_commitment() {
        // A later commitment far in the future leaves the near past open.
        let mut tl = MachineTimeline::new(1);
        tl.commit(100.0, 10.0, &d(&[1.0]));
        assert_eq!(tl.earliest_fit(3.0, 5.0, &d(&[1.0])), 3.0);
        // A job longer than the gap has to wait until after the block.
        assert_eq!(tl.earliest_fit(3.0, 98.0, &d(&[1.0])), 110.0);
    }

    #[test]
    #[should_panic(expected = "demand exceeds machine capacity")]
    fn earliest_fit_rejects_impossible_demand() {
        let tl = MachineTimeline::new(1);
        let _ = tl.earliest_fit(0.0, 1.0, &[CAPACITY + 1]);
    }

    #[test]
    fn compact_preserves_future() {
        let mut tl = MachineTimeline::new(1);
        tl.commit(0.0, 1.0, &d(&[0.5]));
        tl.commit(2.0, 3.0, &d(&[0.5]));
        tl.commit(10.0, 1.0, &d(&[1.0]));
        let before = tl.earliest_fit(10.0, 2.0, &d(&[0.6]));
        tl.compact_before(9.0);
        assert_eq!(tl.earliest_fit(10.0, 2.0, &d(&[0.6])), before);
        assert!(tl.num_segments() <= 4);
    }
}
