//! Discrete-event cluster simulation substrate for MRIS and its baselines.
//!
//! The paper evaluates schedulers on a simulated cluster of `M` identical
//! machines with `R` unit-capacity resources. Two execution styles are
//! needed:
//!
//! * **Online event-driven simulation** ([`run_online`], [`OnlinePolicy`],
//!   [`ClusterState`]) — for the Priority-Queue family, Tetris, and BF-EXEC,
//!   which react to job arrival/completion events and start jobs *now*.
//! * **Committed-schedule timelines** ([`MachineTimeline`],
//!   [`ClusterTimelines`]) — for MRIS and CA-PQ, which construct schedule
//!   fragments ahead of wall-clock time and need *earliest-fit backfilling*
//!   queries ("the earliest instant `>= t` at which this job fits for its
//!   whole duration, given everything committed so far").
//! * **Fault injection** ([`FaultPlan`], [`run_online_chaos`]) — a
//!   deterministic chaos layer that fails machines mid-run, kills their
//!   in-flight jobs, re-releases them as fresh arrivals, and audits every
//!   run with an invariant checker ([`FaultLog::verify`]).
//!
//! All online execution flows through one event loop: [`run_driver`] with
//! a [`RunOptions`] builder (fault plan, restart semantics). The classic
//! entry points [`run_online`], [`run_online_observed`], and
//! [`run_online_chaos`] are thin wrappers over it — no call site
//! constructs the event loop by hand.
//!
//! All resource arithmetic is exact fixed-point (`mris_types::Amount`).

// `deny`, not `forbid`: the scan-pool module below needs one scoped
// `allow` for its raw-pointer query descriptor. Everything else in the
// crate still refuses `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod driver;
mod fault;
mod online;
#[allow(unsafe_code)]
mod pool;
mod precedence;
mod timeline;

pub use cluster::ClusterState;
pub use driver::{run_driver, run_driver_observed, RunOptions};
pub use fault::{
    resolve_fault_target, run_online_chaos, suggested_horizon, ChaosOutcome, ChaosViolation,
    CompletionRecord, FailureRecord, FaultLog, FaultPlan, PoissonFaultConfig, RackBurstConfig,
};
pub use online::{run_online, run_online_observed, Dispatcher, EventSnapshot, OnlinePolicy};
pub use precedence::PrecedenceGate;
pub use timeline::{ClusterTimelines, MachineTimeline, PARALLEL_SCAN_THRESHOLD, SHARD_SIZE};

use mris_types::Time;

/// A totally ordered `f64` time for use in heaps and sorted containers
/// (orders by IEEE `total_cmp`; schedulers only produce finite times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdTime(pub Time);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_time_orders_totally() {
        let mut v = vec![OrdTime(3.0), OrdTime(-1.0), OrdTime(0.0)];
        v.sort();
        assert_eq!(v, vec![OrdTime(-1.0), OrdTime(0.0), OrdTime(3.0)]);
    }
}
