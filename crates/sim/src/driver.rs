//! The unified event-loop driver.
//!
//! One loop drives every simulation in the repo. Historically
//! [`run_online`](crate::run_online) (arrivals + completions only) and
//! [`run_online_chaos`](crate::run_online_chaos) (plus fault events and
//! policy wakeups) were two hand-maintained copies of the same event loop
//! that had already drifted once: the fault-free loop ignored
//! [`OnlinePolicy::next_wakeup`], so grid-driven policies silently only
//! worked under the chaos entry point. Both are now thin wrappers over
//! [`run_driver`], configured through [`RunOptions`]:
//!
//! * **fault-free** is simply the default options (no fault plan) — the
//!   fault queue starts empty and the loop degenerates to
//!   arrivals/completions/wakeups;
//! * **chaos** attaches a [`FaultPlan`] and
//!   [`RestartSemantics`].
//!
//! The driver only clones the instance when weight aging actually rewrites
//! a weight (`Cow`), so the dominant fault-free path borrows the caller's
//! instance without copying.
//!
//! # Event ordering at one instant
//!
//! At a shared timestamp `t` the driver processes, in order: completions
//! (a job finishing exactly at `t` survives a failure at `t`), then
//! recoveries, then failures (a machine recovering at `t` can be re-failed
//! by a strike at `t`), then arrivals and re-releases, then one dispatch.
//! A failure targeting a machine that is down (or out of range) at fire
//! time is absorbed without effect.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mris_types::{ClusterSpec, Instance, JobId, RestartSemantics, Schedule, SchedulingError};

use crate::fault::{
    resolve_fault_target, ChaosOutcome, CompletionRecord, FailureRecord, FaultLog, FaultPlan,
};
use crate::online::EventSnapshot;
use crate::precedence::PrecedenceGate;
use crate::{ClusterState, Dispatcher, OnlinePolicy, OrdTime};

/// Configuration for one [`run_driver`] run, built fluently:
///
/// ```
/// use mris_sim::{FaultPlan, RunOptions};
/// use mris_types::RestartSemantics;
///
/// let fault_free = RunOptions::new();
/// let plan = FaultPlan::none();
/// let chaos = RunOptions::new()
///     .with_faults(&plan)
///     .with_restart(RestartSemantics::WeightAging { factor: 2.0 });
/// # let _ = (fault_free, chaos);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RunOptions<'a> {
    plan: Option<&'a FaultPlan>,
    restart: RestartSemantics,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            plan: None,
            restart: RestartSemantics::FullRestart,
        }
    }
}

impl<'a> RunOptions<'a> {
    /// Fault-free defaults: no failures, [`RestartSemantics::FullRestart`]
    /// (irrelevant without failures).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays `plan` during the run. An empty plan is equivalent to the
    /// default.
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// What happens to a killed job's weight when it is re-released.
    ///
    /// # Panics
    ///
    /// If a [`RestartSemantics::WeightAging`] factor is not finite and
    /// non-negative.
    pub fn with_restart(mut self, restart: RestartSemantics) -> Self {
        if let RestartSemantics::WeightAging { factor } = restart {
            assert!(
                factor.is_finite() && factor >= 0.0,
                "weight-aging factor {factor} must be finite and non-negative"
            );
        }
        self.restart = restart;
        self
    }

    /// The attached fault plan, if any.
    pub fn plan(&self) -> Option<&'a FaultPlan> {
        self.plan
    }

    /// The restart semantics.
    pub fn restart(&self) -> RestartSemantics {
        self.restart
    }
}

/// Pending fault-queue entries. Variant order matters: `Recover < Fail`,
/// so at a shared instant recoveries fire before failures (a machine
/// recovering at `t` can be struck again at `t`). Within a kind, the
/// payload (machine index / plan index) breaks ties deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FaultKind {
    Recover(usize),
    Fail(usize),
}

#[cfg(debug_assertions)]
fn debug_check_event(log: &FaultLog, cluster: &ClusterState, first_new_completion: usize) {
    // Completions recorded this event must not overlap any downtime so far
    // (future failures cannot overlap them: a failure at `t >= now` starts
    // at or after every end recorded by `now`).
    for rec in &log.completions[first_new_completion..] {
        for fail in &log.failures {
            assert!(
                !(rec.machine == fail.machine && rec.start < fail.recover_at && fail.at < rec.end),
                "chaos invariant violated: {} ran [{}, {}) across downtime [{}, {}) on machine {}",
                rec.job,
                rec.start,
                rec.end,
                fail.at,
                fail.recover_at,
                rec.machine
            );
        }
    }
    // No job may be running on a down machine.
    for (_, m, job) in cluster.running_jobs() {
        assert!(
            cluster.is_up(m),
            "chaos invariant violated: {job} is running on down machine {m}"
        );
    }
}

/// Runs `policy` over `instance` on the machines described by `cluster`
/// under `options`, calling `observer` with an [`EventSnapshot`] after
/// every processed event.
///
/// `cluster` is anything convertible to a [`ClusterSpec`]: a bare machine
/// count gives the historical uniform cluster; an explicit spec gives each
/// machine its own speed and capacities (a job started on machine `m`
/// completes after `p_j / speed_m` wall time, and fit checks use `m`'s own
/// capacity vector).
///
/// This is the single event loop behind [`run_online`](crate::run_online),
/// [`run_online_observed`](crate::run_online_observed), and
/// [`run_online_chaos`](crate::run_online_chaos); see those wrappers for
/// the common entry points. The loop advances the simulated clock to the
/// earliest of: the next arrival, the next completion, the next fault
/// event (failure or recovery), and the policy's
/// [`next_wakeup`](OnlinePolicy::next_wakeup).
///
/// For instances with precedence edges the driver withholds a released job
/// from [`OnlinePolicy::on_arrivals`] until every predecessor has
/// completed; the job is delivered at the completion event that opens its
/// gate (or at its release time, whichever is later). Policies therefore
/// never see a job they may not start, and run DAG workloads unmodified.
///
/// Machine failures kill every job running on the struck machine; killed
/// jobs lose all progress (non-preemptive restart) and are re-released to
/// the policy as fresh arrivals at the failure instant, with weights per
/// [`RunOptions::with_restart`]. A killed job's own completions never
/// happened, so gates it would have opened stay armed until its re-run
/// completes.
///
/// # Errors
///
/// Returns a [`SchedulingError`] if the policy strands jobs (leaves them
/// unplaced after the last event) or violates placement rules — see
/// [`Dispatcher::place`] — or, on a heterogeneous cluster, if some job's
/// demand exceeds every machine's capacity
/// ([`SchedulingError::UnplaceableJob`]).
pub fn run_driver_observed<P: OnlinePolicy + ?Sized>(
    instance: &Instance,
    cluster: impl Into<ClusterSpec>,
    policy: &mut P,
    options: RunOptions<'_>,
    mut observer: impl FnMut(&EventSnapshot),
) -> Result<ChaosOutcome, SchedulingError> {
    // Re-validate here so options built without the builder (Default +
    // struct update) cannot smuggle in a bad factor.
    if let RestartSemantics::WeightAging { factor } = options.restart {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "weight-aging factor {factor} must be finite and non-negative"
        );
    }
    let spec: ClusterSpec = cluster.into();
    let num_machines = spec.len();
    let mut log = FaultLog::new(instance.len());
    let mut schedule = Schedule::new(instance.len(), num_machines);
    if instance.is_empty() {
        return Ok(ChaosOutcome { schedule, log });
    }
    // On a restricted-capacity cluster a job can exceed every machine; the
    // instance-level bound (demand <= CAPACITY) only covers uniform specs.
    // Reject up front instead of stranding at the end of the run.
    if !spec.is_uniform() {
        for j in instance.jobs() {
            let placeable = (0..num_machines).any(|m| {
                j.demands
                    .iter()
                    .enumerate()
                    .all(|(r, &d)| d <= spec.capacity(m, r))
            });
            if !placeable {
                return Err(SchedulingError::UnplaceableJob { job: j.id });
            }
        }
    }
    // Weight aging rewrites weights in a working copy made on first kill;
    // the fault-free path never clones.
    let mut work: Cow<'_, Instance> = Cow::Borrowed(instance);
    let mut cluster = ClusterState::with_spec(&spec, instance.num_resources());
    let mut gate = PrecedenceGate::new(instance);
    // Successors whose gates opened at this event's completions, pending
    // delivery in the arrival phase.
    let mut opened: Vec<JobId> = Vec::new();

    let mut arrivals: Vec<JobId> = work.jobs().iter().map(|j| j.id).collect();
    arrivals.sort_by(|&a, &b| {
        work.job(a)
            .release
            .total_cmp(&work.job(b).release)
            .then(a.cmp(&b))
    });
    let mut next_arrival = 0usize;

    let plan_events = options.plan.map(FaultPlan::events).unwrap_or(&[]);
    let mut fault_q: BinaryHeap<Reverse<(OrdTime, FaultKind)>> = plan_events
        .iter()
        .enumerate()
        .map(|(i, e)| Reverse((OrdTime(e.at), FaultKind::Fail(i))))
        .collect();

    let mut freed: Vec<usize> = Vec::new();
    let mut completed: Vec<(JobId, usize)> = Vec::new();
    let mut re_released: Vec<JobId> = Vec::new();
    let mut placed_total = 0usize;
    let mut last_now = f64::NEG_INFINITY;

    loop {
        let arr_t = arrivals.get(next_arrival).map(|&j| work.job(j).release);
        let comp_t = cluster.next_completion();
        let fault_t = fault_q.peek().map(|&Reverse((t, _))| t.0);
        let wake_t = policy.next_wakeup().filter(|&t| t > last_now);
        let mut now = f64::INFINITY;
        for t in [arr_t, comp_t, fault_t, wake_t].into_iter().flatten() {
            now = now.min(t);
        }
        if !now.is_finite() {
            break;
        }
        last_now = now;

        // 1. Completions due at `now` — before faults, so a job finishing
        //    exactly at the strike instant survives.
        freed.clear();
        completed.clear();
        cluster.complete_due_recorded(now, &work, &mut completed);
        let _first_new_completion = log.completions.len();
        for &(job, machine) in &completed {
            // Completions are ordered before the fault events that unassign
            // jobs at the same tick, so a missing assignment means that
            // ordering regressed; surface it instead of aborting the run.
            let Some(a) = schedule.get(job) else {
                return Err(SchedulingError::UnassignedCompletion { job, machine });
            };
            log.completions.push(CompletionRecord {
                job,
                machine,
                start: a.start,
                // Effective time: exact `p / 1.0 == p` on uniform clusters.
                end: a.start + spec.effective_time(machine, work.job(job).proc_time),
            });
            gate.complete(job, &work, &mut opened);
            freed.push(machine);
        }

        // 2. Fault events due at `now` (recoveries before failures).
        while let Some(&Reverse((t, kind))) = fault_q.peek() {
            if t.0 > now {
                break;
            }
            fault_q.pop();
            match kind {
                FaultKind::Recover(machine) => {
                    cluster.recover_machine(machine);
                    // Listed as freed so incremental policies re-examine it.
                    freed.push(machine);
                    log.recoveries.push((now, machine));
                    mris_obs::counter_add("mris_chaos_recoveries_total", 1);
                    policy.on_machine_recovered(now, machine, &work);
                }
                FaultKind::Fail(idx) => {
                    let event = plan_events[idx];
                    // Absorb strikes on down or out-of-range machines.
                    let Some(machine) = resolve_fault_target(event.target, &cluster) else {
                        mris_obs::counter_add("mris_chaos_absorbed_strikes_total", 1);
                        continue;
                    };
                    let killed = cluster.fail_machine(machine);
                    let recover_at = now + event.downtime;
                    for &job in &killed {
                        schedule.unassign(job);
                        log.re_releases[job.index()] += 1;
                        if let RestartSemantics::WeightAging { factor } = options.restart {
                            work.to_mut().scale_weight(job, factor);
                        }
                        // Re-arm gates downstream of the killed job. Only
                        // running jobs can be killed and completions are
                        // processed first at a shared instant, so a killed
                        // job was never marked complete and this is a no-op
                        // today; it keeps the gate sound if the ordering
                        // ever changes. Started successors are never
                        // recalled (non-preemptive).
                        for s in gate.revoke(job, &work) {
                            if schedule.get(s).is_none() {
                                gate.hold(s);
                            }
                        }
                        re_released.push(job);
                    }
                    fault_q.push(Reverse((OrdTime(recover_at), FaultKind::Recover(machine))));
                    log.failures.push(FailureRecord {
                        at: now,
                        machine,
                        recover_at,
                        killed: killed.clone(),
                    });
                    mris_obs::counter_add("mris_chaos_failures_total", 1);
                    mris_obs::counter_add("mris_chaos_re_releases_total", killed.len() as u64);
                    policy.on_machine_failed(now, machine, recover_at, &killed, &work);
                }
            }
        }

        // 3. Arrivals: originals first, then this instant's re-releases.
        freed.sort_unstable();
        freed.dedup();
        let first = next_arrival;
        while next_arrival < arrivals.len() && work.job(arrivals[next_arrival]).release <= now {
            next_arrival += 1;
        }
        if !gate.is_active() {
            // Historical edge-free path, byte for byte.
            if next_arrival > first {
                policy.on_arrivals(now, &arrivals[first..next_arrival], &work);
            }
        } else {
            // Gated delivery: withhold released jobs with incomplete
            // predecessors; deliver the ones whose gates this event's
            // completions opened alongside fresh ready arrivals, ordered by
            // (release, id) to preserve the `on_arrivals` contract.
            let mut deliver: Vec<JobId> = Vec::new();
            for &j in &arrivals[first..next_arrival] {
                if gate.is_ready(j) {
                    deliver.push(j);
                } else {
                    gate.hold(j);
                }
            }
            // A gate re-armed by the (defensive) revoke path can leave an
            // opened entry whose release is still in the future; the normal
            // sweep delivers it at its release instead.
            deliver.extend(opened.drain(..).filter(|&j| work.job(j).release <= now));
            deliver.sort_by(|&a, &b| {
                work.job(a)
                    .release
                    .total_cmp(&work.job(b).release)
                    .then(a.cmp(&b))
            });
            if !deliver.is_empty() {
                policy.on_arrivals(now, &deliver, &work);
            }
        }
        if !re_released.is_empty() {
            re_released.sort_unstable();
            policy.on_arrivals(now, &re_released, &work);
            re_released.clear();
        }

        // 4. One dispatch per event.
        let running_before_dispatch = cluster.num_running();
        let mut dispatcher = Dispatcher::new(&mut cluster, &mut schedule, &work, now);
        if gate.is_active() {
            dispatcher.set_gate(&gate);
        }
        policy.dispatch(&mut dispatcher, &freed)?;
        placed_total += cluster.num_running() - running_before_dispatch;
        observer(&EventSnapshot {
            time: now,
            running: cluster.num_running(),
            placed: placed_total,
            released: next_arrival,
        });

        // 5. Debug invariant audit.
        #[cfg(debug_assertions)]
        debug_check_event(&log, &cluster, _first_new_completion);
    }

    if !schedule.is_complete() {
        let unplaced = instance.len() - schedule.assignments().count();
        return Err(SchedulingError::StrandedJobs { unplaced });
    }
    #[cfg(debug_assertions)]
    log.verify()
        .expect("chaos invariant violated at end of run");
    Ok(ChaosOutcome { schedule, log })
}

/// [`run_driver_observed`] without an observer.
pub fn run_driver<P: OnlinePolicy + ?Sized>(
    instance: &Instance,
    cluster: impl Into<ClusterSpec>,
    policy: &mut P,
    options: RunOptions<'_>,
) -> Result<ChaosOutcome, SchedulingError> {
    run_driver_observed(instance, cluster, policy, options, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::{FaultEvent, FaultTarget, Job, Time};

    /// Minimal work-conserving FIFO policy for driver tests.
    struct Fifo {
        pending: Vec<JobId>,
    }

    impl OnlinePolicy for Fifo {
        fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _inst: &Instance) {
            self.pending.extend_from_slice(arrived);
        }

        fn dispatch(
            &mut self,
            d: &mut Dispatcher<'_>,
            _freed: &[usize],
        ) -> Result<(), SchedulingError> {
            let mut remaining = Vec::with_capacity(self.pending.len());
            for &job in &self.pending {
                let demands = &d.instance().job(job).demands;
                if let Some(m) = d.cluster().first_fit(demands) {
                    d.place(m, job)?;
                } else {
                    remaining.push(job);
                }
            }
            self.pending = remaining;
            Ok(())
        }
    }

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::new(jobs, 1).unwrap()
    }

    #[test]
    fn options_default_is_fault_free_full_restart() {
        let o = RunOptions::new();
        assert!(o.plan().is_none());
        assert_eq!(o.restart(), RestartSemantics::FullRestart);
    }

    #[test]
    #[should_panic(expected = "weight-aging factor")]
    fn options_reject_bad_aging_factor() {
        let _ = RunOptions::new().with_restart(RestartSemantics::WeightAging { factor: f64::NAN });
    }

    #[test]
    fn empty_plan_equals_no_plan() {
        let instance = inst(
            (0..6)
                .map(|i| Job::from_fractions(JobId(i), (i % 3) as f64, 2.0, 1.0, &[0.6]))
                .collect(),
        );
        let none = FaultPlan::none();
        let a = run_driver(
            &instance,
            2,
            &mut Fifo { pending: vec![] },
            RunOptions::new(),
        )
        .unwrap();
        let b = run_driver(
            &instance,
            2,
            &mut Fifo { pending: vec![] },
            RunOptions::new().with_faults(&none),
        )
        .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.log, b.log);
    }

    #[test]
    fn honors_policy_wakeups_without_faults() {
        // A policy that refuses to place anything until its self-scheduled
        // wakeup at t = 5 — under the old fault-free loop (arrivals and
        // completions only) this run would deadlock-strand; the unified
        // driver must fire the wakeup.
        struct Sleeper {
            pending: Vec<JobId>,
            wake: Time,
        }
        impl OnlinePolicy for Sleeper {
            fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _inst: &Instance) {
                self.pending.extend_from_slice(arrived);
            }
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                if d.now() < self.wake {
                    return Ok(());
                }
                for job in self.pending.drain(..) {
                    let m = d
                        .cluster()
                        .first_fit(&d.instance().job(job).demands)
                        .unwrap();
                    d.place(m, job)?;
                }
                Ok(())
            }
            fn next_wakeup(&self) -> Option<Time> {
                (!self.pending.is_empty()).then_some(self.wake)
            }
        }
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.5])]);
        let outcome = run_driver(
            &instance,
            1,
            &mut Sleeper {
                pending: vec![],
                wake: 5.0,
            },
            RunOptions::new(),
        )
        .unwrap();
        assert_eq!(outcome.schedule.get(JobId(0)).unwrap().start, 5.0);
    }

    #[test]
    fn fault_free_run_borrows_instance_without_cloning() {
        // Indirect but effective: weight aging under an empty plan must not
        // alter observable weights, and the run must succeed end to end.
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 1.0, 3.0, &[0.5])]);
        let outcome = run_driver(
            &instance,
            1,
            &mut Fifo { pending: vec![] },
            RunOptions::new().with_restart(RestartSemantics::WeightAging { factor: 2.0 }),
        )
        .unwrap();
        assert!(outcome.schedule.is_complete());
        assert_eq!(instance.job(JobId(0)).weight, 3.0);
    }

    #[test]
    fn observer_fires_under_chaos_options() {
        let instance = inst(vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5]),
            Job::from_fractions(JobId(1), 0.5, 1.0, 1.0, &[0.4]),
        ]);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 1.0,
            downtime: 2.0,
            target: FaultTarget::Machine(0),
        }]);
        let mut times = Vec::new();
        let outcome = run_driver_observed(
            &instance,
            1,
            &mut Fifo { pending: vec![] },
            RunOptions::new().with_faults(&plan),
            |snap| times.push(snap.time),
        )
        .unwrap();
        assert!(outcome.schedule.is_complete());
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
