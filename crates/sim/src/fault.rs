//! Fault injection: deterministic machine-failure plans, a fault-aware
//! event loop, and an invariant checker.
//!
//! A [`FaultPlan`] is a pre-computed, deterministic list of machine failure
//! events — either hand-built or drawn from a seeded generator (Poisson
//! MTBF per machine, correlated rack bursts, or adversarial
//! "kill the busiest machine" strikes). [`run_online_chaos`] replays a plan
//! against any [`OnlinePolicy`]: when a machine fails, every job running on
//! it is killed and re-released as a fresh arrival (non-preemptive restart —
//! all progress is lost), and the machine accepts no work until it recovers.
//!
//! Everything is deterministic: the same instance, policy, seed, and plan
//! produce a byte-identical [`Schedule`] and [`FaultLog`]. In debug builds
//! the driver additionally audits, after every event, that no completed job
//! overlapped a downtime interval on its machine ([`FaultLog::verify`]).
//!
//! # Event ordering at one instant
//!
//! At a shared timestamp `t` the driver processes, in order: completions
//! (a job finishing exactly at `t` survives a failure at `t`), then
//! recoveries, then failures (a machine recovering at `t` can be re-failed
//! by a strike at `t`), then arrivals and re-releases, then one dispatch.
//! A failure targeting a machine that is down (or out of range) at fire
//! time is absorbed without effect.

use mris_rng::Rng;
use mris_types::{
    FaultEvent, FaultTarget, Instance, JobId, RestartSemantics, Schedule, SchedulingError, Time,
};

use crate::driver::{run_driver, RunOptions};
use crate::{ClusterState, OnlinePolicy};

/// A deterministic list of machine failures, sorted by strike time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Configuration for [`FaultPlan::poisson`]: independent exponential
/// fail/repair clocks per machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonFaultConfig {
    /// RNG seed; each machine draws from `substream_indexed("fault-machine", m)`.
    pub seed: u64,
    /// Number of machines in the cluster.
    pub num_machines: usize,
    /// Failures strike strictly before this time.
    pub horizon: Time,
    /// Mean time between failures (per machine, measured up-time).
    pub mtbf: Time,
    /// Mean time to repair (mean downtime per failure).
    pub mttr: Time,
}

/// Configuration for [`FaultPlan::rack_bursts`]: whole racks of
/// `rack_size` consecutive machines fail together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackBurstConfig {
    /// RNG seed; bursts draw from `substream("rack-bursts")`.
    pub seed: u64,
    /// Number of machines in the cluster.
    pub num_machines: usize,
    /// Machines per rack; the last rack may be smaller.
    pub rack_size: usize,
    /// Bursts strike strictly before this time.
    pub horizon: Time,
    /// Mean time between bursts (exponential).
    pub mtbb: Time,
    /// Fixed downtime of every machine in a struck rack.
    pub downtime: Time,
}

impl FaultPlan {
    /// The empty plan: no failures. [`run_online_chaos`] under this plan is
    /// equivalent to [`crate::run_online`].
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Wraps hand-built events, validating and sorting them by strike time
    /// (stable: events at the same instant keep their given order, which
    /// fixes the order failures fire in).
    ///
    /// # Panics
    ///
    /// If any event has a non-finite or negative `at`, or a non-finite or
    /// non-positive `downtime`.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        for e in &events {
            assert!(
                e.at.is_finite() && e.at >= 0.0,
                "fault event time {} is not finite and non-negative",
                e.at
            );
            assert!(
                e.downtime.is_finite() && e.downtime > 0.0,
                "fault downtime {} is not finite and positive",
                e.downtime
            );
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        FaultPlan { events }
    }

    /// Independent Poisson failures: each machine alternates exponential
    /// up-times (mean `mtbf`) and exponential downtimes (mean `mttr`),
    /// seeded per machine so plans are stable under changes to the machine
    /// count.
    pub fn poisson(cfg: &PoissonFaultConfig) -> Self {
        assert!(cfg.num_machines > 0, "poisson plan needs machines");
        assert!(
            cfg.horizon.is_finite() && cfg.horizon >= 0.0,
            "invalid horizon"
        );
        assert!(cfg.mtbf.is_finite() && cfg.mtbf > 0.0, "invalid mtbf");
        assert!(cfg.mttr.is_finite() && cfg.mttr > 0.0, "invalid mttr");
        let root = Rng::new(cfg.seed);
        let mut events = Vec::new();
        for m in 0..cfg.num_machines {
            let mut rng = root.substream_indexed("fault-machine", m as u64);
            let mut t = exponential(&mut rng, cfg.mtbf);
            while t < cfg.horizon {
                let downtime = exponential(&mut rng, cfg.mttr).max(cfg.mttr * 1e-9);
                events.push(FaultEvent {
                    at: t,
                    downtime,
                    target: FaultTarget::Machine(m),
                });
                t += downtime + exponential(&mut rng, cfg.mtbf);
            }
        }
        FaultPlan::from_events(events)
    }

    /// Correlated rack bursts: at exponentially spaced instants (mean
    /// `mtbb`) a uniformly chosen rack of `rack_size` consecutive machines
    /// fails in its entirety for a fixed `downtime`.
    pub fn rack_bursts(cfg: &RackBurstConfig) -> Self {
        assert!(cfg.num_machines > 0, "rack plan needs machines");
        assert!(cfg.rack_size > 0, "rack plan needs a positive rack size");
        assert!(
            cfg.horizon.is_finite() && cfg.horizon >= 0.0,
            "invalid horizon"
        );
        assert!(cfg.mtbb.is_finite() && cfg.mtbb > 0.0, "invalid mtbb");
        assert!(
            cfg.downtime.is_finite() && cfg.downtime > 0.0,
            "invalid downtime"
        );
        let num_racks = cfg.num_machines.div_ceil(cfg.rack_size);
        let mut rng = Rng::new(cfg.seed).substream("rack-bursts");
        let mut events = Vec::new();
        let mut t = exponential(&mut rng, cfg.mtbb);
        while t < cfg.horizon {
            let rack = rng.next_u64_below(num_racks as u64) as usize;
            let lo = rack * cfg.rack_size;
            let hi = (lo + cfg.rack_size).min(cfg.num_machines);
            for m in lo..hi {
                events.push(FaultEvent {
                    at: t,
                    downtime: cfg.downtime,
                    target: FaultTarget::Machine(m),
                });
            }
            t += cfg.downtime + exponential(&mut rng, cfg.mtbb);
        }
        FaultPlan::from_events(events)
    }

    /// Adversarial strikes: `count` failures at `start`, `start + period`,
    /// …, each killing whichever up machine is running the most jobs at
    /// fire time ([`FaultTarget::Busiest`]).
    pub fn adversarial_busiest(count: usize, start: Time, period: Time, downtime: Time) -> Self {
        assert!(start.is_finite() && start >= 0.0, "invalid start");
        assert!(period.is_finite() && period > 0.0, "invalid period");
        let events = (0..count)
            .map(|i| FaultEvent {
                at: start + period * i as f64,
                downtime,
                target: FaultTarget::Busiest,
            })
            .collect();
        FaultPlan::from_events(events)
    }

    /// The events, sorted by strike time.
    #[inline]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no failures.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of failure events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Exponential draw with the given mean: `-mean * ln(1 - u)`, `u ∈ [0, 1)`.
/// Always finite and non-negative.
fn exponential(rng: &mut Rng, mean: Time) -> Time {
    -mean * (1.0 - rng.gen_f64()).ln()
}

/// A scheduler-independent simulation horizon for sizing fault plans:
/// 1.5x the instance's makespan lower bound, so generated failures land
/// while work is plausibly still running regardless of the policy under
/// test. At least 1 so empty or degenerate instances still get a valid
/// plan window.
pub fn suggested_horizon(instance: &Instance, num_machines: usize) -> Time {
    (instance.makespan_lower_bound(num_machines) * 1.5).max(1.0)
}

/// One machine failure as it actually fired (targets resolved, kills
/// recorded).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// When the machine went down.
    pub at: Time,
    /// The machine that failed.
    pub machine: usize,
    /// When it came back up (`at + downtime`).
    pub recover_at: Time,
    /// Jobs killed by this failure, sorted by id.
    pub killed: Vec<JobId>,
}

/// One job completion as observed by the fault-aware driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// The completed job.
    pub job: JobId,
    /// Machine it ran on.
    pub machine: usize,
    /// Start of the completed (final) run.
    pub start: Time,
    /// End of the run (`start + p_j`).
    pub end: Time,
}

/// The audit trail of one [`run_online_chaos`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultLog {
    /// Failures that actually fired (absorbed events are omitted), in fire
    /// order.
    pub failures: Vec<FailureRecord>,
    /// `(time, machine)` recovery events, in fire order.
    pub recoveries: Vec<(Time, usize)>,
    /// Per-job kill count (how many times each job was re-released).
    pub re_releases: Vec<u32>,
    /// Every completed run, in completion order.
    pub completions: Vec<CompletionRecord>,
}

/// A completed job ran across a downtime interval on its machine — the
/// invariant [`FaultLog::verify`] enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosViolation {
    /// The offending job.
    pub job: JobId,
    /// The machine it completed on.
    pub machine: usize,
    /// Start of the completed run.
    pub start: Time,
    /// End of the completed run.
    pub end: Time,
    /// Start of the overlapping downtime.
    pub down_from: Time,
    /// End of the overlapping downtime.
    pub down_until: Time,
}

impl std::fmt::Display for ChaosViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ran [{}, {}) on machine {}, overlapping its downtime [{}, {})",
            self.job, self.start, self.end, self.machine, self.down_from, self.down_until
        )
    }
}

impl std::error::Error for ChaosViolation {}

impl FaultLog {
    pub(crate) fn new(num_jobs: usize) -> Self {
        FaultLog {
            failures: Vec::new(),
            recoveries: Vec::new(),
            re_releases: vec![0; num_jobs],
            completions: Vec::new(),
        }
    }

    /// Total jobs killed across all failures.
    pub fn total_kills(&self) -> usize {
        self.failures.iter().map(|f| f.killed.len()).sum()
    }

    /// Total re-releases (equals [`FaultLog::total_kills`] by construction).
    pub fn total_re_releases(&self) -> u64 {
        self.re_releases.iter().map(|&c| c as u64).sum()
    }

    /// Checks that no completed run overlaps a downtime interval on its
    /// machine: for every completion `[start, end)` on machine `m` and
    /// every downtime `[at, recover_at)` of `m`, the intervals are
    /// disjoint. Runs automatically in debug builds after every event and
    /// at the end of [`run_online_chaos`]; exposed so release-mode callers
    /// (and negative tests) can audit a log explicitly.
    pub fn verify(&self) -> Result<(), ChaosViolation> {
        for rec in &self.completions {
            for fail in &self.failures {
                if rec.machine == fail.machine && rec.start < fail.recover_at && fail.at < rec.end {
                    return Err(ChaosViolation {
                        job: rec.job,
                        machine: rec.machine,
                        start: rec.start,
                        end: rec.end,
                        down_from: fail.at,
                        down_until: fail.recover_at,
                    });
                }
            }
        }
        Ok(())
    }
}

/// The result of a [`run_online_chaos`] run: the final schedule (every
/// job's *last* placement, the one that completed) and the audit log.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The completed schedule.
    pub schedule: Schedule,
    /// Failure/recovery/re-release/completion audit trail.
    pub log: FaultLog,
}

/// Resolves a [`FaultTarget`] against the instantaneous cluster state:
/// `Machine(m)` hits `m` iff it is in range and up; `Busiest` picks the up
/// machine running the most jobs (lowest index wins ties). `None` means the
/// strike is absorbed. Public so external fault-replaying drivers (the
/// `mris-service` event loop) share the chaos driver's exact semantics.
pub fn resolve_fault_target(target: FaultTarget, cluster: &ClusterState) -> Option<usize> {
    match target {
        FaultTarget::Machine(m) => (m < cluster.num_machines() && cluster.is_up(m)).then_some(m),
        FaultTarget::Busiest => {
            let mut counts = vec![0usize; cluster.num_machines()];
            for (_, m, _) in cluster.running_jobs() {
                counts[m] += 1;
            }
            let mut best: Option<usize> = None;
            for (m, &count) in counts.iter().enumerate() {
                if cluster.is_up(m) && best.is_none_or(|b| count > counts[b]) {
                    best = Some(m);
                }
            }
            best
        }
    }
}

/// Runs `policy` over `instance` while replaying the failures in `plan`.
///
/// Thin wrapper over the unified event-loop driver
/// ([`crate::run_driver`]) with the plan and restart semantics attached
/// via [`crate::RunOptions`] — see [`crate::run_driver_observed`] for the
/// full event-loop semantics (fault ordering, kill/re-release, weight
/// aging, debug audits).
///
/// Under [`FaultPlan::none`] this is equivalent to [`crate::run_online`]
/// for any policy, and produces the identical schedule.
///
/// # Errors
///
/// Propagates [`SchedulingError`] exactly like [`crate::run_online`]:
/// placement-rule violations (including
/// [`SchedulingError::MachineDown`]) and stranded jobs.
pub fn run_online_chaos<P: OnlinePolicy + ?Sized>(
    instance: &Instance,
    cluster: impl Into<mris_types::ClusterSpec>,
    policy: &mut P,
    plan: &FaultPlan,
    restart: RestartSemantics,
) -> Result<ChaosOutcome, SchedulingError> {
    run_driver(
        instance,
        cluster,
        policy,
        RunOptions::new().with_faults(plan).with_restart(restart),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_online, Dispatcher};
    use mris_types::Job;

    /// Minimal work-conserving FIFO policy for driver tests.
    struct Fifo {
        pending: Vec<JobId>,
    }

    impl Fifo {
        fn new() -> Self {
            Fifo { pending: vec![] }
        }
    }

    impl OnlinePolicy for Fifo {
        fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _inst: &Instance) {
            self.pending.extend_from_slice(arrived);
        }

        fn dispatch(
            &mut self,
            d: &mut Dispatcher<'_>,
            _freed: &[usize],
        ) -> Result<(), SchedulingError> {
            let mut remaining = Vec::with_capacity(self.pending.len());
            for &job in &self.pending {
                let demands = &d.instance().job(job).demands;
                if let Some(m) = d.cluster().first_fit(demands) {
                    d.place(m, job)?;
                } else {
                    remaining.push(job);
                }
            }
            self.pending = remaining;
            Ok(())
        }
    }

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::new(jobs, 1).unwrap()
    }

    #[test]
    fn no_fault_plan_matches_run_online() {
        let instance = inst(
            (0..6)
                .map(|i| Job::from_fractions(JobId(i), (i % 3) as f64, 2.0, 1.0, &[0.6]))
                .collect(),
        );
        let baseline = run_online(&instance, 2, &mut Fifo::new()).unwrap();
        let outcome = run_online_chaos(
            &instance,
            2,
            &mut Fifo::new(),
            &FaultPlan::none(),
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.schedule, baseline);
        assert!(outcome.log.failures.is_empty());
        assert_eq!(outcome.log.total_re_releases(), 0);
        assert_eq!(outcome.log.completions.len(), instance.len());
    }

    #[test]
    fn failure_kills_and_re_releases() {
        // One machine; job 0 runs [0, 4) but is struck at t = 1. It is
        // re-released at t = 1, the machine is down until t = 3, so it
        // restarts at t = 3 and completes at t = 7.
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5])]);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 1.0,
            downtime: 2.0,
            target: FaultTarget::Machine(0),
        }]);
        let outcome = run_online_chaos(
            &instance,
            1,
            &mut Fifo::new(),
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.schedule.get(JobId(0)).unwrap().start, 3.0);
        assert_eq!(outcome.log.re_releases, vec![1]);
        assert_eq!(outcome.log.failures.len(), 1);
        assert_eq!(outcome.log.failures[0].killed, vec![JobId(0)]);
        assert_eq!(outcome.log.recoveries, vec![(3.0, 0)]);
        outcome.log.verify().unwrap();
    }

    #[test]
    fn completion_at_strike_instant_survives() {
        // Job completes exactly at t = 2; the strike at t = 2 kills nothing.
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.5])]);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 2.0,
            downtime: 1.0,
            target: FaultTarget::Machine(0),
        }]);
        let outcome = run_online_chaos(
            &instance,
            1,
            &mut Fifo::new(),
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.schedule.get(JobId(0)).unwrap().start, 0.0);
        assert_eq!(outcome.log.total_kills(), 0);
        assert_eq!(outcome.log.failures.len(), 1); // fired, killed nothing
    }

    #[test]
    fn strikes_on_down_or_invalid_machines_are_absorbed() {
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.5])]);
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: 2.0,
                downtime: 5.0,
                target: FaultTarget::Machine(0),
            },
            // Fires while machine 0 is still down: absorbed.
            FaultEvent {
                at: 3.0,
                downtime: 5.0,
                target: FaultTarget::Machine(0),
            },
            // Out of range: absorbed.
            FaultEvent {
                at: 4.0,
                downtime: 5.0,
                target: FaultTarget::Machine(9),
            },
        ]);
        let outcome = run_online_chaos(
            &instance,
            1,
            &mut Fifo::new(),
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.log.failures.len(), 1);
        assert_eq!(outcome.log.recoveries.len(), 1);
    }

    #[test]
    fn busiest_target_picks_most_loaded_up_machine() {
        // Machine 1 runs two jobs, machine 0 runs one; the strike at t = 1
        // must hit machine 1.
        let instance = inst(vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.9]),
            Job::from_fractions(JobId(1), 0.0, 4.0, 1.0, &[0.4]),
            Job::from_fractions(JobId(2), 0.0, 4.0, 1.0, &[0.4]),
        ]);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 1.0,
            downtime: 1.0,
            target: FaultTarget::Busiest,
        }]);
        let outcome = run_online_chaos(
            &instance,
            2,
            &mut Fifo::new(),
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.log.failures[0].machine, 1);
        assert_eq!(outcome.log.failures[0].killed, vec![JobId(1), JobId(2)]);
        outcome.log.verify().unwrap();
    }

    #[test]
    fn weight_aging_scales_working_weights_per_kill() {
        // The policy sees the aged weight after each kill; we observe it
        // through the instance passed to on_arrivals.
        struct Spy {
            inner: Fifo,
            seen_weights: Vec<f64>,
        }
        impl OnlinePolicy for Spy {
            fn on_arrivals(&mut self, now: Time, arrived: &[JobId], instance: &Instance) {
                for &j in arrived {
                    self.seen_weights.push(instance.job(j).weight);
                }
                self.inner.on_arrivals(now, arrived, instance);
            }
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                freed: &[usize],
            ) -> Result<(), SchedulingError> {
                self.inner.dispatch(d, freed)
            }
        }
        let instance = inst(vec![Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5])]);
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at: 1.0,
                downtime: 1.0,
                target: FaultTarget::Machine(0),
            },
            FaultEvent {
                at: 3.0,
                downtime: 1.0,
                target: FaultTarget::Machine(0),
            },
        ]);
        let mut spy = Spy {
            inner: Fifo::new(),
            seen_weights: vec![],
        };
        let outcome = run_online_chaos(
            &instance,
            1,
            &mut spy,
            &plan,
            RestartSemantics::WeightAging { factor: 2.0 },
        )
        .unwrap();
        // Original arrival at w=1, then re-releases at w=2 and w=4.
        assert_eq!(spy.seen_weights, vec![1.0, 2.0, 4.0]);
        assert_eq!(outcome.log.re_releases, vec![2]);
    }

    #[test]
    fn verify_flags_a_run_through_downtime() {
        let mut log = FaultLog::new(1);
        log.failures.push(FailureRecord {
            at: 1.0,
            machine: 0,
            recover_at: 3.0,
            killed: vec![],
        });
        log.completions.push(CompletionRecord {
            job: JobId(0),
            machine: 0,
            start: 2.0,
            end: 4.0,
        });
        let violation = log.verify().unwrap_err();
        assert_eq!(violation.job, JobId(0));
        assert_eq!((violation.down_from, violation.down_until), (1.0, 3.0));
        // Same interval on a different machine is fine.
        log.completions[0].machine = 1;
        log.verify().unwrap();
    }

    #[test]
    fn poisson_plan_is_deterministic_and_bounded() {
        let cfg = PoissonFaultConfig {
            seed: 7,
            num_machines: 4,
            horizon: 100.0,
            mtbf: 10.0,
            mttr: 2.0,
        };
        let a = FaultPlan::poisson(&cfg);
        let b = FaultPlan::poisson(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for e in a.events() {
            assert!(e.at >= 0.0 && e.at < cfg.horizon);
            assert!(e.downtime > 0.0);
            assert!(matches!(e.target, FaultTarget::Machine(m) if m < cfg.num_machines));
        }
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let c = FaultPlan::poisson(&PoissonFaultConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn rack_bursts_fail_whole_racks() {
        let cfg = RackBurstConfig {
            seed: 7,
            num_machines: 6,
            rack_size: 4,
            horizon: 50.0,
            mtbb: 10.0,
            downtime: 1.0,
        };
        let plan = FaultPlan::rack_bursts(&cfg);
        assert_eq!(plan, FaultPlan::rack_bursts(&cfg));
        assert!(!plan.is_empty());
        // Every burst covers one full rack: group events by strike time.
        let mut i = 0;
        while i < plan.len() {
            let t = plan.events()[i].at;
            let burst: Vec<usize> = plan.events()[i..]
                .iter()
                .take_while(|e| e.at == t)
                .map(|e| match e.target {
                    FaultTarget::Machine(m) => m,
                    FaultTarget::Busiest => unreachable!(),
                })
                .collect();
            let lo = burst[0];
            assert_eq!(lo % cfg.rack_size, 0);
            let hi = (lo + cfg.rack_size).min(cfg.num_machines);
            assert_eq!(burst, (lo..hi).collect::<Vec<_>>());
            i += burst.len();
        }
    }

    #[test]
    fn adversarial_plan_has_fixed_cadence() {
        let plan = FaultPlan::adversarial_busiest(3, 2.0, 5.0, 1.0);
        assert_eq!(plan.len(), 3);
        let times: Vec<Time> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![2.0, 7.0, 12.0]);
        assert!(plan
            .events()
            .iter()
            .all(|e| e.target == FaultTarget::Busiest));
    }

    #[test]
    fn trailing_recovery_still_unblocks_queued_jobs() {
        // The strike at t = 1 takes the only machine down until t = 10.
        // Job 1 (released at t = 2, while the machine is down) can only be
        // placed after the trailing recovery event — the driver must keep
        // processing fault events even when no completions remain.
        let instance = inst(vec![
            Job::from_fractions(JobId(0), 0.0, 0.5, 1.0, &[0.5]),
            Job::from_fractions(JobId(1), 2.0, 1.0, 1.0, &[0.5]),
        ]);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: 1.0,
            downtime: 9.0,
            target: FaultTarget::Machine(0),
        }]);
        let outcome = run_online_chaos(
            &instance,
            1,
            &mut Fifo::new(),
            &plan,
            RestartSemantics::FullRestart,
        )
        .unwrap();
        assert_eq!(outcome.schedule.get(JobId(0)).unwrap().start, 0.0);
        assert_eq!(outcome.schedule.get(JobId(1)).unwrap().start, 10.0);
        assert_eq!(outcome.log.total_kills(), 0);
    }
}
