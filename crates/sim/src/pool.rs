//! Persistent worker pool behind the sharded cluster scan.
//!
//! The pre-fix parallel scan spawned [`std::thread::scope`] threads for
//! *every* `earliest_fit` query; scoped-thread spawn plus join costs tens
//! of microseconds, which at 256 machines measured as a 0.93x *slowdown*
//! against the sequential cutoff-pruned scan. [`ScanPool`] fixes the bug at
//! the root: threads are created **once per cluster** and fed queries
//! through a shared descriptor, so a query's marginal cost is a wake plus
//! an atomic shard-claim loop.
//!
//! # Protocol
//!
//! A query publishes a [`Query`] descriptor under the pool mutex and bumps
//! the query sequence number. Workers (and the caller, which participates
//! as scanner zero) claim shards dynamically through one epoch-tagged CAS
//! counter — the epoch is the sequence number, so a worker waking late
//! from a previous query can never claim (and therefore never dereference)
//! a stale descriptor. Each claimed shard is scanned with the same
//! cutoff-pruning and one-ulp slack as the sequential scan, its
//! lexicographic `(start, machine)` minimum is written to a caller-owned
//! result slot, and a completion counter is bumped; whoever completes the
//! last shard marks the sequence done and wakes the caller, which reduces
//! the per-shard results **in shard order** — reproducing the sequential
//! scan's lowest-machine-index tie-break exactly.
//!
//! # Why the descriptor is raw pointers
//!
//! The descriptor borrows the caller's shards, demands, and result buffer
//! for the duration of one query. Expressing that borrow safely would
//! either clone per query (the allocation cost this pool exists to avoid)
//! or force `Arc` ownership of the shards (which breaks
//! `ClusterTimelines`' exclusive mutation paths). Instead the lifetime is
//! enforced by the protocol: the caller cannot return from
//! [`ScanPool::scan`] until every shard's completion tick is counted, a
//! scanner only dereferences the descriptor between a successful
//! epoch-tagged claim and its completion tick, and after the final tick
//! the claim counter is exhausted for that epoch — so no dereference can
//! outlive the borrow. This module is the one `#[allow(unsafe_code)]`
//! island in an otherwise `deny(unsafe_code)` crate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mris_types::{Amount, Time};

use crate::timeline::TimelineShard;

/// Scanners used per query (the caller plus spawned workers), bounded so a
/// query never oversubscribes the host even on very wide clusters.
pub(crate) const MAX_SCAN_THREADS: usize = 8;

/// Low bits of the claim counter holding the next unclaimed shard index;
/// the high bits hold the query sequence number (the claim epoch). 2^20
/// shards bounds clusters at ~67M machines with the default shard size —
/// checked per query.
const SHARD_BITS: u32 = 20;
const SHARD_MASK: u64 = (1 << SHARD_BITS) - 1;

/// Iterations a worker spins on the published sequence number before
/// parking on the condvar. Placement loops issue queries back to back, so
/// the next query usually arrives within the spin window and skips the
/// wake latency entirely.
const SPIN_LIMIT: u32 = 1 << 14;

/// One query's shared descriptor. Copied out by each scanner under the
/// pool mutex; the raw pointers borrow the caller's stack for the duration
/// of the query (see the module docs for the lifetime argument).
#[derive(Clone, Copy)]
struct Query {
    shards: *const TimelineShard,
    num_shards: usize,
    demands: *const Amount,
    num_demands: usize,
    from: Time,
    dur: Time,
    /// `from.max(0.0)`: no start below it exists, so a shard fitting at the
    /// floor ends the search for every higher-indexed shard.
    floor: Time,
    results: *mut (usize, Time),
    /// The sequence number this descriptor was published under — the claim
    /// epoch scanners must match.
    seq: u64,
}

// SAFETY: the pointers are only dereferenced between a successful
// epoch-tagged claim and the matching completion tick, during which the
// caller is provably blocked in `ScanPool::scan` (completion requires the
// tick this scanner has not yet delivered), keeping every borrow alive.
unsafe impl Send for Query {}

/// Mutex-guarded pool state: the published query and the sequence-number
/// handshake between callers and workers.
struct State {
    /// Monotone query sequence number; bumped as each query is published.
    seq: u64,
    /// Highest sequence number whose every shard has been scanned.
    completed_seq: u64,
    query: Option<Query>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between queries.
    work_cv: Condvar,
    /// The caller parks here until `completed_seq` reaches its query.
    done_cv: Condvar,
    /// Epoch-tagged shard claim counter: `(seq << SHARD_BITS) | next_shard`.
    /// Claims go through CAS (never a blind `fetch_add`) so a scanner
    /// holding a stale epoch can neither claim a fresh query's shard nor
    /// consume one of its indices.
    claim: AtomicU64,
    /// Shards of the current query fully scanned. The scanner whose tick
    /// reaches `num_shards` marks the query complete.
    shards_done: AtomicUsize,
    /// Best start found so far (f64 bits), shared across shards as a
    /// pruning bound only — correctness never depends on it, so relaxed
    /// ordering suffices.
    shared_best: AtomicU64,
    /// Lowest shard index that fit at the query floor, `usize::MAX` until
    /// one does. Shards above it cannot win (equal start, higher machine
    /// index) and are completed without scanning — this keeps the pooled
    /// scan O(active shards) on lightly loaded clusters, where the
    /// sequential scan stops at the first machine.
    floor_shard: AtomicUsize,
    /// Mirror of `state.seq` for the workers' lock-free spin check.
    published_seq: AtomicU64,
    /// A shard scan panicked (capacity assertion, poisoned hint lock, ...).
    /// The panic is caught so the completion protocol still runs — a
    /// deadlocked caller would be strictly worse — and re-raised on the
    /// caller's side of the handshake.
    panicked: AtomicBool,
}

/// The persistent worker pool owned by one
/// [`ClusterTimelines`](crate::ClusterTimelines). Created lazily on the
/// first pooled query; dropped (workers joined) with the cluster.
pub(crate) struct ScanPool {
    shared: Arc<Shared>,
    /// Serializes concurrent `scan` callers and doubles as the reusable
    /// per-shard result buffer.
    scratch: Mutex<Vec<(usize, Time)>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ScanPool {
    /// Spawns `min(MAX_SCAN_THREADS, parallelism) - 1` workers (the caller
    /// is scanner zero). Spawn failures degrade capacity, never
    /// correctness: with zero workers the caller scans every shard itself.
    pub(crate) fn new() -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                seq: 0,
                completed_seq: 0,
                query: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            claim: AtomicU64::new(0),
            shards_done: AtomicUsize::new(0),
            shared_best: AtomicU64::new(f64::INFINITY.to_bits()),
            floor_shard: AtomicUsize::new(usize::MAX),
            published_seq: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        });
        let scanners = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_SCAN_THREADS);
        let handles = (1..scanners)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mris-scan-{i}"))
                    .spawn(move || worker(&shared))
                    .ok()
            })
            .collect();
        ScanPool {
            shared,
            scratch: Mutex::new(Vec::new()),
            handles,
        }
    }

    /// Earliest `(machine, start)` over `shards` — identical to the
    /// sequential cutoff-pruned scan, including the lowest-machine-index
    /// tie-break. Blocks until every shard has been scanned; concurrent
    /// callers serialize.
    pub(crate) fn scan(
        &self,
        shards: &[TimelineShard],
        from: Time,
        dur: Time,
        demands: &[Amount],
    ) -> (usize, Time) {
        let num_shards = shards.len();
        assert!(
            num_shards > 0 && (num_shards as u64) <= SHARD_MASK,
            "shard count {num_shards} outside the claim counter's range"
        );
        // The per-machine scans assert these; validating once up front
        // keeps worker threads panic-free on bad input (the caller's own
        // assertion fires instead).
        assert!(dur > 0.0, "job duration must be positive");
        assert!(
            demands.iter().all(|&d| d <= mris_types::CAPACITY),
            "demand exceeds machine capacity; job can never fit"
        );

        // Fast path: the caller scans shard zero inline before engaging the
        // pool. Shard zero holds the cluster's lowest machine indices, so a
        // fit at the query floor there beats any later shard's answer
        // outright (higher shards can at best tie on start and lose the
        // index tie-break) — the pool machinery is skipped entirely.
        // Placement streams probing at the clock frontier take this path
        // almost always, which keeps the pooled policy at sequential-scan
        // cost for the common case.
        let floor = from.max(0.0);
        let inline_best = AtomicU64::new(f64::INFINITY.to_bits());
        let first = shards[0].scan_bounded(from, dur, demands, floor, &inline_best);
        if first.1 <= floor || num_shards == 1 {
            return first;
        }

        let mut results = self.scratch.lock().expect("scan pool scratch lock");
        results.clear();
        results.resize(num_shards, (usize::MAX, f64::INFINITY));
        // Shard zero is pre-completed: its result seeds the shared pruning
        // bound, its slot is already written, and the claim counter starts
        // at shard one.
        results[0] = first;
        let shared = &*self.shared;
        let query = {
            let mut st = shared.state.lock().expect("scan pool state lock");
            let seq = st.seq + 1;
            st.seq = seq;
            // Reset the per-query atomics before publishing. No stale
            // scanner can race these: the previous query's claim counter is
            // exhausted (completion counted every shard), so until the
            // store below, stale claims fail on the index bound — and
            // after it, on the epoch.
            shared
                .shared_best
                .store(first.1.to_bits(), Ordering::Relaxed);
            shared.floor_shard.store(usize::MAX, Ordering::Relaxed);
            shared.shards_done.store(1, Ordering::Relaxed);
            shared
                .claim
                .store((seq << SHARD_BITS) | 1, Ordering::Relaxed);
            let query = Query {
                shards: shards.as_ptr(),
                num_shards,
                demands: demands.as_ptr(),
                num_demands: demands.len(),
                from,
                dur,
                floor: from.max(0.0),
                results: results.as_mut_ptr(),
                seq,
            };
            st.query = Some(query);
            shared.published_seq.store(seq, Ordering::Release);
            query
        };
        shared.work_cv.notify_all();

        // The caller is scanner zero: it claims shards like any worker, so
        // even a pool with no live workers completes every query.
        // SAFETY: the descriptor's pointers borrow `shards`, `demands`,
        // and `results`, all of which outlive this call; see module docs.
        unsafe { run_query(&query, shared) };

        let mut st = shared.state.lock().expect("scan pool state lock");
        while st.completed_seq < query.seq {
            st = shared.done_cv.wait(st).expect("scan pool state lock");
        }
        st.query = None;
        drop(st);
        if shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("shard scan worker panicked (see stderr for the original panic)");
        }

        let _reduce = mris_obs::span!("mris_shard_reduce_seconds");
        // In-order fold with a strict `<`: an earlier (lower-base) shard's
        // equal start wins, and within a shard `scan_bounded` already
        // returned its lexicographic minimum — together the exact
        // `(start, machine)` minimum of the sequential scan.
        let mut best = (0usize, f64::INFINITY);
        for &(m, s) in results.iter() {
            if s < best.1 {
                best = (m, s);
            }
        }
        best
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("scan pool state lock");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker body: spin briefly for the next query (placement loops issue
/// them back to back), then park on the condvar.
fn worker(shared: &Shared) {
    let mut last_seq = 0u64;
    loop {
        // Fast path: spin on the lock-free sequence mirror.
        let mut spins = 0u32;
        while shared.published_seq.load(Ordering::Acquire) == last_seq && spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        }
        let query = {
            let mut st = shared.state.lock().expect("scan pool state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    last_seq = st.seq;
                    // `None` here means the query already completed and was
                    // torn down before this worker woke; go back to waiting.
                    break st.query;
                }
                st = shared.work_cv.wait(st).expect("scan pool state lock");
            }
        };
        let Some(query) = query else { continue };
        mris_obs::counter_add("mris_shard_wakeups_total", 1);
        // SAFETY: claims are epoch-tagged, so this descriptor is only
        // dereferenced while its query is provably in flight.
        unsafe { run_query(&query, shared) };
    }
}

/// Claims and scans shards of `query` until the claim counter is exhausted
/// or the epoch moves on. Shared verbatim by workers and the caller.
///
/// # Safety
///
/// `query`'s pointers must be live whenever a claim under `query.seq`
/// succeeds — guaranteed by the caller blocking in [`ScanPool::scan`]
/// until all `num_shards` completion ticks are counted (see module docs).
unsafe fn run_query(query: &Query, shared: &Shared) {
    let shards = std::slice::from_raw_parts(query.shards, query.num_shards);
    let demands = std::slice::from_raw_parts(query.demands, query.num_demands);
    let mut claimed = 0u64;
    loop {
        // Epoch-tagged CAS claim: a stale scanner (epoch mismatch) backs
        // off without consuming an index; a fresh scanner takes the next
        // shard in order, so claim order follows shard order.
        let mut cur = shared.claim.load(Ordering::Relaxed);
        let idx = loop {
            let (epoch, idx) = (cur >> SHARD_BITS, cur & SHARD_MASK);
            if epoch != query.seq || idx as usize >= query.num_shards {
                break None;
            }
            match shared.claim.compare_exchange_weak(
                cur,
                (epoch << SHARD_BITS) | (idx + 1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break Some(idx as usize),
                Err(observed) => cur = observed,
            }
        };
        let Some(i) = idx else {
            if claimed > 1 {
                // Shards claimed beyond a scanner's first are work stolen
                // from the static split the old chunked scan would have
                // imposed.
                mris_obs::counter_add("mris_shard_steals_total", claimed - 1);
            }
            return;
        };
        claimed += 1;

        let slot = if i > shared.floor_shard.load(Ordering::Relaxed) {
            // A lower shard already fit at the floor; nothing at or above
            // this index can beat it (equal start loses the index
            // tie-break), so complete the shard without scanning.
            (usize::MAX, f64::INFINITY)
        } else {
            let scanned = catch_unwind(AssertUnwindSafe(|| {
                shards[i].scan_bounded(
                    query.from,
                    query.dur,
                    demands,
                    query.floor,
                    &shared.shared_best,
                )
            }));
            match scanned {
                Ok(r) => {
                    if r.1 <= query.floor {
                        shared.floor_shard.fetch_min(i, Ordering::Relaxed);
                    }
                    r
                }
                Err(_) => {
                    shared.panicked.store(true, Ordering::Relaxed);
                    (usize::MAX, f64::INFINITY)
                }
            }
        };
        // The slot write must happen-before the completion tick below
        // (release) so the finisher's acquire tick, and through the state
        // mutex the caller's reduce, observe it.
        *query.results.add(i) = slot;
        let done = shared.shards_done.fetch_add(1, Ordering::AcqRel) + 1;
        if done == query.num_shards {
            let mut st = shared.state.lock().expect("scan pool state lock");
            st.completed_seq = st.completed_seq.max(query.seq);
            drop(st);
            shared.done_cv.notify_all();
        }
    }
}
