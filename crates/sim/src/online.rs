//! Event-driven online simulation driver.
//!
//! Reproduces the execution model of Section 4: the simulated wall clock
//! jumps between *events* (job arrivals and completions); at every event the
//! policy inspects the pending jobs and the instantaneous cluster state and
//! may start any feasible subset immediately.

use mris_types::{ClusterSpec, Instance, JobId, Schedule, SchedulingError, Time};

use crate::precedence::PrecedenceGate;
use crate::ClusterState;

/// Static label value for the dispatcher rejection counter.
fn rejection_reason(e: &SchedulingError) -> &'static str {
    match e {
        SchedulingError::InvalidMachine { .. } => "invalid_machine",
        SchedulingError::MachineDown { .. } => "machine_down",
        SchedulingError::PlacedBeforeRelease { .. } => "before_release",
        SchedulingError::DoesNotFit { .. } => "does_not_fit",
        SchedulingError::AlreadyPlaced { .. } => "already_placed",
        SchedulingError::StrandedJobs { .. } => "stranded",
        SchedulingError::UnassignedCompletion { .. } => "unassigned_completion",
        SchedulingError::PredecessorIncomplete { .. } => "predecessor_incomplete",
        SchedulingError::UnplaceableJob { .. } => "unplaceable",
    }
}

/// The placement interface handed to an [`OnlinePolicy`] at each event.
///
/// Placements take effect immediately (`S_j = now`): capacity is consumed at
/// once, so feasibility checks for subsequent placements within the same
/// event see earlier placements.
pub struct Dispatcher<'a> {
    cluster: &'a mut ClusterState,
    schedule: &'a mut Schedule,
    instance: &'a Instance,
    now: Time,
    recorder: Option<&'a mut Vec<(JobId, u32)>>,
    gate: Option<&'a PrecedenceGate>,
}

impl<'a> Dispatcher<'a> {
    /// Builds a dispatcher for one event at `now`. Public so external
    /// drivers (the `mris-service` event loop) can commit placements
    /// through the same checked path as [`run_online`] and
    /// [`crate::run_online_chaos`].
    pub fn new(
        cluster: &'a mut ClusterState,
        schedule: &'a mut Schedule,
        instance: &'a Instance,
        now: Time,
    ) -> Self {
        Dispatcher {
            cluster,
            schedule,
            instance,
            now,
            recorder: None,
            gate: None,
        }
    }

    /// Attaches a precedence gate: placements of jobs with incomplete
    /// predecessors are rejected with
    /// [`SchedulingError::PredecessorIncomplete`]. The driver attaches the
    /// gate only for instances that carry precedence edges.
    pub fn set_gate(&mut self, gate: &'a PrecedenceGate) {
        self.gate = Some(gate);
    }

    /// Appends every successful placement of this event as `(job, machine)`
    /// to `out`, in placement order. The service's write-ahead journal uses
    /// this to capture placements without a second bookkeeping path.
    pub fn record_placements(&mut self, out: &'a mut Vec<(JobId, u32)>) {
        self.recorder = Some(out);
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The instance being scheduled. Returned at the dispatcher's own
    /// lifetime so callers can hold it across [`Dispatcher::place`] calls.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// Read access to the instantaneous cluster state.
    #[inline]
    pub fn cluster(&self) -> &ClusterState {
        self.cluster
    }

    /// Starts `job` on `machine` right now.
    ///
    /// Returns a typed [`SchedulingError`] if `machine` is out of range or
    /// currently failed, the job has not been released, does not fit on
    /// `machine`, or was already placed — all policy bugs, surfaced as
    /// errors so the caller can attribute them instead of aborting the
    /// process.
    pub fn place(&mut self, machine: usize, job: JobId) -> Result<(), SchedulingError> {
        self.place_inner(machine, job).inspect_err(|e| {
            mris_obs::counter_add_labeled(
                "mris_dispatcher_rejections_total",
                ("reason", rejection_reason(e)),
                1,
            );
        })
    }

    fn place_inner(&mut self, machine: usize, job: JobId) -> Result<(), SchedulingError> {
        if machine >= self.cluster.num_machines() {
            return Err(SchedulingError::InvalidMachine {
                machine,
                num_machines: self.cluster.num_machines(),
            });
        }
        if !self.cluster.is_up(machine) {
            return Err(SchedulingError::MachineDown { machine });
        }
        let j = self.instance.job(job);
        if j.release > self.now {
            return Err(SchedulingError::PlacedBeforeRelease {
                job,
                release: j.release,
                now: self.now,
            });
        }
        if let Some(gate) = self.gate {
            if !gate.is_ready(job) {
                let pred = gate
                    .first_incomplete_pred(job, self.instance)
                    .expect("gated job must have an incomplete predecessor");
                return Err(SchedulingError::PredecessorIncomplete { job, pred });
            }
        }
        if !self.cluster.fits(machine, &j.demands) {
            return Err(SchedulingError::DoesNotFit { job, machine });
        }
        self.schedule
            .assign(job, machine, self.now)
            .map_err(|_| SchedulingError::AlreadyPlaced { job })?;
        self.cluster.start(machine, j, self.now);
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.push((job, machine as u32));
        }
        mris_obs::counter_add("mris_dispatcher_placements_total", 1);
        Ok(())
    }
}

/// An online scheduling policy driven by [`run_online`].
///
/// The policy owns its pending-job bookkeeping: the driver announces
/// arrivals, and at every event (arrival and/or completion) asks the policy
/// to dispatch. Jobs the policy places must be removed from its own pending
/// structures.
pub trait OnlinePolicy {
    /// Called when jobs arrive (release time reached), before `dispatch` at
    /// the same event. `arrived` is ordered by release, ties by id.
    fn on_arrivals(&mut self, now: Time, arrived: &[JobId], instance: &Instance);

    /// Called at every event after completions and arrivals are applied.
    /// `freed_machines` lists machines on which a job just completed
    /// (sorted, deduplicated; empty for pure-arrival events).
    ///
    /// Placement failures from [`Dispatcher::place`] should be propagated
    /// with `?`; the driver aborts the run and surfaces the error.
    fn dispatch(
        &mut self,
        dispatcher: &mut Dispatcher<'_>,
        freed_machines: &[usize],
    ) -> Result<(), SchedulingError>;

    /// Fault hook: `machine` failed at `now` and will recover at
    /// `recover_at`; `killed` lists the jobs that were running on it (sorted
    /// by id). The driver re-releases killed jobs itself (they arrive again
    /// through [`OnlinePolicy::on_arrivals`]); this hook is for policies
    /// with *additional* per-machine state — MRIS uses it to truncate the
    /// failed machine's committed timeline and re-plan orphaned
    /// committed-but-unstarted jobs. Default: no-op, so fault-oblivious
    /// policies run unmodified under [`crate::run_online_chaos`].
    fn on_machine_failed(
        &mut self,
        _now: Time,
        _machine: usize,
        _recover_at: Time,
        _killed: &[JobId],
        _instance: &Instance,
    ) {
    }

    /// Fault hook: `machine` came back up at `now`. The driver also lists
    /// recovered machines in `freed_machines` at the same event's
    /// [`OnlinePolicy::dispatch`] call, so incremental policies re-examine
    /// them without extra work here. Default: no-op.
    fn on_machine_recovered(&mut self, _now: Time, _machine: usize, _instance: &Instance) {}

    /// The next time this policy wants a dispatch event even if no arrival,
    /// completion, or fault event occurs then. MRIS uses this to run its
    /// interval boundaries `gamma_k` as scheduled; pure event-driven
    /// policies return `None` (the default). Times at or before the current
    /// event are ignored by the driver.
    fn next_wakeup(&self) -> Option<Time> {
        None
    }

    /// Serializes the policy's replay-relevant state into `out` as a
    /// canonical byte string, returning `true` if the policy supports it.
    /// Used by the service durability layer to *verify* a restored policy
    /// against a snapshot — restore itself replays the journal from
    /// genesis, so policies without this hook (the default, returning
    /// `false`) are still fully restorable; their snapshots just cannot be
    /// cross-checked against policy internals.
    ///
    /// Canonical means: derived caches, scratch buffers, and probe-order
    /// heuristics are excluded, and unordered containers are emitted in a
    /// sorted order, so two policies with equal observable behavior encode
    /// identically.
    fn encode_durable_state(&self, _out: &mut Vec<u8>) -> bool {
        false
    }
}

/// A snapshot of the simulation taken after each event was processed,
/// delivered to the observer of [`run_online_observed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSnapshot {
    /// Event time.
    pub time: Time,
    /// Jobs currently running across the cluster.
    pub running: usize,
    /// Jobs placed so far (cumulative).
    pub placed: usize,
    /// Jobs released so far (cumulative).
    pub released: usize,
}

/// Runs `policy` over `instance` on the cluster described by `cluster` —
/// a bare machine count (the historical uniform cluster) or an explicit
/// [`ClusterSpec`] with per-machine speeds and capacities — and returns the
/// complete schedule.
///
/// Thin wrapper over the unified event-loop driver
/// ([`crate::run_driver`]) with fault-free defaults (no fault plan) — see
/// [`crate::run_driver_observed`] for the full event-loop semantics.
///
/// # Errors
///
/// Returns a [`SchedulingError`] if the policy strands jobs (leaves them
/// unplaced after the last event) or violates placement rules — see
/// [`Dispatcher::place`]. Any work-conserving policy places every job: when
/// the cluster drains, all pending jobs fit an idle machine.
pub fn run_online<P: OnlinePolicy + ?Sized>(
    instance: &Instance,
    cluster: impl Into<ClusterSpec>,
    policy: &mut P,
) -> Result<Schedule, SchedulingError> {
    run_online_observed(instance, cluster, policy, |_| {})
}

/// Like [`run_online`], additionally invoking `observer` with an
/// [`EventSnapshot`] after every processed event — for queue-dynamics
/// experiments and diagnostics.
pub fn run_online_observed<P: OnlinePolicy + ?Sized>(
    instance: &Instance,
    cluster: impl Into<ClusterSpec>,
    policy: &mut P,
    observer: impl FnMut(&EventSnapshot),
) -> Result<Schedule, SchedulingError> {
    crate::driver::run_driver_observed(
        instance,
        cluster,
        policy,
        crate::driver::RunOptions::new(),
        observer,
    )
    .map(|outcome| outcome.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    /// A trivial FIFO policy: place pending jobs in arrival order on the
    /// first machine that fits.
    struct Fifo {
        pending: Vec<JobId>,
    }

    impl OnlinePolicy for Fifo {
        fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _inst: &Instance) {
            self.pending.extend_from_slice(arrived);
        }

        fn dispatch(
            &mut self,
            d: &mut Dispatcher<'_>,
            _freed: &[usize],
        ) -> Result<(), SchedulingError> {
            let mut remaining = Vec::with_capacity(self.pending.len());
            for &job in &self.pending {
                let demands = &d.instance().job(job).demands;
                if let Some(m) = d.cluster().first_fit(demands) {
                    d.place(m, job)?;
                } else {
                    remaining.push(job);
                }
            }
            self.pending = remaining;
            Ok(())
        }
    }

    fn inst(jobs: Vec<Job>, r: usize) -> Instance {
        Instance::new(jobs, r).unwrap()
    }

    #[test]
    fn fifo_serializes_conflicting_jobs() {
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.8]),
                Job::from_fractions(JobId(1), 0.0, 3.0, 1.0, &[0.8]),
                Job::from_fractions(JobId(2), 1.0, 1.0, 1.0, &[0.1]),
            ],
            1,
        );
        let mut policy = Fifo { pending: vec![] };
        let s = run_online(&instance, 1, &mut policy).unwrap();
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().start, 0.0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 2.0);
        // Job 2 fits alongside job 0 at its arrival.
        assert_eq!(s.get(JobId(2)).unwrap().start, 1.0);
    }

    #[test]
    fn multiple_machines_used_in_order() {
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 5.0, 1.0, &[1.0]),
                Job::from_fractions(JobId(1), 0.0, 5.0, 1.0, &[1.0]),
            ],
            1,
        );
        let s = run_online(&instance, 2, &mut Fifo { pending: vec![] }).unwrap();
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().machine, 0);
        assert_eq!(s.get(JobId(1)).unwrap().machine, 1);
        assert_eq!(s.makespan(&instance), 5.0);
    }

    #[test]
    fn observer_sees_monotone_progress() {
        let instance = inst(
            (0..8)
                .map(|i| Job::from_fractions(JobId(i), (i % 3) as f64, 2.0, 1.0, &[0.6]))
                .collect(),
            1,
        );
        let mut snapshots = Vec::new();
        let s = run_online_observed(&instance, 2, &mut Fifo { pending: vec![] }, |snap| {
            snapshots.push(*snap)
        })
        .unwrap();
        s.validate(&instance).unwrap();
        assert!(!snapshots.is_empty());
        for w in snapshots.windows(2) {
            assert!(w[0].time <= w[1].time);
            assert!(w[0].placed <= w[1].placed);
            assert!(w[0].released <= w[1].released);
        }
        let last = snapshots.last().unwrap();
        assert_eq!(last.placed, instance.len());
        assert_eq!(last.released, instance.len());
        assert_eq!(last.running, 0);
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let instance = inst(vec![], 1);
        let s = run_online(&instance, 3, &mut Fifo { pending: vec![] }).unwrap();
        assert!(s.is_complete());
        assert_eq!(s.num_jobs(), 0);
    }

    #[test]
    fn premature_placement_is_a_typed_error() {
        struct Premature;
        impl OnlinePolicy for Premature {
            fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                // Job 1 is released at t = 2 but the first event is at t = 0.
                d.place(0, JobId(1))
            }
        }
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1]),
                Job::from_fractions(JobId(1), 2.0, 1.0, 1.0, &[0.1]),
            ],
            1,
        );
        let err = run_online(&instance, 1, &mut Premature).unwrap_err();
        assert_eq!(
            err,
            SchedulingError::PlacedBeforeRelease {
                job: JobId(1),
                release: 2.0,
                now: 0.0
            }
        );
    }

    #[test]
    fn overfull_placement_is_a_typed_error() {
        struct Cram;
        impl OnlinePolicy for Cram {
            fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                d.place(0, JobId(0))?;
                d.place(0, JobId(1)) // 0.7 + 0.7 > capacity
            }
        }
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.7]),
                Job::from_fractions(JobId(1), 0.0, 1.0, 1.0, &[0.7]),
            ],
            1,
        );
        let err = run_online(&instance, 1, &mut Cram).unwrap_err();
        assert_eq!(
            err,
            SchedulingError::DoesNotFit {
                job: JobId(1),
                machine: 0
            }
        );
    }

    #[test]
    fn out_of_range_machine_is_a_typed_error() {
        struct WrongMachine;
        impl OnlinePolicy for WrongMachine {
            fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                // The cluster has machines 0 and 1; machine 2 is a policy bug
                // and must surface as a typed error, not an index panic.
                d.place(2, JobId(0))
            }
        }
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1])],
            1,
        );
        let err = run_online(&instance, 2, &mut WrongMachine).unwrap_err();
        assert_eq!(
            err,
            SchedulingError::InvalidMachine {
                machine: 2,
                num_machines: 2
            }
        );
    }

    #[test]
    fn placement_on_down_machine_is_a_typed_error() {
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1])],
            1,
        );
        let mut cluster = ClusterState::new(2, 1);
        cluster.fail_machine(0);
        let mut schedule = Schedule::new(1, 2);
        let mut d = Dispatcher::new(&mut cluster, &mut schedule, &instance, 0.0);
        assert_eq!(
            d.place(0, JobId(0)).unwrap_err(),
            SchedulingError::MachineDown { machine: 0 }
        );
        // The healthy machine still accepts the job.
        d.place(1, JobId(0)).unwrap();
    }

    #[test]
    fn duplicate_placement_is_a_typed_error() {
        struct Twice;
        impl OnlinePolicy for Twice {
            fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                d.place(0, JobId(0))?;
                d.place(1, JobId(0))
            }
        }
        let instance = inst(
            vec![Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.1])],
            1,
        );
        let err = run_online(&instance, 2, &mut Twice).unwrap_err();
        assert_eq!(err, SchedulingError::AlreadyPlaced { job: JobId(0) });
    }

    #[test]
    fn stranding_jobs_is_a_typed_error() {
        struct Lazy;
        impl OnlinePolicy for Lazy {
            fn on_arrivals(&mut self, _now: Time, _arrived: &[JobId], _inst: &Instance) {}
            fn dispatch(
                &mut self,
                _d: &mut Dispatcher<'_>,
                _freed: &[usize],
            ) -> Result<(), SchedulingError> {
                Ok(())
            }
        }
        let instance = inst(
            (0..3)
                .map(|i| Job::from_fractions(JobId(i), 0.0, 1.0, 1.0, &[0.1]))
                .collect(),
            1,
        );
        let err = run_online(&instance, 1, &mut Lazy).unwrap_err();
        assert_eq!(err, SchedulingError::StrandedJobs { unplaced: 3 });
    }

    #[test]
    fn arrivals_delivered_in_release_order() {
        struct Recorder {
            seen: Vec<(Time, JobId)>,
            fifo: Fifo,
        }
        impl OnlinePolicy for Recorder {
            fn on_arrivals(&mut self, now: Time, arrived: &[JobId], inst: &Instance) {
                for &j in arrived {
                    self.seen.push((now, j));
                }
                self.fifo.on_arrivals(now, arrived, inst);
            }
            fn dispatch(
                &mut self,
                d: &mut Dispatcher<'_>,
                freed: &[usize],
            ) -> Result<(), SchedulingError> {
                self.fifo.dispatch(d, freed)
            }
        }
        let instance = inst(
            vec![
                Job::from_fractions(JobId(0), 2.0, 1.0, 1.0, &[0.1]),
                Job::from_fractions(JobId(1), 0.0, 1.0, 1.0, &[0.1]),
                Job::from_fractions(JobId(2), 2.0, 1.0, 1.0, &[0.1]),
            ],
            1,
        );
        let mut rec = Recorder {
            seen: vec![],
            fifo: Fifo { pending: vec![] },
        };
        let s = run_online(&instance, 1, &mut rec).unwrap();
        s.validate(&instance).unwrap();
        assert_eq!(
            rec.seen,
            vec![(0.0, JobId(1)), (2.0, JobId(0)), (2.0, JobId(2))]
        );
    }
}
