//! Exporters: JSONL event sink, exposition-format checker, end-of-run
//! report, and the microbench overhead gate.

use std::io::Write;

use crate::event::{Event, EventSink, FieldValue};
use crate::registry::{MetricEntry, MetricValue, MetricsRegistry};

/// Writes one JSON object per [`Event`] to the wrapped writer:
/// `{"event":"dispatch_seconds","duration_s":1.2e-5,"machine":3}`.
/// Fields are flattened into the object after the reserved keys.
pub struct JsonlEventSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> JsonlEventSink<W> {
    /// A sink writing to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlEventSink { writer }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field_json(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) if v.is_finite() => format!("{v}"),
        FieldValue::F64(_) => "null".to_string(),
        FieldValue::Str(s) => format!("\"{}\"", escape_json(s)),
        FieldValue::Bool(b) => b.to_string(),
    }
}

impl<W: Write + Send> EventSink for JsonlEventSink<W> {
    fn event(&mut self, event: &Event) {
        let mut line = format!("{{\"event\":\"{}\"", escape_json(event.name));
        if let Some(d) = event.duration_seconds {
            line.push_str(&format!(",\"duration_s\":{d:e}"));
        }
        for (key, value) in &event.fields {
            line.push_str(&format!(",\"{}\":{}", escape_json(key), field_json(value)));
        }
        line.push('}');
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// End-of-run metrics report: the registry snapshot plus JSON rendering,
/// consumed by the `obs` bench bin for `results/BENCH_obs.json`.
pub struct ObsReport {
    entries: Vec<MetricEntry>,
}

impl ObsReport {
    /// Freezes `registry` into a report.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        ObsReport {
            entries: registry.snapshot(),
        }
    }

    /// The frozen entries, sorted by `(name, label)`.
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Number of distinct metric families (unique names).
    pub fn num_families(&self) -> usize {
        let mut names: Vec<&str> = self.entries.iter().map(|e| e.0).collect();
        names.dedup();
        names.len()
    }

    /// Renders the report as one JSON object keyed by
    /// `name` or `name{label="value"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, label, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let key = match label {
                Some((k, v)) => format!("{name}{{{k}=\"{v}\"}}"),
                None => name.to_string(),
            };
            let val = match value {
                MetricValue::Counter(c) => c.to_string(),
                MetricValue::Gauge(g) if g.is_finite() => format!("{g}"),
                MetricValue::Gauge(_) => "null".to_string(),
                MetricValue::Histogram(h) => format!(
                    "{{\"count\":{},\"sum\":{:e},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    h.buckets
                        .iter()
                        .map(|(b, c)| format!("[{b:e},{c}]"))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            };
            out.push_str(&format!("\"{}\":{}", escape_json(&key), val));
        }
        out.push('}');
        out
    }
}

/// Checks `text` against the Prometheus text exposition format (0.0.4):
/// every sample belongs to a family declared by a preceding `# TYPE` line,
/// values parse as floats, counters are integral and non-negative, and
/// histogram `_bucket` series are cumulative with a terminal `le="+Inf"`
/// bucket equal to `_count`. Used by the golden test and the CI smoke gate.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // Per histogram series (full label set minus `le`): last cumulative
    // count, +Inf count, declared _count value.
    let mut hist_last: HashMap<String, f64> = HashMap::new();
    let mut hist_inf: HashMap<String, f64> = HashMap::new();
    let mut hist_count: HashMap<String, f64> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown metric kind '{kind}'"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for '{name}'"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {n}: value '{value}' is not a float"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {n}: invalid metric name '{name}'"));
        }
        // Resolve the declaring family: exact for counter/gauge, suffixed
        // for histogram children.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .or_else(|| types.contains_key(name).then_some(name));
        let family = family.ok_or_else(|| format!("line {n}: sample '{name}' has no TYPE"))?;
        match types[family].as_str() {
            "counter" if value < 0.0 || value.fract() != 0.0 => {
                return Err(format!("line {n}: counter '{name}' value {value} invalid"));
            }
            "histogram" if name.ends_with("_bucket") => {
                let labels = labels.ok_or_else(|| format!("line {n}: bucket without le"))?;
                let mut le = None;
                let mut others = Vec::new();
                for pair in labels.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {n}: malformed label '{pair}'"))?;
                    let v = v.trim_matches('"');
                    if k == "le" {
                        le = Some(v.to_string());
                    } else {
                        others.push(format!("{k}={v}"));
                    }
                }
                let le = le.ok_or_else(|| format!("line {n}: bucket without le"))?;
                let series_key = format!("{family}{{{}}}", others.join(","));
                if le == "+Inf" {
                    hist_inf.insert(series_key, value);
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("line {n}: le '{le}' is not a float"))?;
                    let last = hist_last.entry(series_key).or_insert(0.0);
                    if value < *last {
                        return Err(format!("line {n}: histogram buckets not cumulative"));
                    }
                    *last = value;
                }
            }
            "histogram" if name.ends_with("_count") => {
                let series_key = format!(
                    "{family}{{{}}}",
                    labels.map(|l| l.replace('"', "")).unwrap_or_default()
                );
                hist_count.insert(series_key, value);
            }
            _ => {}
        }
    }
    for (series, count) in &hist_count {
        match hist_inf.get(series) {
            Some(inf) if inf == count => {}
            Some(inf) => {
                return Err(format!(
                    "histogram {series}: +Inf bucket {inf} != count {count}"
                ))
            }
            None => return Err(format!("histogram {series}: missing le=\"+Inf\" bucket")),
        }
        if let Some(last) = hist_last.get(series) {
            if last > count {
                return Err(format!(
                    "histogram {series}: finite bucket {last} exceeds count {count}"
                ));
            }
        }
    }
    Ok(())
}

/// Gate for the microbench's disabled-path budget: errs when the measured
/// per-call cost exceeds `budget_ns`. Factored out of the `obs` bench bin so
/// a negative test can prove the assert bites.
pub fn check_disabled_overhead(measured_ns: f64, budget_ns: f64) -> Result<(), String> {
    if !measured_ns.is_finite() || measured_ns < 0.0 {
        return Err(format!(
            "measured overhead {measured_ns} ns/op is not a valid measurement"
        ));
    }
    if measured_ns > budget_ns {
        return Err(format!(
            "disabled-path overhead {measured_ns:.2} ns/op exceeds budget {budget_ns:.2} ns/op"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_object_per_event() {
        let mut sink = JsonlEventSink::new(Vec::new());
        sink.event(&Event {
            name: "dispatch_seconds",
            fields: vec![
                ("machine", FieldValue::U64(3)),
                ("ok", FieldValue::Bool(true)),
            ],
            duration_seconds: Some(1.5e-6),
        });
        sink.event(&Event {
            name: "note",
            fields: vec![("msg", FieldValue::Str("a\"b"))],
            duration_seconds: None,
        });
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"dispatch_seconds\",\"duration_s\":1.5e-6"));
        assert!(lines[0].contains("\"machine\":3"));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"msg\":\"a\\\"b\""));
    }

    #[test]
    fn validate_accepts_registry_output() {
        let r = MetricsRegistry::new();
        r.counter_add("mris_x_total", None, 3);
        r.counter_add("mris_y_total", Some(("solver", "dp")), 1);
        r.gauge_set("mris_eps", None, 0.5);
        r.histogram_record("mris_lat_seconds", None, 0.001);
        r.histogram_record("mris_lat_seconds", None, 3.0);
        r.histogram_record("mris_lat_seconds", Some(("k", "v")), 9e9);
        validate_exposition(&r.render_prometheus()).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_expositions() {
        assert!(validate_exposition("no_type_metric 1\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na notafloat\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na -1\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na 1.5\n").is_err());
        assert!(validate_exposition("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n").is_err());
        assert!(validate_exposition(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n"
        )
        .is_err());
        assert!(validate_exposition("# TYPE a counter\n# TYPE a counter\n").is_err());
    }

    #[test]
    fn report_renders_json() {
        let r = MetricsRegistry::new();
        r.counter_add("a_total", None, 2);
        r.histogram_record("lat_seconds", None, 0.5);
        let report = ObsReport::from_registry(&r);
        assert_eq!(report.num_families(), 2);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":2"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn overhead_gate_bites() {
        check_disabled_overhead(3.0, 15.0).unwrap();
        assert!(check_disabled_overhead(30.0, 15.0).is_err());
        assert!(check_disabled_overhead(f64::NAN, 15.0).is_err());
    }
}
