//! Zero-dependency observability layer for the MRIS scheduling stack.
//!
//! The crate provides three pieces, deliberately small enough to audit:
//!
//! * **A sharded [`MetricsRegistry`]** of counters, gauges, and log₂-bucketed
//!   histograms, keyed by `&'static str` metric names plus an optional single
//!   static label pair (enough for `{solver="cadp"}`-style families without
//!   any dynamic string allocation on the hot path).
//! * **A process-wide subscriber** ([`install`]/[`uninstall`]) holding one
//!   registry and an optional boxed [`EventSink`]. Every instrumentation
//!   entry point — the free functions [`counter_add`], [`gauge_set`],
//!   [`histogram_record`] and the [`span!`] macro — first checks a single
//!   relaxed atomic ([`enabled`]); with no subscriber installed the entire
//!   instrumented build costs one relaxed load per call site, a budget the
//!   `obs` bench bin verifies (see [`check_disabled_overhead`]).
//! * **Exporters**: a [`JsonlEventSink`] for structured span events, a
//!   Prometheus text-format snapshot ([`MetricsRegistry::render_prometheus`],
//!   format-checked by [`validate_exposition`]), and an end-of-run
//!   [`ObsReport`].
//!
//! Instrumentation is *passive by contract*: nothing in this crate feeds back
//! into scheduling decisions, so enabling a subscriber cannot change a
//! schedule (the root test-suite pins this bit-for-bit across all registered
//! algorithms).
//!
//! ```
//! use std::sync::Arc;
//! let obs = Arc::new(mris_obs::Obs::new());
//! let _g = mris_obs::install_guard(Arc::clone(&obs));
//! {
//!     let _span = mris_obs::span!("demo_seconds", machine = 3usize);
//!     mris_obs::counter_add("demo_total", 1);
//! }
//! let text = obs.registry().render_prometheus();
//! assert!(text.contains("demo_total 1"));
//! mris_obs::validate_exposition(&text).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod registry;

pub use event::{
    counter_add, counter_add_labeled, enabled, gauge_set, gauge_set_labeled, histogram_record,
    histogram_record_labeled, install, install_guard, uninstall, with, Event, EventSink,
    FieldValue, InstallGuard, Obs, SpanGuard,
};
pub use export::{check_disabled_overhead, validate_exposition, JsonlEventSink, ObsReport};
pub use registry::{HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry};
