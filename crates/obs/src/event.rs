//! Process-wide subscriber, structured events, and the [`span!`] macro.
//!
//! The fast path is the *disabled* one: every public entry point loads one
//! relaxed [`AtomicBool`] and returns. Only once [`install`] has published a
//! subscriber do calls take the `RwLock` read path into the registry/sink.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::registry::MetricsRegistry;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<Obs>>> = RwLock::new(None);

/// One typed field value on an [`Event`]. Conversions exist for the types
/// instrumentation sites actually pass, so `span!("x", machine = m)` works
/// without casts.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (times, ratios).
    F64(f64),
    /// Static string (names, verdicts).
    Str(&'static str),
    /// Boolean flag.
    Bool(bool),
}

macro_rules! field_from {
    ($t:ty, $variant:ident, $conv:expr) => {
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant($conv(v))
            }
        }
    };
}

field_from!(u64, U64, |v| v);
field_from!(u32, U64, |v| v as u64);
field_from!(usize, U64, |v| v as u64);
field_from!(i64, I64, |v| v);
field_from!(i32, I64, |v| v as i64);
field_from!(f64, F64, |v| v);
field_from!(&'static str, Str, |v| v);
field_from!(bool, Bool, |v| v);

/// A structured event: a static name, typed fields, and (for span closes)
/// the measured duration.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Static event name (by convention span names end in `_seconds`).
    pub name: &'static str,
    /// Field key/value pairs, in call-site order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Wall-clock duration for span-close events, `None` for point events.
    pub duration_seconds: Option<f64>,
}

impl Event {
    /// A point event (no duration) with no fields yet.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
            duration_seconds: None,
        }
    }

    /// Appends one field.
    pub fn push(&mut self, key: &'static str, value: FieldValue) {
        self.fields.push((key, value));
    }
}

/// Receives structured [`Event`]s from the installed subscriber.
pub trait EventSink: Send {
    /// Handles one event.
    fn event(&mut self, event: &Event);
    /// Flushes buffered output, if any.
    fn flush(&mut self) {}
}

/// The subscriber: one [`MetricsRegistry`] plus an optional event sink.
pub struct Obs {
    registry: MetricsRegistry,
    sink: Mutex<Option<Box<dyn EventSink>>>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A subscriber with an empty registry and no event sink (metrics only).
    pub fn new() -> Self {
        Obs {
            registry: MetricsRegistry::new(),
            sink: Mutex::new(None),
        }
    }

    /// A subscriber that also forwards events to `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Obs {
            registry: MetricsRegistry::new(),
            sink: Mutex::new(Some(sink)),
        }
    }

    /// The subscriber's metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Forwards `event` to the sink, if one is attached.
    pub fn emit(&self, event: &Event) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = sink.as_mut() {
            sink.event(event);
        }
    }

    /// Flushes the attached sink.
    pub fn flush(&self) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = sink.as_mut() {
            sink.flush();
        }
    }
}

/// Publishes `obs` as the process-wide subscriber. Replaces any previous one.
pub fn install(obs: Arc<Obs>) {
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(obs);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the process-wide subscriber, returning it so callers can render a
/// final report. Instrumentation reverts to the one-relaxed-load no-op path.
pub fn uninstall() -> Option<Arc<Obs>> {
    ENABLED.store(false, Ordering::Release);
    let mut slot = SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner());
    slot.take()
}

/// Whether a subscriber is installed. One relaxed load — this is the entire
/// cost of every instrumentation call in a run with observability off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` against the installed subscriber, if any.
pub fn with<R>(f: impl FnOnce(&Obs) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let slot = SUBSCRIBER.read().unwrap_or_else(|e| e.into_inner());
    slot.as_ref().map(|obs| f(obs))
}

/// RAII installer for tests and scoped runs: installs on construction,
/// uninstalls on drop. Also serializes on a process-wide lock so concurrent
/// tests cannot fight over the single subscriber slot.
pub struct InstallGuard {
    _gate: std::sync::MutexGuard<'static, ()>,
}

static TEST_GATE: Mutex<()> = Mutex::new(());

/// Installs `obs` and returns a guard that uninstalls it when dropped.
///
/// The guard holds a process-wide mutex for its lifetime, so two guards in
/// the same process serialize — exactly what concurrently-running tests
/// that each install a subscriber need.
pub fn install_guard(obs: Arc<Obs>) -> InstallGuard {
    let gate = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
    install(obs);
    InstallGuard { _gate: gate }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Adds `v` to counter `name` on the installed subscriber (no-op when none).
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().counter_add(name, None, v));
}

/// Adds `v` to counter `name{label.0=label.1}`.
#[inline]
pub fn counter_add_labeled(name: &'static str, label: (&'static str, &'static str), v: u64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().counter_add(name, Some(label), v));
}

/// Sets gauge `name` to `v`.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().gauge_set(name, None, v));
}

/// Sets gauge `name{label.0=label.1}` to `v`.
#[inline]
pub fn gauge_set_labeled(name: &'static str, label: (&'static str, &'static str), v: f64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().gauge_set(name, Some(label), v));
}

/// Records `v` into histogram `name`.
#[inline]
pub fn histogram_record(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().histogram_record(name, None, v));
}

/// Records `v` into histogram `name{label.0=label.1}`.
#[inline]
pub fn histogram_record_labeled(name: &'static str, label: (&'static str, &'static str), v: f64) {
    if !enabled() {
        return;
    }
    with(|obs| obs.registry().histogram_record(name, Some(label), v));
}

/// Guard returned by [`span!`]. While a subscriber is installed the guard
/// carries the span's start time and fields; on drop it records the duration
/// into the histogram named after the span and emits a close [`Event`] to
/// the sink. With no subscriber it is inert (and constructing it cost one
/// relaxed load).
pub struct SpanGuard {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// An inert guard — the disabled path.
    #[inline]
    pub fn disabled() -> Self {
        SpanGuard {
            name: "",
            fields: Vec::new(),
            start: None,
        }
    }

    /// A live guard; called by [`span!`] only when [`enabled`] is true.
    pub fn start(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        SpanGuard {
            name,
            fields,
            start: Some(Instant::now()),
        }
    }

    /// Appends a field to a live guard (no-op on an inert one). Called by
    /// [`span!`]; the clock has already started, so field recording time is
    /// (intentionally) inside the span.
    pub fn push_field(&mut self, key: &'static str, value: FieldValue) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let secs = start.elapsed().as_secs_f64();
            let event = Event {
                name: self.name,
                fields: std::mem::take(&mut self.fields),
                duration_seconds: Some(secs),
            };
            with(|obs| {
                obs.registry().histogram_record(self.name, None, secs);
                obs.emit(&event);
            });
        }
    }
}

#[macro_export]
#[doc(hidden)]
macro_rules! __span_fields {
    ($guard:ident $(,)?) => {};
    ($guard:ident, $key:ident = $val:expr $(, $($rest:tt)*)?) => {
        $guard.push_field(stringify!($key), $crate::FieldValue::from($val));
        $crate::__span_fields!($guard $(, $($rest)*)?);
    };
    ($guard:ident, $field:ident $(, $($rest:tt)*)?) => {
        $guard.push_field(stringify!($field), $crate::FieldValue::from($field));
        $crate::__span_fields!($guard $(, $($rest)*)?);
    };
}

/// Opens a scoped span: `let _span = span!("dispatch_seconds", machine, t);`.
///
/// Fields are either bare identifiers (the identifier doubles as the field
/// name) or `key = expr` pairs, freely mixed; they are evaluated **only when
/// a subscriber is installed**, so arbitrary expressions are free on the
/// disabled path. On scope exit the guard records the elapsed time into a
/// histogram named after the span (span names end `_seconds` by convention)
/// and emits a close event to the installed sink.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $($fields:tt)*)?) => {
        if $crate::enabled() {
            #[allow(unused_mut)]
            let mut guard = $crate::SpanGuard::start($name, ::std::vec::Vec::new());
            $($crate::__span_fields!(guard, $($fields)*);)?
            guard
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        let _gate = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        counter_add("never_total", 1);
        gauge_set("never", 1.0);
        histogram_record("never_seconds", 1.0);
        let _span = crate::span!("never_span_seconds", x = 1u64);
        assert!(with(|_| ()).is_none());
    }

    #[test]
    fn install_routes_counters_and_spans() {
        let obs = Arc::new(Obs::new());
        let guard = install_guard(Arc::clone(&obs));
        counter_add("routed_total", 2);
        counter_add_labeled("routed_labeled_total", ("k", "v"), 3);
        {
            let machine = 7usize;
            let _span = crate::span!("routed_span_seconds", machine, t = 1.5f64);
        }
        drop(guard);
        assert!(!enabled());
        assert_eq!(obs.registry().counter_value("routed_total", None), Some(2));
        assert_eq!(
            obs.registry()
                .counter_value("routed_labeled_total", Some(("k", "v"))),
            Some(3)
        );
        let text = obs.registry().render_prometheus();
        assert!(text.contains("routed_span_seconds_count 1"));
    }

    #[test]
    fn sink_receives_span_close_events() {
        struct Capture(Arc<Mutex<Vec<Event>>>);
        impl EventSink for Capture {
            fn event(&mut self, event: &Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let events = Arc::new(Mutex::new(Vec::new()));
        let obs = Arc::new(Obs::with_sink(Box::new(Capture(Arc::clone(&events)))));
        let guard = install_guard(obs);
        {
            let _span = crate::span!("captured_seconds", idx = 4usize);
        }
        drop(guard);
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "captured_seconds");
        assert_eq!(events[0].fields, vec![("idx", FieldValue::U64(4))]);
        assert!(events[0].duration_seconds.is_some());
    }
}
