//! Sharded metrics registry: counters, gauges, log₂-bucketed histograms.
//!
//! Keys are `&'static str` metric names plus an optional single static label
//! pair. Static keys make the hot path allocation-free and let the hash be a
//! cheap FNV-1a over the name bytes; sixteen mutex shards keep the parallel
//! timeline-scan threads from serializing on one lock when a subscriber is
//! installed (with no subscriber the registry is never touched at all).

use std::collections::HashMap;
use std::sync::Mutex;

/// Number of mutex shards. Power of two so the shard pick is a mask.
const SHARDS: usize = 16;

/// Number of log₂ histogram buckets.
const HIST_BUCKETS: usize = 64;

/// Bucket `i` has upper bound `2^(i - HIST_EXP_OFFSET)`: bucket 0 covers
/// everything up to ~9.1e-13 (comfortably below one nanosecond in seconds)
/// and bucket 63 tops out at ~8.4e6.
const HIST_EXP_OFFSET: i32 = 40;

/// A metric identity: static name plus at most one static label pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MetricKey {
    name: &'static str,
    label: Option<(&'static str, &'static str)>,
}

/// FNV-1a over the metric name (labels of one family land in the same shard
/// only by coincidence, which is fine — shard choice is a throughput knob,
/// not a correctness one).
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

/// Index of the log₂ bucket for `v`. Non-positive and NaN values collapse
/// into bucket 0; values past the top bound clamp into the overflow bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let e = (v.log2().ceil() + HIST_EXP_OFFSET as f64).clamp(0.0, (HIST_BUCKETS - 1) as f64);
    e as usize
}

/// Upper bound of bucket `i`.
fn bucket_bound(i: usize) -> f64 {
    ((i as i32 - HIST_EXP_OFFSET) as f64).exp2()
}

/// Live histogram state: per-bucket counts plus running sum/count.
#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; HIST_BUCKETS],
    sum: f64,
    count: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            sum: 0.0,
            count: 0,
        }
    }

    fn record(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum += v;
        self.count += 1;
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Hist>),
}

/// One registry entry: metric name, optional static label pair, value.
pub type MetricEntry = (
    &'static str,
    Option<(&'static str, &'static str)>,
    MetricValue,
);

/// Point-in-time value of one metric, as returned by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram: cumulative `(upper_bound, count)` pairs for every
/// non-empty bucket below the overflow bucket, plus total `count`/`sum`
/// (the `+Inf` bucket is implicit — it always equals `count`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Cumulative bucket counts, ascending by bound.
    pub buckets: Vec<(f64, u64)>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl Hist {
    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        // The overflow bucket has no honest finite bound; it is represented
        // by the implicit +Inf bucket in the snapshot and the rendering.
        for i in 0..HIST_BUCKETS - 1 {
            if self.buckets[i] > 0 {
                cum += self.buckets[i];
                buckets.push((bucket_bound(i), cum));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count,
            sum: self.sum,
        }
    }
}

/// A sharded registry of counters, gauges, and histograms keyed by static
/// names. All methods take `&self`; interior mutability is per-shard.
pub struct MetricsRegistry {
    shards: [Mutex<HashMap<MetricKey, Metric>>; SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn update(&self, key: MetricKey, f: impl FnOnce(&mut Metric), init: impl FnOnce() -> Metric) {
        let mut shard = self.shards[shard_of(key.name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        f(shard.entry(key).or_insert_with(init));
    }

    /// Adds `v` to the counter `name`. A type clash with an existing gauge or
    /// histogram of the same name is a bug at the call site; it is
    /// debug-asserted and otherwise ignored.
    pub fn counter_add(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        v: u64,
    ) {
        self.update(
            MetricKey { name, label },
            |m| {
                if let Metric::Counter(c) = m {
                    *c += v;
                } else {
                    debug_assert!(false, "metric {name} is not a counter");
                }
            },
            || Metric::Counter(0),
        );
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        v: f64,
    ) {
        self.update(
            MetricKey { name, label },
            |m| {
                if let Metric::Gauge(g) = m {
                    *g = v;
                } else {
                    debug_assert!(false, "metric {name} is not a gauge");
                }
            },
            || Metric::Gauge(v),
        );
    }

    /// Records `v` into the histogram `name`.
    pub fn histogram_record(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
        v: f64,
    ) {
        self.update(
            MetricKey { name, label },
            |m| {
                if let Metric::Histogram(h) = m {
                    h.record(v);
                } else {
                    debug_assert!(false, "metric {name} is not a histogram");
                }
            },
            || Metric::Histogram(Box::new(Hist::new())),
        );
    }

    /// All metrics, sorted by `(name, label)` for deterministic output.
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (key, metric) in shard.iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                out.push((key.name, key.label, value));
            }
        }
        out.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        out
    }

    /// Looks up a counter's current value (testing / report convenience).
    pub fn counter_value(
        &self,
        name: &'static str,
        label: Option<(&'static str, &'static str)>,
    ) -> Option<u64> {
        let shard = self.shards[shard_of(name)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match shard.get(&MetricKey { name, label }) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per family followed by its
    /// samples; histograms expand into cumulative `_bucket{le=...}` samples
    /// plus `_sum` and `_count`. Output is deterministic (sorted by name,
    /// then label).
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (name, label, value) in &snapshot {
            if last_name != Some(name) {
                let kind = match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = Some(name);
            }
            let label_str = |extra: Option<(&str, String)>| -> String {
                let mut parts = Vec::new();
                if let Some((k, v)) = label {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if let Some((k, v)) = extra {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name}{} {c}\n", label_str(None)));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name}{} {g}\n", label_str(None)));
                }
                MetricValue::Histogram(h) => {
                    for (bound, cum) in &h.buckets {
                        out.push_str(&format!(
                            "{name}_bucket{} {cum}\n",
                            label_str(Some(("le", format!("{bound:e}"))))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        label_str(Some(("le", "+Inf".to_string()))),
                        h.count
                    ));
                    out.push_str(&format!("{name}_sum{} {}\n", label_str(None), h.sum));
                    out.push_str(&format!("{name}_count{} {}\n", label_str(None), h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label() {
        let r = MetricsRegistry::new();
        r.counter_add("solves_total", Some(("solver", "cadp")), 2);
        r.counter_add("solves_total", Some(("solver", "cadp")), 3);
        r.counter_add("solves_total", Some(("solver", "dp")), 1);
        assert_eq!(
            r.counter_value("solves_total", Some(("solver", "cadp"))),
            Some(5)
        );
        assert_eq!(
            r.counter_value("solves_total", Some(("solver", "dp"))),
            Some(1)
        );
        assert_eq!(r.counter_value("solves_total", None), None);
    }

    #[test]
    fn gauge_takes_last_value() {
        let r = MetricsRegistry::new();
        r.gauge_set("eps", None, 0.5);
        r.gauge_set("eps", None, 0.25);
        match &r.snapshot()[0].2 {
            MetricValue::Gauge(g) => assert_eq!(*g, 0.25),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let r = MetricsRegistry::new();
        for v in [0.5, 0.5, 2.0, 1e9] {
            r.histogram_record("lat", None, v);
        }
        let snap = match &r.snapshot()[0].2 {
            MetricValue::Histogram(h) => h.clone(),
            other => panic!("expected histogram, got {other:?}"),
        };
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 1e9 - 3.0).abs() < 1e-6);
        // 0.5s bucket (bound 0.5) holds two, 2.0 lands at bound 2.0; the 1e9
        // overflow lives only in the implicit +Inf bucket.
        assert_eq!(snap.buckets, vec![(0.5, 2), (2.0, 3)]);
    }

    #[test]
    fn bucket_index_clamps_degenerate_values() {
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        assert!(bucket_bound(bucket_index(1e-9)) >= 1e-9);
    }

    #[test]
    fn render_is_deterministic_and_grouped() {
        let r = MetricsRegistry::new();
        r.counter_add("b_total", None, 1);
        r.counter_add("a_total", Some(("k", "y")), 1);
        r.counter_add("a_total", Some(("k", "x")), 1);
        let text = r.render_prometheus();
        let idx_a = text.find("# TYPE a_total").unwrap();
        let idx_b = text.find("# TYPE b_total").unwrap();
        assert!(idx_a < idx_b);
        assert!(text.find("k=\"x\"").unwrap() < text.find("k=\"y\"").unwrap());
        assert_eq!(text.matches("# TYPE a_total").count(), 1);
    }
}
