//! Machine specifications for heterogeneous clusters.
//!
//! The paper's model (and the original API surface of this workspace)
//! assumes `M` *identical* machines: unit speed, [`CAPACITY`] per resource.
//! [`MachineSpec`] and [`ClusterSpec`] generalize that to the related /
//! restricted-capacity machine models of Gupta–Kumar–Singla (bag-of-tasks
//! on related machines): machine `m` runs every job at `speed_m`, so a job
//! with nominal processing time `p_j` occupies `p_j / speed_m` wall time,
//! and fit checks compare demands against `m`'s own per-resource capacity
//! instead of the global [`CAPACITY`].
//!
//! `ClusterSpec::uniform(n)` is the drop-in replacement for a bare
//! `num_machines: usize` (there is a `From<usize>` impl, so call sites that
//! pass an integer keep compiling) and is **bit-identical** to the
//! pre-heterogeneity behavior: unit speed divides every duration exactly
//! (`p / 1.0 == p` in IEEE-754), and the capacity comparisons are the same
//! integer comparisons as before.

use crate::resource::{amount_from_fraction, Amount, DemandVec, CAPACITY};
use crate::Time;

/// One machine's speed and per-resource capacity.
///
/// An **empty** `capacities` vector means "full [`CAPACITY`] in every
/// resource" — the uniform default — so a spec does not need to know the
/// instance's resource dimension up front.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Relative speed `s_m > 0`. A job with nominal processing time `p_j`
    /// runs for `p_j / s_m` wall time on this machine. The reference
    /// (uniform) machine has speed `1.0`.
    pub speed: f64,
    /// Per-resource capacity in fixed-point ticks, each in `(0, CAPACITY]`.
    /// Empty means full capacity for every resource.
    pub capacities: DemandVec,
}

impl MachineSpec {
    /// The reference machine: unit speed, full capacity everywhere.
    pub fn unit() -> Self {
        MachineSpec {
            speed: 1.0,
            capacities: Box::new([]),
        }
    }

    /// A machine with relative speed `speed` and full capacities.
    ///
    /// # Panics
    ///
    /// If `speed` is not finite and positive.
    pub fn with_speed(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "machine speed must be finite and positive, got {speed}"
        );
        MachineSpec {
            speed,
            capacities: Box::new([]),
        }
    }

    /// A machine with `speed` and per-resource capacities given as
    /// fractions of the reference capacity (each in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// If `speed` is invalid or any fraction is outside `(0, 1]`.
    pub fn from_fractions(speed: f64, capacity_fractions: &[f64]) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "machine speed must be finite and positive, got {speed}"
        );
        let capacities: DemandVec = capacity_fractions
            .iter()
            .map(|&f| {
                assert!(
                    f.is_finite() && f > 0.0 && f <= 1.0,
                    "machine capacity fraction must be in (0, 1], got {f}"
                );
                amount_from_fraction(f)
            })
            .collect();
        assert!(
            capacities.iter().all(|&c| c > 0 && c <= CAPACITY),
            "machine capacity must round into (0, CAPACITY]"
        );
        MachineSpec { speed, capacities }
    }

    /// This machine's capacity for resource `r` in fixed-point ticks.
    #[inline]
    pub fn capacity(&self, r: usize) -> Amount {
        if self.capacities.is_empty() {
            CAPACITY
        } else {
            self.capacities[r]
        }
    }

    /// Whether this is the reference machine: unit speed, full capacity.
    #[inline]
    pub fn is_unit(&self) -> bool {
        self.speed.to_bits() == 1.0_f64.to_bits()
            && self.capacities.iter().all(|&c| c == CAPACITY)
    }

    /// Wall time this machine needs for nominal processing time `p`.
    /// Exact (`p / 1.0 == p`) for the reference machine.
    #[inline]
    pub fn effective_time(&self, p: Time) -> Time {
        p / self.speed
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::unit()
    }
}

/// A validated machine table: the cluster the schedulers run against.
///
/// Replaces the bare `num_machines: usize` parameter across the simulation
/// and scheduler APIs. `From<usize>` builds the uniform cluster, so
/// functions taking `impl Into<ClusterSpec>` accept plain machine counts
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    machines: Vec<MachineSpec>,
    /// Cached: every machine is the reference machine. Lets hot paths skip
    /// per-machine scaling and preserves bit-identity with the
    /// pre-heterogeneity code by construction.
    uniform: bool,
}

impl ClusterSpec {
    /// `n` identical reference machines — bit-identical to the historical
    /// `num_machines: usize` behavior.
    ///
    /// # Panics
    ///
    /// If `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one machine");
        ClusterSpec {
            machines: vec![MachineSpec::unit(); n],
            uniform: true,
        }
    }

    /// Wraps an explicit machine table.
    ///
    /// # Panics
    ///
    /// If `machines` is empty, any speed is invalid, or any capacity is
    /// outside `(0, CAPACITY]`.
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        assert!(!machines.is_empty(), "a cluster needs at least one machine");
        for (m, spec) in machines.iter().enumerate() {
            assert!(
                spec.speed.is_finite() && spec.speed > 0.0,
                "machine {m}: speed must be finite and positive, got {}",
                spec.speed
            );
            assert!(
                spec.capacities.iter().all(|&c| c > 0 && c <= CAPACITY),
                "machine {m}: capacities must lie in (0, CAPACITY]"
            );
        }
        let uniform = machines.iter().all(MachineSpec::is_unit);
        ClusterSpec { machines, uniform }
    }

    /// `n` machines with the given relative speeds cycling over `speeds`
    /// (the related-machines model; capacities stay full).
    pub fn related(n: usize, speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "need at least one speed");
        ClusterSpec::new(
            (0..n)
                .map(|m| MachineSpec::with_speed(speeds[m % speeds.len()]))
                .collect(),
        )
    }

    /// Number of machines `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines (never true for a validated spec).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machine table.
    #[inline]
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Machine `m`'s spec.
    #[inline]
    pub fn machine(&self, m: usize) -> &MachineSpec {
        &self.machines[m]
    }

    /// Machine `m`'s relative speed.
    #[inline]
    pub fn speed(&self, m: usize) -> f64 {
        self.machines[m].speed
    }

    /// Machine `m`'s capacity for resource `r` in fixed-point ticks.
    #[inline]
    pub fn capacity(&self, m: usize, r: usize) -> Amount {
        self.machines[m].capacity(r)
    }

    /// Machine `m`'s capacity vector, materialized to `num_resources`.
    pub fn capacity_vec(&self, m: usize, num_resources: usize) -> DemandVec {
        (0..num_resources).map(|r| self.capacity(m, r)).collect()
    }

    /// Whether every machine is the reference machine. Uniform clusters are
    /// guaranteed bit-identical to the pre-heterogeneity code paths.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// Wall time machine `m` needs for nominal processing time `p`.
    #[inline]
    pub fn effective_time(&self, m: usize, p: Time) -> Time {
        p / self.machines[m].speed
    }

    /// Appends a canonical encoding to `out` **only when non-uniform**, so
    /// durable fingerprints of uniform clusters are unchanged from before
    /// heterogeneity existed. Layout: machine count, then per machine the
    /// speed bits and a length-prefixed capacity list.
    pub fn durable_bytes_if_nonuniform(&self, out: &mut Vec<u8>) {
        if self.uniform {
            return;
        }
        out.extend_from_slice(&(self.machines.len() as u64).to_le_bytes());
        for m in &self.machines {
            out.extend_from_slice(&m.speed.to_bits().to_le_bytes());
            out.extend_from_slice(&(m.capacities.len() as u64).to_le_bytes());
            for &c in m.capacities.iter() {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
}

impl From<usize> for ClusterSpec {
    fn from(n: usize) -> Self {
        ClusterSpec::uniform(n)
    }
}

impl From<&ClusterSpec> for ClusterSpec {
    fn from(spec: &ClusterSpec) -> Self {
        spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_unit_machines() {
        let spec = ClusterSpec::uniform(3);
        assert_eq!(spec.len(), 3);
        assert!(spec.is_uniform());
        assert_eq!(spec.capacity(1, 7), CAPACITY);
        assert_eq!(spec.speed(2), 1.0);
        // Unit speed divides exactly: bit-identity with the uniform path.
        let p = 3.7612;
        assert_eq!(spec.effective_time(0, p).to_bits(), p.to_bits());
    }

    #[test]
    fn from_usize_is_uniform() {
        let spec: ClusterSpec = 4.into();
        assert!(spec.is_uniform());
        assert_eq!(spec.len(), 4);
    }

    #[test]
    fn related_cycles_speeds() {
        let spec = ClusterSpec::related(4, &[1.0, 2.0]);
        assert!(!spec.is_uniform());
        assert_eq!(spec.speed(0), 1.0);
        assert_eq!(spec.speed(1), 2.0);
        assert_eq!(spec.speed(3), 2.0);
        assert_eq!(spec.effective_time(1, 3.0), 1.5);
    }

    #[test]
    fn capacity_fractions_convert() {
        let m = MachineSpec::from_fractions(1.5, &[0.5, 1.0]);
        assert_eq!(m.capacity(0), CAPACITY / 2);
        assert_eq!(m.capacity(1), CAPACITY);
        assert!(!m.is_unit());
        let spec = ClusterSpec::new(vec![MachineSpec::unit(), m]);
        assert!(!spec.is_uniform());
        assert_eq!(spec.capacity(0, 0), CAPACITY);
        assert_eq!(spec.capacity(1, 0), CAPACITY / 2);
        assert_eq!(*spec.capacity_vec(1, 2), [CAPACITY / 2, CAPACITY]);
    }

    #[test]
    fn durable_bytes_empty_for_uniform() {
        let mut out = Vec::new();
        ClusterSpec::uniform(8).durable_bytes_if_nonuniform(&mut out);
        assert!(out.is_empty());
        ClusterSpec::related(2, &[2.0]).durable_bytes_if_nonuniform(&mut out);
        assert!(!out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_rejected() {
        ClusterSpec::uniform(0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_speed_rejected() {
        MachineSpec::with_speed(0.0);
    }
}
