//! Tenant identity for the multi-tenant service front door.
//!
//! A *tenant* is an admission-control principal: a named share of the
//! service's queue and demand budget. Tenancy is deliberately thin at the
//! type level — a `TenantId` is just an index into the service's configured
//! tenant table — so that the single-tenant in-process path pays nothing
//! for it (tenant 0 is the implicit default everywhere).

/// Identifies a tenant by its index in the service's tenant table.
///
/// Tenant 0 is the default tenant: a service configured with no explicit
/// tenants runs every submission as tenant 0 and skips all per-tenant
/// accounting, which keeps the PR 8 single-tenant byte streams (journal,
/// snapshot, durable state) unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit default tenant used by the single-tenant path.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The tenant's index in the configured tenant table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant {}", self.0)
    }
}

impl From<u32> for TenantId {
    fn from(v: u32) -> Self {
        TenantId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_tenant_zero() {
        assert_eq!(TenantId::default(), TenantId::DEFAULT);
        assert_eq!(TenantId::DEFAULT.index(), 0);
        assert_eq!(TenantId::from(3).to_string(), "tenant 3");
    }
}
