//! Jobs: the unit of work being scheduled.

use crate::resource::{fraction, Amount, DemandVec};
use crate::Time;

/// Identifies a job within its [`Instance`](crate::Instance): the index of
/// the job in the instance's job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The job's index into [`Instance::jobs`](crate::Instance::jobs).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A non-preemptible job, following Section 3 of the paper.
///
/// After [`Instance::normalize`](crate::Instance::normalize), `proc_time >= 1`
/// and every demand is at most [`CAPACITY`](crate::CAPACITY) (i.e. `<= 1.0` as
/// a fraction of a machine's per-resource capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The job's identifier (its index within the owning instance).
    pub id: JobId,
    /// Release time `r_j`: the job is unknown to the scheduler before this
    /// instant, and `S_j >= r_j` must hold.
    pub release: Time,
    /// Processing time `p_j > 0`. Completion is `C_j = S_j + p_j`.
    pub proc_time: Time,
    /// Weight `w_j >= 0` in the average weighted completion time objective.
    pub weight: f64,
    /// Fixed-point demand `d_{jl}` for each resource `l`, each `<= CAPACITY`.
    pub demands: DemandVec,
}

impl Job {
    /// Builds a job from fractional demands in `[0, 1]`.
    ///
    /// ```
    /// use mris_types::{Job, JobId};
    /// let j = Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.5, 0.25]);
    /// assert_eq!(j.proc_time, 2.0);
    /// assert!((j.total_demand_frac() - 0.75).abs() < 1e-9);
    /// ```
    pub fn from_fractions(
        id: JobId,
        release: Time,
        proc_time: Time,
        weight: f64,
        demand_fractions: &[f64],
    ) -> Self {
        Job {
            id,
            release,
            proc_time,
            weight,
            demands: demand_fractions
                .iter()
                .map(|&f| crate::resource::amount_from_fraction(f))
                .collect(),
        }
    }

    /// Total demand `u_j = sum_l d_{jl}` in fixed-point ticks.
    #[inline]
    pub fn total_demand(&self) -> Amount {
        self.demands.iter().sum()
    }

    /// Total demand `u_j` as a fraction (so `u_j <= R`).
    #[inline]
    pub fn total_demand_frac(&self) -> f64 {
        fraction(self.total_demand())
    }

    /// The job's volume `v_j = p_j * u_j` (Section 5.1), the quantity MRIS
    /// uses as the knapsack item size.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.proc_time * self.total_demand_frac()
    }

    /// Whether this job could ever run alone on an empty machine with `R`
    /// unit-capacity resources: every per-resource demand is at most the
    /// capacity.
    pub fn fits_empty_machine(&self) -> bool {
        self.demands.iter().all(|&d| d <= crate::CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CAPACITY;

    fn job(demands: &[f64], p: f64) -> Job {
        Job::from_fractions(JobId(7), 1.0, p, 2.0, demands)
    }

    #[test]
    fn volume_is_proc_times_total_demand() {
        let j = job(&[0.5, 0.5, 1.0], 3.0);
        assert!((j.volume() - 6.0).abs() < 1e-9);
        assert!((j.total_demand_frac() - 2.0).abs() < 1e-9);
        assert_eq!(j.total_demand(), 2 * CAPACITY);
    }

    #[test]
    fn zero_demand_job_has_zero_volume() {
        let j = job(&[0.0, 0.0], 5.0);
        assert_eq!(j.volume(), 0.0);
    }

    #[test]
    fn fits_empty_machine_checks_each_resource() {
        assert!(job(&[1.0, 0.3], 1.0).fits_empty_machine());
        let mut j = job(&[1.0, 0.3], 1.0);
        j.demands[0] = CAPACITY + 1;
        assert!(!j.fits_empty_machine());
    }

    #[test]
    fn job_id_display_and_index() {
        assert_eq!(JobId(42).to_string(), "j42");
        assert_eq!(JobId(42).index(), 42);
    }
}
