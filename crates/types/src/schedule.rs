//! Schedules: assignments of jobs to machines and start times, plus the
//! paper's objective functions and an exact feasibility validator.

use crate::instance::Instance;
use crate::job::JobId;
use crate::machine::ClusterSpec;
use crate::Time;

/// One job's placement: which machine it runs on and when it starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The placed job.
    pub job: JobId,
    /// Machine index in `0..M`.
    pub machine: usize,
    /// Start time `S_j`. The job occupies its demands during `[start, start + p_j)`.
    pub start: Time,
}

/// A schedule produced by some algorithm: a (possibly partial) map from jobs
/// to [`Assignment`]s on `M` machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    slots: Vec<Option<(u32, Time)>>,
    num_machines: usize,
}

/// A schedule failed validation (see [`Schedule::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A job was assigned twice.
    DoubleAssignment(JobId),
    /// The machine index is out of `0..M`.
    MachineOutOfRange {
        /// Offending job.
        job: JobId,
        /// The invalid machine index.
        machine: usize,
    },
    /// A job id outside the schedule's job range was assigned.
    UnknownJob(JobId),
    /// A job has no assignment but validation requires a complete schedule.
    Unassigned(JobId),
    /// A job starts before its release time (violates the online model).
    StartsBeforeRelease {
        /// Offending job.
        job: JobId,
        /// The assigned start.
        start: Time,
        /// The job's release time.
        release: Time,
    },
    /// A job's start time is not finite.
    NonFiniteStart(JobId),
    /// The summed demand of concurrently running jobs exceeds a machine's
    /// capacity for some resource at some instant.
    CapacityExceeded {
        /// Machine on which the violation occurs.
        machine: usize,
        /// Resource index that overflows.
        resource: usize,
        /// An instant at which the violation holds.
        at: Time,
    },
    /// A job starts before one of its precedence predecessors completes.
    PrecedenceViolated {
        /// The predecessor whose completion was not awaited.
        pred: JobId,
        /// The prematurely started successor.
        succ: JobId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::DoubleAssignment(j) => write!(f, "job {j} assigned twice"),
            ScheduleError::MachineOutOfRange { job, machine } => {
                write!(f, "job {job} assigned to out-of-range machine {machine}")
            }
            ScheduleError::UnknownJob(j) => write!(f, "job {j} is not part of this schedule"),
            ScheduleError::Unassigned(j) => write!(f, "job {j} was never assigned"),
            ScheduleError::StartsBeforeRelease {
                job,
                start,
                release,
            } => write!(
                f,
                "job {job} starts at {start} before its release {release}"
            ),
            ScheduleError::NonFiniteStart(j) => write!(f, "job {j} has a non-finite start time"),
            ScheduleError::CapacityExceeded {
                machine,
                resource,
                at,
            } => write!(
                f,
                "machine {machine} exceeds capacity of resource {resource} at time {at}"
            ),
            ScheduleError::PrecedenceViolated { pred, succ } => {
                write!(f, "job {succ} starts before its predecessor {pred} completes")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// An empty schedule for `num_jobs` jobs on `num_machines` machines.
    pub fn new(num_jobs: usize, num_machines: usize) -> Self {
        Schedule {
            slots: vec![None; num_jobs],
            num_machines,
        }
    }

    /// Number of machines `M` this schedule targets.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Number of jobs the schedule covers (assigned or not).
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.slots.len()
    }

    /// Records an assignment. Fails if the job is out of range, already
    /// assigned, or the machine index is invalid.
    pub fn assign(&mut self, job: JobId, machine: usize, start: Time) -> Result<(), ScheduleError> {
        if machine >= self.num_machines {
            return Err(ScheduleError::MachineOutOfRange { job, machine });
        }
        let slot = self
            .slots
            .get_mut(job.index())
            .ok_or(ScheduleError::UnknownJob(job))?;
        if slot.is_some() {
            return Err(ScheduleError::DoubleAssignment(job));
        }
        *slot = Some((machine as u32, start));
        Ok(())
    }

    /// Removes and returns `job`'s assignment, if it had one. Used by the
    /// fault-injection layer when a machine failure kills an in-flight job
    /// and it must be re-released as a fresh arrival. Out-of-range jobs
    /// return `None`.
    pub fn unassign(&mut self, job: JobId) -> Option<Assignment> {
        self.slots
            .get_mut(job.index())
            .and_then(Option::take)
            .map(|(machine, start)| Assignment {
                job,
                machine: machine as usize,
                start,
            })
    }

    /// The assignment of `job`, if it has one.
    #[inline]
    pub fn get(&self, job: JobId) -> Option<Assignment> {
        self.slots
            .get(job.index())
            .copied()
            .flatten()
            .map(|(machine, start)| Assignment {
                job,
                machine: machine as usize,
                start,
            })
    }

    /// Whether every job has been assigned.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Iterates over all recorded assignments, in job-id order.
    pub fn assignments(&self) -> impl Iterator<Item = Assignment> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.map(|(machine, start)| Assignment {
                job: JobId(i as u32),
                machine: machine as usize,
                start,
            })
        })
    }

    /// `C_j = S_j + p_j` for an assigned job.
    pub fn completion_time(&self, instance: &Instance, job: JobId) -> Option<Time> {
        self.get(job).map(|a| a.start + instance.job(job).proc_time)
    }

    /// `C_j = S_j + p_j / s_m` for an assigned job on a heterogeneous
    /// cluster: the job's wall-clock completion given its machine's speed.
    /// Identical to [`completion_time`](Self::completion_time) on uniform
    /// clusters.
    pub fn completion_time_on(
        &self,
        instance: &Instance,
        spec: &ClusterSpec,
        job: JobId,
    ) -> Option<Time> {
        self.get(job)
            .map(|a| a.start + spec.effective_time(a.machine, instance.job(job).proc_time))
    }

    /// Total weighted completion time `sum_j w_j C_j` over assigned jobs.
    pub fn total_weighted_completion(&self, instance: &Instance) -> f64 {
        self.assignments()
            .map(|a| {
                let j = instance.job(a.job);
                j.weight * (a.start + j.proc_time)
            })
            .sum()
    }

    /// Total weighted completion time with per-machine speeds applied
    /// (`C_j = S_j + p_j / s_m`). Bit-identical to
    /// [`total_weighted_completion`](Self::total_weighted_completion) on
    /// uniform clusters (`p / 1.0 == p` exactly).
    pub fn total_weighted_completion_on(&self, instance: &Instance, spec: &ClusterSpec) -> f64 {
        self.assignments()
            .map(|a| {
                let j = instance.job(a.job);
                j.weight * (a.start + spec.effective_time(a.machine, j.proc_time))
            })
            .sum()
    }

    /// Average weighted completion time on a heterogeneous cluster.
    pub fn awct_on(&self, instance: &Instance, spec: &ClusterSpec) -> f64 {
        if instance.is_empty() {
            return 0.0;
        }
        self.total_weighted_completion_on(instance, spec) / instance.len() as f64
    }

    /// Average weighted completion time `(1/N) sum_j w_j C_j` — the paper's
    /// primary objective. `N` is the instance size, so a partial schedule is
    /// penalized by its missing jobs contributing zero (callers should
    /// validate completeness first).
    pub fn awct(&self, instance: &Instance) -> f64 {
        if instance.is_empty() {
            return 0.0;
        }
        self.total_weighted_completion(instance) / instance.len() as f64
    }

    /// Makespan `max_j C_j` over assigned jobs (0 if nothing is assigned).
    pub fn makespan(&self, instance: &Instance) -> Time {
        self.assignments()
            .map(|a| a.start + instance.job(a.job).proc_time)
            .fold(0.0, f64::max)
    }

    /// Queuing delay `S_j - r_j` per assigned job, in job-id order
    /// (Section 7.5.2).
    pub fn queuing_delays(&self, instance: &Instance) -> Vec<Time> {
        self.assignments()
            .map(|a| a.start - instance.job(a.job).release)
            .collect()
    }

    /// Total weighted flow time `sum_j w_j (C_j - r_j)` over assigned jobs —
    /// the related objective several of the paper's cited works optimize.
    pub fn total_weighted_flow(&self, instance: &Instance) -> f64 {
        self.assignments()
            .map(|a| {
                let j = instance.job(a.job);
                j.weight * (a.start + j.proc_time - j.release)
            })
            .sum()
    }

    /// Average weighted flow time `(1/N) sum_j w_j (C_j - r_j)`.
    pub fn awft(&self, instance: &Instance) -> f64 {
        if instance.is_empty() {
            return 0.0;
        }
        self.total_weighted_flow(instance) / instance.len() as f64
    }

    /// Per-machine busy volume: for each machine, the total volume
    /// `sum v_j` of jobs assigned to it. Useful for load-balance
    /// diagnostics.
    pub fn machine_volumes(&self, instance: &Instance) -> Vec<f64> {
        let mut volumes = vec![0.0; self.num_machines];
        for a in self.assignments() {
            volumes[a.machine] += instance.job(a.job).volume();
        }
        volumes
    }

    /// Time-averaged utilization of one resource on one machine over
    /// `[0, horizon)`: total demand-time of assigned jobs divided by
    /// `horizon` (a fraction of capacity; can exceed what a snapshot shows
    /// but never 1.0 for feasible schedules with `horizon >=` makespan).
    pub fn resource_utilization(
        &self,
        instance: &Instance,
        machine: usize,
        resource: usize,
        horizon: Time,
    ) -> f64 {
        assert!(horizon > 0.0);
        let demand_time: f64 = self
            .assignments()
            .filter(|a| a.machine == machine)
            .map(|a| {
                let j = instance.job(a.job);
                crate::resource::fraction(j.demands[resource]) * j.proc_time
            })
            .sum();
        demand_time / horizon
    }

    /// Validates the schedule against the paper's model:
    ///
    /// 1. every job is assigned exactly once to a machine in `0..M`,
    /// 2. `S_j >= r_j` with finite starts,
    /// 3. at every instant, the fixed-point demand sum of concurrently
    ///    running jobs on each machine is at most
    ///    [`CAPACITY`](crate::CAPACITY) per resource,
    /// 4. no job starts before any of its precedence predecessors
    ///    completes.
    ///
    /// The capacity check sweeps each machine's start/end events with exact
    /// integer sums; a job ending at `t` frees capacity for one starting at
    /// `t` (occupancy intervals are half-open `[S_j, C_j)`).
    pub fn validate(&self, instance: &Instance) -> Result<(), ScheduleError> {
        self.validate_impl(instance, None)
    }

    /// [`validate`](Self::validate) against a heterogeneous cluster: job
    /// occupancy is `[S_j, S_j + p_j / s_m)` and per-machine capacities
    /// replace the global one. Identical to `validate` for uniform specs.
    pub fn validate_on(&self, instance: &Instance, spec: &ClusterSpec) -> Result<(), ScheduleError> {
        assert_eq!(
            spec.len(),
            self.num_machines,
            "cluster spec machine count must match the schedule"
        );
        self.validate_impl(instance, Some(spec))
    }

    fn validate_impl(
        &self,
        instance: &Instance,
        spec: Option<&ClusterSpec>,
    ) -> Result<(), ScheduleError> {
        let num_resources = instance.num_resources();
        let eff = |machine: usize, p: Time| match spec {
            Some(s) => s.effective_time(machine, p),
            None => p,
        };
        // Per-job checks and event collection per machine.
        let mut events: Vec<Vec<(Time, bool, JobId)>> = vec![Vec::new(); self.num_machines];
        for (i, slot) in self.slots.iter().enumerate() {
            let job = JobId(i as u32);
            let Some((machine, start)) = *slot else {
                return Err(ScheduleError::Unassigned(job));
            };
            if !start.is_finite() {
                return Err(ScheduleError::NonFiniteStart(job));
            }
            let release = instance.job(job).release;
            if start < release {
                return Err(ScheduleError::StartsBeforeRelease {
                    job,
                    start,
                    release,
                });
            }
            let m = machine as usize;
            let end = start + eff(m, instance.job(job).proc_time);
            events[m].push((start, true, job));
            events[m].push((end, false, job));
        }
        // Precedence: a successor may not start before its predecessor's
        // (machine-speed-adjusted) completion.
        for &(pred, succ) in instance.edges() {
            let pa = self.get(pred).ok_or(ScheduleError::Unassigned(pred))?;
            let sa = self.get(succ).ok_or(ScheduleError::Unassigned(succ))?;
            let pred_end = pa.start + eff(pa.machine, instance.job(pred).proc_time);
            if sa.start < pred_end {
                return Err(ScheduleError::PrecedenceViolated { pred, succ });
            }
        }
        // Sweep each machine; ends sort before starts at equal times.
        let mut usage = vec![0u64; num_resources];
        for (machine, mut evs) in events.into_iter().enumerate() {
            usage.fill(0);
            evs.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            // After the sort, at equal time all `false` (end) events precede
            // `true` (start) events because `false < true`.
            for (at, is_start, job) in evs {
                let demands = &instance.job(job).demands;
                if is_start {
                    for (l, (u, d)) in usage.iter_mut().zip(demands.iter()).enumerate() {
                        *u += d;
                        let cap = match spec {
                            Some(s) => s.capacity(machine, l),
                            None => crate::resource::CAPACITY,
                        };
                        if *u > cap {
                            return Err(ScheduleError::CapacityExceeded {
                                machine,
                                resource: l,
                                at,
                            });
                        }
                    }
                } else {
                    for (u, d) in usage.iter_mut().zip(demands.iter()) {
                        *u -= d;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn instance() -> Instance {
        Instance::new(
            vec![
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.6]),
                Job::from_fractions(JobId(1), 0.0, 2.0, 3.0, &[0.6]),
                Job::from_fractions(JobId(2), 1.0, 1.0, 1.0, &[0.4]),
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn assign_and_metrics() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 2.0).unwrap();
        s.assign(JobId(2), 0, 1.0).unwrap();
        assert!(s.is_complete());
        s.validate(&inst).unwrap();
        // C = [2, 4, 2]; weights [1, 3, 1] => total = 2 + 12 + 2 = 16.
        assert!((s.total_weighted_completion(&inst) - 16.0).abs() < 1e-9);
        assert!((s.awct(&inst) - 16.0 / 3.0).abs() < 1e-9);
        assert!((s.makespan(&inst) - 4.0).abs() < 1e-9);
        assert_eq!(s.queuing_delays(&inst), vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn flow_time_and_machine_stats() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 2.0).unwrap();
        s.assign(JobId(2), 0, 1.0).unwrap();
        // Flows: C - r = [2-0, 4-0, 2-1]; weights [1, 3, 1] -> 2 + 12 + 1.
        assert!((s.total_weighted_flow(&inst) - 15.0).abs() < 1e-9);
        assert!((s.awft(&inst) - 5.0).abs() < 1e-9);
        // Volumes: 2*0.6 + 2*0.6 + 1*0.4 = 2.8 on machine 0.
        let volumes = s.machine_volumes(&inst);
        assert_eq!(volumes.len(), 1);
        assert!((volumes[0] - 2.8).abs() < 1e-9);
        // Utilization of resource 0 over [0, 4): 2.8 / 4.
        assert!((s.resource_utilization(&inst, 0, 0, 4.0) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_capacity_violation() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        // Jobs 0 and 1 overlap: 0.6 + 0.6 > 1.
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 1.0).unwrap();
        s.assign(JobId(2), 0, 4.0).unwrap();
        assert!(matches!(
            s.validate(&inst).unwrap_err(),
            ScheduleError::CapacityExceeded {
                machine: 0,
                resource: 0,
                ..
            }
        ));
    }

    #[test]
    fn touching_intervals_are_feasible() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        // Job 1 starts exactly when job 0 ends: feasible (half-open).
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 2.0).unwrap();
        s.assign(JobId(2), 0, 1.0).unwrap();
        s.validate(&inst).unwrap();
    }

    #[test]
    fn validate_rejects_early_start() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 0, 2.0).unwrap();
        s.assign(JobId(2), 0, 0.5).unwrap(); // release is 1.0
        assert!(matches!(
            s.validate(&inst).unwrap_err(),
            ScheduleError::StartsBeforeRelease { .. }
        ));
    }

    #[test]
    fn validate_rejects_incomplete() {
        let inst = instance();
        let mut s = Schedule::new(3, 1);
        s.assign(JobId(0), 0, 0.0).unwrap();
        assert!(matches!(
            s.validate(&inst).unwrap_err(),
            ScheduleError::Unassigned(JobId(1))
        ));
    }

    #[test]
    fn assign_errors() {
        let mut s = Schedule::new(2, 2);
        s.assign(JobId(0), 0, 0.0).unwrap();
        assert!(matches!(
            s.assign(JobId(0), 1, 1.0).unwrap_err(),
            ScheduleError::DoubleAssignment(JobId(0))
        ));
        assert!(matches!(
            s.assign(JobId(1), 2, 0.0).unwrap_err(),
            ScheduleError::MachineOutOfRange { machine: 2, .. }
        ));
        assert!(matches!(
            s.assign(JobId(9), 0, 0.0).unwrap_err(),
            ScheduleError::UnknownJob(JobId(9))
        ));
    }

    #[test]
    fn unassign_frees_the_slot() {
        let mut s = Schedule::new(2, 2);
        s.assign(JobId(0), 1, 3.0).unwrap();
        let a = s.unassign(JobId(0)).unwrap();
        assert_eq!((a.machine, a.start), (1, 3.0));
        assert!(s.get(JobId(0)).is_none());
        assert!(s.unassign(JobId(0)).is_none());
        assert!(s.unassign(JobId(7)).is_none());
        // The slot is reusable after unassignment.
        s.assign(JobId(0), 0, 5.0).unwrap();
        assert_eq!(s.get(JobId(0)).unwrap().start, 5.0);
    }

    #[test]
    fn multi_machine_validation_is_independent() {
        let inst = Instance::new(
            vec![
                Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.9]),
                Job::from_fractions(JobId(1), 0.0, 2.0, 1.0, &[0.9]),
            ],
            1,
        )
        .unwrap();
        let mut s = Schedule::new(2, 2);
        s.assign(JobId(0), 0, 0.0).unwrap();
        s.assign(JobId(1), 1, 0.0).unwrap();
        s.validate(&inst).unwrap();
    }
}
