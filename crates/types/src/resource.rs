//! Fixed-point resource amounts.
//!
//! Machine capacity for every resource is normalized to one in the paper
//! (`U_l = 1`). We represent one unit of capacity as [`CAPACITY`] fixed-point
//! ticks so that demand sums are exact integers: a machine is feasible at an
//! instant iff the `u64` sum of active demands is `<= CAPACITY` per resource.

/// A fixed-point quantity of one resource. `CAPACITY` ticks equal the full
/// (normalized) capacity of a machine for that resource.
pub type Amount = u64;

/// Fixed-point ticks corresponding to a machine's full capacity (1.0) for a
/// single resource.
///
/// One tick is therefore a demand of `1e-6`, fine enough to represent any
/// demand fraction a real trace reports, while `u64` sums of up to ~1.8e13
/// simultaneous full-capacity jobs can never overflow.
pub const CAPACITY: Amount = 1_000_000;

/// A job's demand vector: one [`Amount`] per resource type, each `<= CAPACITY`.
pub type DemandVec = Box<[Amount]>;

/// Converts a fractional demand in `[0, 1]` to fixed-point ticks (rounded to
/// nearest). Values outside `[0, 1]` are clamped; NaN maps to zero.
///
/// ```
/// use mris_types::{amount_from_fraction, CAPACITY};
/// assert_eq!(amount_from_fraction(1.0), CAPACITY);
/// assert_eq!(amount_from_fraction(0.25), CAPACITY / 4);
/// assert_eq!(amount_from_fraction(-3.0), 0);
/// ```
pub fn amount_from_fraction(f: f64) -> Amount {
    if f.is_nan() {
        return 0;
    }
    let clamped = f.clamp(0.0, 1.0);
    (clamped * CAPACITY as f64).round() as Amount
}

/// Converts fixed-point ticks back to a fraction of machine capacity.
///
/// ```
/// use mris_types::{fraction, CAPACITY};
/// assert_eq!(fraction(CAPACITY / 2), 0.5);
/// ```
pub fn fraction(a: Amount) -> f64 {
    a as f64 / CAPACITY as f64
}

/// Adds `demand` into `usage` element-wise, saturating at `u64::MAX`.
///
/// Panics in debug builds if the slices have different lengths.
pub fn saturating_add_demands(usage: &mut [Amount], demand: &[Amount]) {
    debug_assert_eq!(usage.len(), demand.len());
    for (u, d) in usage.iter_mut().zip(demand) {
        *u = u.saturating_add(*d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_roundtrip_on_grid() {
        for pct in 0..=100 {
            let f = pct as f64 / 100.0;
            let a = amount_from_fraction(f);
            assert!((fraction(a) - f).abs() < 1e-9, "pct={pct}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(amount_from_fraction(2.0), CAPACITY);
        assert_eq!(amount_from_fraction(-0.5), 0);
        assert_eq!(amount_from_fraction(f64::NAN), 0);
    }

    #[test]
    fn add_demands_accumulates() {
        let mut usage = vec![0, 10, CAPACITY];
        saturating_add_demands(&mut usage, &[5, 5, 5]);
        assert_eq!(usage, vec![5, 15, CAPACITY + 5]);
    }

    #[test]
    fn add_demands_saturates() {
        let mut usage = vec![u64::MAX - 1];
        saturating_add_demands(&mut usage, &[10]);
        assert_eq!(usage, vec![u64::MAX]);
    }
}
