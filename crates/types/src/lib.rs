//! Core types for the MRIS multi-resource scheduling library.
//!
//! This crate defines the shared vocabulary used by every other crate in the
//! workspace, reproducing the model of *Fan & Liang, "Online Non-preemptive
//! Multi-Resource Scheduling for Weighted Completion Time on Multiple
//! Machines", ICPP 2024*:
//!
//! * [`Job`] — a job `j` with release time `r_j`, processing time `p_j`,
//!   weight `w_j`, and a demand `d_{jl}` for each of `R` resources.
//! * [`Instance`] — a validated collection of jobs sharing one resource
//!   dimensionality, with the paper's normalization (`p_j >= 1`,
//!   `d_{jl} <= 1`, unit machine capacity).
//! * [`Schedule`] — an assignment of `(machine, start time)` to jobs, with
//!   exact feasibility validation and the paper's objective functions
//!   (average weighted completion time, makespan, queuing delay).
//!
//! # Fixed-point resource arithmetic
//!
//! Resource demands are stored as fixed-point [`Amount`] values with machine
//! capacity [`CAPACITY`] (= 1.0). Summing `f64` fractions accumulates error
//! that can flip feasibility checks near a full machine; integer amounts make
//! "does this set of jobs fit?" exact. Times remain `f64` ([`Time`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
mod instance;
mod job;
mod machine;
mod resource;
mod schedule;
mod tenant;

pub use error::{
    closest_match, AdmissionError, CodecError, ConfigError, DurabilityError, InstanceError,
    NetError, RegistryError, RestoreError, SchedulingError, TenantQuotaKind, WorkloadFeature,
};
pub use fault::{FaultEvent, FaultTarget, RestartSemantics};
pub use instance::{Instance, InstanceBuilder, InstanceStats};
pub use job::{Job, JobId};
pub use machine::{ClusterSpec, MachineSpec};
pub use resource::{
    amount_from_fraction, fraction, saturating_add_demands, Amount, DemandVec, CAPACITY,
};
pub use schedule::{Assignment, Schedule, ScheduleError};
pub use tenant::TenantId;

/// Simulation time. Normalized instances measure time in multiples of the
/// minimum processing time, so `p_j >= 1.0` for every job.
pub type Time = f64;

/// Commonly used items, for glob-importing in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        Amount, Assignment, ClusterSpec, Instance, InstanceBuilder, InstanceError, Job, JobId,
        MachineSpec, Schedule, SchedulingError, Time, CAPACITY,
    };
}
