//! Problem instances: a validated job collection plus the resource dimension.

use crate::error::InstanceError;
use crate::job::{Job, JobId};
use crate::resource::CAPACITY;
use crate::Time;

/// A problem instance `I`: `N` jobs over `R` resource types (Section 3),
/// optionally related by precedence constraints.
///
/// Invariants, enforced at construction:
/// * every job's demand vector has length `R >= 1` and each entry is at most
///   [`CAPACITY`],
/// * processing times are positive and finite, releases non-negative and
///   finite, weights non-negative and finite,
/// * `jobs[i].id == JobId(i)`,
/// * precedence edges reference existing jobs and form a DAG (no cycles,
///   no self-edges).
///
/// An edge `(pred, succ)` means `succ` may not *start* before `pred` has
/// *completed* — the non-clairvoyant precedence model of
/// Garg–Gupta–Kumar–Singla. Edge-free instances (every constructor that
/// predates precedence) behave exactly as before.
///
/// The paper additionally normalizes `p_j >= 1` by dividing all times by the
/// minimum processing time; [`Instance::normalize`] performs that step.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    jobs: Vec<Job>,
    num_resources: usize,
    /// Precedence edges `(pred, succ)`, sorted and deduplicated. Empty for
    /// independent-job instances.
    edges: Vec<(JobId, JobId)>,
    /// CSR successor adjacency: `succ_list[succ_index[j]..succ_index[j+1]]`
    /// are the jobs gated on `j`'s completion. Empty when `edges` is.
    succ_index: Vec<u32>,
    succ_list: Vec<JobId>,
    /// In-degree (number of predecessors) per job. Empty when `edges` is.
    pred_count: Vec<u32>,
}

impl Instance {
    /// Validates and wraps a job collection of independent jobs (no
    /// precedence edges). Thin wrapper over [`Instance::with_edges`]; for
    /// incremental construction prefer [`InstanceBuilder`].
    pub fn new(jobs: Vec<Job>, num_resources: usize) -> Result<Self, InstanceError> {
        Instance::with_edges(jobs, num_resources, Vec::new())
    }

    /// Validates and wraps a job collection with precedence edges
    /// `(pred, succ)`: `succ` may not start before `pred` completes. The
    /// edge set must be a DAG over the job ids; duplicates are merged.
    pub fn with_edges(
        jobs: Vec<Job>,
        num_resources: usize,
        mut edges: Vec<(JobId, JobId)>,
    ) -> Result<Self, InstanceError> {
        if num_resources == 0 {
            return Err(InstanceError::NoResources);
        }
        for (index, job) in jobs.iter().enumerate() {
            if job.id.index() != index {
                return Err(InstanceError::MisnumberedJob {
                    index,
                    found: job.id,
                });
            }
            if job.demands.len() != num_resources {
                return Err(InstanceError::DemandDimensionMismatch {
                    job: job.id,
                    expected: num_resources,
                    found: job.demands.len(),
                });
            }
            if let Some(resource) = job.demands.iter().position(|&d| d > CAPACITY) {
                return Err(InstanceError::DemandExceedsCapacity {
                    job: job.id,
                    resource,
                });
            }
            if !(job.proc_time.is_finite() && job.proc_time > 0.0) {
                return Err(InstanceError::InvalidProcTime {
                    job: job.id,
                    value: job.proc_time,
                });
            }
            if !(job.release.is_finite() && job.release >= 0.0) {
                return Err(InstanceError::InvalidRelease {
                    job: job.id,
                    value: job.release,
                });
            }
            if !(job.weight.is_finite() && job.weight >= 0.0) {
                return Err(InstanceError::InvalidWeight {
                    job: job.id,
                    value: job.weight,
                });
            }
        }

        // Precedence validation: endpoints in range, no self-edges, acyclic.
        let n = jobs.len();
        for &(pred, succ) in &edges {
            if pred.index() >= n || succ.index() >= n || pred == succ {
                return Err(InstanceError::PrecedenceOutOfRange {
                    pred,
                    succ,
                    num_jobs: n,
                });
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let (succ_index, succ_list, pred_count) = if edges.is_empty() {
            (Vec::new(), Vec::new(), Vec::new())
        } else {
            let mut succ_index = vec![0u32; n + 1];
            for &(pred, _) in &edges {
                succ_index[pred.index() + 1] += 1;
            }
            for i in 0..n {
                succ_index[i + 1] += succ_index[i];
            }
            // Edges are sorted by (pred, succ), so pushing in order fills
            // each job's CSR slice in ascending successor order.
            let mut succ_list = Vec::with_capacity(edges.len());
            let mut pred_count = vec![0u32; n];
            for &(_, succ) in &edges {
                succ_list.push(succ);
                pred_count[succ.index()] += 1;
            }
            // Kahn's algorithm: if a topological order does not cover every
            // job, the leftover jobs lie on (or behind) a cycle; report the
            // smallest one for a deterministic error.
            let mut indegree = pred_count.clone();
            let mut stack: Vec<usize> = (0..n).filter(|&j| indegree[j] == 0).collect();
            let mut visited = 0usize;
            while let Some(j) = stack.pop() {
                visited += 1;
                let lo = succ_index[j] as usize;
                let hi = succ_index[j + 1] as usize;
                for &s in &succ_list[lo..hi] {
                    indegree[s.index()] -= 1;
                    if indegree[s.index()] == 0 {
                        stack.push(s.index());
                    }
                }
            }
            if visited != n {
                let job = (0..n)
                    .find(|&j| indegree[j] > 0)
                    .map(|j| JobId(j as u32))
                    .expect("unvisited job must have positive residual indegree");
                return Err(InstanceError::PrecedenceCycle { job });
            }
            (succ_index, succ_list, pred_count)
        };

        Ok(Instance {
            jobs,
            num_resources,
            edges,
            succ_index,
            succ_list,
            pred_count,
        })
    }

    /// Convenience constructor renumbering job ids to match their index, for
    /// generators that assemble jobs out of order.
    pub fn from_unnumbered(
        mut jobs: Vec<Job>,
        num_resources: usize,
    ) -> Result<Self, InstanceError> {
        for (index, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(index as u32);
        }
        Instance::new(jobs, num_resources)
    }

    /// Whether the instance carries any precedence edges.
    #[inline]
    pub fn has_precedence(&self) -> bool {
        !self.edges.is_empty()
    }

    /// The precedence edges `(pred, succ)`, sorted and deduplicated.
    #[inline]
    pub fn edges(&self) -> &[(JobId, JobId)] {
        &self.edges
    }

    /// Jobs gated on `job`'s completion, in ascending id order.
    #[inline]
    pub fn successors(&self, job: JobId) -> &[JobId] {
        if self.edges.is_empty() {
            return &[];
        }
        let lo = self.succ_index[job.index()] as usize;
        let hi = self.succ_index[job.index() + 1] as usize;
        &self.succ_list[lo..hi]
    }

    /// Number of predecessors `job` waits on (0 for edge-free instances).
    #[inline]
    pub fn num_predecessors(&self, job: JobId) -> u32 {
        if self.edges.is_empty() {
            0
        } else {
            self.pred_count[job.index()]
        }
    }

    /// Predecessors of `job`: the jobs whose completion gates its start.
    /// Linear in the edge count; intended for validation, not hot paths.
    pub fn predecessors(&self, job: JobId) -> impl Iterator<Item = JobId> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, s)| s == job)
            .map(|&(p, _)| p)
    }

    /// The jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up a job by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Number of jobs `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of resource types `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Total volume `V_I = sum_j v_j` (Section 5.1).
    pub fn total_volume(&self) -> f64 {
        self.jobs.iter().map(Job::volume).sum()
    }

    /// Total weight `sum_j w_j`.
    pub fn total_weight(&self) -> f64 {
        self.jobs.iter().map(|j| j.weight).sum()
    }

    /// Divides all times (releases and processing times) by the minimum
    /// processing time, so the result satisfies the paper's `p_j >= 1`
    /// convention. Returns the normalized instance and the scale factor
    /// (the original minimum processing time); multiply normalized times by
    /// the scale to recover original units. An empty instance is returned
    /// unchanged with scale 1.
    pub fn normalize(&self) -> (Instance, f64) {
        let Some(min_p) = self
            .jobs
            .iter()
            .map(|j| j.proc_time)
            .min_by(|a, b| a.total_cmp(b))
        else {
            return (self.clone(), 1.0);
        };
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                release: j.release / min_p,
                proc_time: j.proc_time / min_p,
                ..j.clone()
            })
            .collect();
        (
            Instance {
                jobs,
                num_resources: self.num_resources,
                edges: self.edges.clone(),
                succ_index: self.succ_index.clone(),
                succ_list: self.succ_list.clone(),
                pred_count: self.pred_count.clone(),
            },
            min_p,
        )
    }

    /// Multiplies `job`'s weight by `factor`, preserving the instance
    /// invariants (the result must stay finite and non-negative). Used by
    /// the weight-aging restart semantics of the fault model.
    ///
    /// # Panics
    ///
    /// If the scaled weight would be negative, infinite, or NaN.
    pub fn scale_weight(&mut self, job: JobId, factor: f64) {
        let w = &mut self.jobs[job.index()].weight;
        let scaled = *w * factor;
        assert!(
            scaled.is_finite() && scaled >= 0.0,
            "scaling weight of {job} by {factor} yields invalid weight {scaled}"
        );
        *w = scaled;
    }

    /// Summary statistics used for reporting and for sizing MRIS's interval
    /// sequence.
    pub fn stats(&self) -> InstanceStats {
        let mut s = InstanceStats {
            num_jobs: self.jobs.len(),
            num_resources: self.num_resources,
            min_proc: f64::INFINITY,
            max_proc: 0.0,
            max_release: 0.0,
            total_volume: 0.0,
            total_weight: 0.0,
        };
        for j in &self.jobs {
            s.min_proc = s.min_proc.min(j.proc_time);
            s.max_proc = s.max_proc.max(j.proc_time);
            s.max_release = s.max_release.max(j.release);
            s.total_volume += j.volume();
            s.total_weight += j.weight;
        }
        if self.jobs.is_empty() {
            s.min_proc = 0.0;
        }
        s
    }

    /// Lower bound on the optimal makespan of this instance from Lemma 6.2
    /// combined with trivial bounds: `max(V_I/(R*M), max_j p_j, max_j r_j + p_j ... )`.
    ///
    /// Specifically returns `max( V_I / (R*M), max_j (r_j + p_j) )`, both of
    /// which every feasible schedule on `machines` machines must meet.
    pub fn makespan_lower_bound(&self, machines: usize) -> Time {
        let volume_bound = self.total_volume() / (self.num_resources * machines) as f64;
        let job_bound = self
            .jobs
            .iter()
            .map(|j| j.release + j.proc_time)
            .fold(0.0_f64, f64::max);
        volume_bound.max(job_bound)
    }
}

/// Incremental [`Instance`] construction without the mis-numbered-`JobId`
/// footgun of [`Instance::new`]: [`push_job`](InstanceBuilder::push_job)
/// assigns ids in order and returns them, [`edge`](InstanceBuilder::edge)
/// records precedence constraints, and all validation happens in
/// [`build`](InstanceBuilder::build).
///
/// ```
/// use mris_types::InstanceBuilder;
/// let mut b = InstanceBuilder::new(2);
/// let extract = b.push_job(0.0, 2.0, 1.0, &[0.5, 0.1]);
/// let transform = b.push_job(0.0, 3.0, 2.0, &[0.3, 0.6]);
/// let load = b.push_job(1.0, 1.0, 4.0, &[0.8, 0.2]);
/// b.edge(extract, transform);
/// b.edge(transform, load);
/// let instance = b.build().unwrap();
/// assert!(instance.has_precedence());
/// assert_eq!(instance.successors(extract), &[transform]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    jobs: Vec<Job>,
    edges: Vec<(JobId, JobId)>,
    num_resources: usize,
}

impl InstanceBuilder {
    /// A builder for instances over `num_resources` resource types.
    pub fn new(num_resources: usize) -> Self {
        InstanceBuilder {
            jobs: Vec::new(),
            edges: Vec::new(),
            num_resources,
        }
    }

    /// Appends a job with fractional demands and returns its assigned id.
    pub fn push_job(
        &mut self,
        release: Time,
        proc_time: Time,
        weight: f64,
        demand_fractions: &[f64],
    ) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(Job::from_fractions(
            id,
            release,
            proc_time,
            weight,
            demand_fractions,
        ));
        id
    }

    /// Appends an already-built [`Job`], renumbering its id to the next
    /// index, and returns the assigned id.
    pub fn push(&mut self, mut job: Job) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        job.id = id;
        self.jobs.push(job);
        id
    }

    /// Records the precedence constraint "`succ` may not start before
    /// `pred` completes". Endpoints are validated in [`build`](Self::build).
    pub fn edge(&mut self, pred: JobId, succ: JobId) -> &mut Self {
        self.edges.push((pred, succ));
        self
    }

    /// Number of jobs pushed so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been pushed.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Validates everything pushed so far into an [`Instance`].
    pub fn build(self) -> Result<Instance, InstanceError> {
        Instance::with_edges(self.jobs, self.num_resources, self.edges)
    }
}

/// Aggregate statistics of an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceStats {
    /// Number of jobs `N`.
    pub num_jobs: usize,
    /// Number of resources `R`.
    pub num_resources: usize,
    /// Minimum processing time (0 for an empty instance).
    pub min_proc: Time,
    /// Maximum processing time.
    pub max_proc: Time,
    /// Latest release time.
    pub max_release: Time,
    /// Total volume `V_I`.
    pub total_volume: f64,
    /// Total weight.
    pub total_weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_jobs() -> Vec<Job> {
        vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5, 0.5]),
            Job::from_fractions(JobId(1), 3.0, 2.0, 2.0, &[1.0, 0.0]),
        ]
    }

    #[test]
    fn construct_and_query() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 2);
        assert!((inst.total_volume() - (4.0 + 2.0)).abs() < 1e-9);
        assert!((inst.total_weight() - 3.0).abs() < 1e-9);
        assert_eq!(inst.job(JobId(1)).weight, 2.0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut jobs = simple_jobs();
        jobs[1].demands = Box::new([crate::CAPACITY]);
        let err = Instance::new(jobs, 2).unwrap_err();
        assert!(matches!(err, InstanceError::DemandDimensionMismatch { .. }));
    }

    #[test]
    fn rejects_oversized_demand() {
        let mut jobs = simple_jobs();
        jobs[0].demands[1] = crate::CAPACITY + 1;
        let err = Instance::new(jobs, 2).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::DemandExceedsCapacity { resource: 1, .. }
        ));
    }

    #[test]
    fn rejects_bad_scalars() {
        for (mutate, pattern) in [
            (
                Box::new(|j: &mut Job| j.proc_time = 0.0) as Box<dyn Fn(&mut Job)>,
                "proc",
            ),
            (Box::new(|j: &mut Job| j.release = -1.0), "release"),
            (Box::new(|j: &mut Job| j.weight = f64::NAN), "weight"),
        ] {
            let mut jobs = simple_jobs();
            mutate(&mut jobs[0]);
            let err = Instance::new(jobs, 2).unwrap_err();
            match pattern {
                "proc" => assert!(matches!(err, InstanceError::InvalidProcTime { .. })),
                "release" => assert!(matches!(err, InstanceError::InvalidRelease { .. })),
                _ => assert!(matches!(err, InstanceError::InvalidWeight { .. })),
            }
        }
    }

    #[test]
    fn rejects_misnumbered_ids() {
        let mut jobs = simple_jobs();
        jobs[0].id = JobId(5);
        assert!(matches!(
            Instance::new(jobs, 2).unwrap_err(),
            InstanceError::MisnumberedJob { index: 0, .. }
        ));
    }

    #[test]
    fn from_unnumbered_renumbers() {
        let mut jobs = simple_jobs();
        jobs[0].id = JobId(9);
        jobs[1].id = JobId(9);
        let inst = Instance::from_unnumbered(jobs, 2).unwrap();
        assert_eq!(inst.jobs()[0].id, JobId(0));
        assert_eq!(inst.jobs()[1].id, JobId(1));
    }

    #[test]
    fn normalize_scales_times() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        let (norm, scale) = inst.normalize();
        assert_eq!(scale, 2.0);
        assert_eq!(norm.jobs()[0].proc_time, 2.0);
        assert_eq!(norm.jobs()[1].proc_time, 1.0);
        assert_eq!(norm.jobs()[1].release, 1.5);
        // Demands and weights untouched.
        assert_eq!(norm.jobs()[0].demands, inst.jobs()[0].demands);
        let stats = norm.stats();
        assert_eq!(stats.min_proc, 1.0);
    }

    #[test]
    fn normalize_empty_is_identity() {
        let inst = Instance::new(vec![], 3).unwrap();
        let (norm, scale) = inst.normalize();
        assert_eq!(scale, 1.0);
        assert!(norm.is_empty());
    }

    #[test]
    fn makespan_lower_bound_combines_volume_and_job_bounds() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        // V = 6, R = 2, M = 1 -> volume bound 3; job bound max(4, 5) = 5.
        assert!((inst.makespan_lower_bound(1) - 5.0).abs() < 1e-9);
        // With a huge volume job dominating:
        let jobs = vec![Job::from_fractions(JobId(0), 0.0, 10.0, 1.0, &[1.0, 1.0])];
        let inst = Instance::new(jobs, 2).unwrap();
        assert!((inst.makespan_lower_bound(1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scale_weight_multiplies_in_place() {
        let mut inst = Instance::new(simple_jobs(), 2).unwrap();
        inst.scale_weight(JobId(1), 2.5);
        assert!((inst.job(JobId(1)).weight - 5.0).abs() < 1e-12);
        inst.scale_weight(JobId(1), 0.0);
        assert_eq!(inst.job(JobId(1)).weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn scale_weight_rejects_nan() {
        let mut inst = Instance::new(simple_jobs(), 2).unwrap();
        inst.scale_weight(JobId(0), f64::NAN);
    }

    #[test]
    fn zero_resources_rejected() {
        assert_eq!(
            Instance::new(vec![], 0).unwrap_err(),
            InstanceError::NoResources
        );
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let mut b = InstanceBuilder::new(1);
        let a = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let c = b.push(Job::from_fractions(JobId(99), 1.0, 2.0, 2.0, &[0.25]));
        assert_eq!((a, c), (JobId(0), JobId(1)));
        assert_eq!(b.len(), 2);
        let inst = b.build().unwrap();
        assert_eq!(inst.job(c).id, JobId(1));
        assert!(!inst.has_precedence());
        assert_eq!(inst.num_predecessors(c), 0);
        assert_eq!(inst.successors(a), &[]);
    }

    #[test]
    fn edges_build_csr_adjacency() {
        let mut b = InstanceBuilder::new(1);
        let j0 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let j1 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let j2 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        b.edge(j0, j1).edge(j0, j2).edge(j1, j2).edge(j0, j2); // dup merged
        let inst = b.build().unwrap();
        assert!(inst.has_precedence());
        assert_eq!(inst.edges(), &[(j0, j1), (j0, j2), (j1, j2)]);
        assert_eq!(inst.successors(j0), &[j1, j2]);
        assert_eq!(inst.successors(j1), &[j2]);
        assert_eq!(inst.successors(j2), &[]);
        assert_eq!(inst.num_predecessors(j0), 0);
        assert_eq!(inst.num_predecessors(j2), 2);
        assert_eq!(inst.predecessors(j2).collect::<Vec<_>>(), vec![j0, j1]);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = InstanceBuilder::new(1);
        let j0 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let j1 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        let j2 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        b.edge(j0, j1).edge(j1, j2).edge(j2, j0);
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::PrecedenceCycle { .. }
        ));
    }

    #[test]
    fn self_edge_and_range_rejected() {
        let mut b = InstanceBuilder::new(1);
        let j0 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        b.edge(j0, j0);
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::PrecedenceOutOfRange { .. }
        ));
        let mut b = InstanceBuilder::new(1);
        let j0 = b.push_job(0.0, 1.0, 1.0, &[0.5]);
        b.edge(j0, JobId(9));
        assert!(matches!(
            b.build().unwrap_err(),
            InstanceError::PrecedenceOutOfRange { num_jobs: 1, .. }
        ));
    }

    #[test]
    fn normalize_preserves_edges() {
        let mut b = InstanceBuilder::new(1);
        let j0 = b.push_job(0.0, 2.0, 1.0, &[0.5]);
        let j1 = b.push_job(0.0, 4.0, 1.0, &[0.5]);
        b.edge(j0, j1);
        let inst = b.build().unwrap();
        let (norm, scale) = inst.normalize();
        assert_eq!(scale, 2.0);
        assert_eq!(norm.edges(), inst.edges());
        assert_eq!(norm.successors(j0), &[j1]);
    }
}
