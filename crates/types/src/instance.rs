//! Problem instances: a validated job collection plus the resource dimension.

use crate::error::InstanceError;
use crate::job::{Job, JobId};
use crate::resource::CAPACITY;
use crate::Time;

/// A problem instance `I`: `N` jobs over `R` resource types (Section 3).
///
/// Invariants, enforced at construction:
/// * every job's demand vector has length `R >= 1` and each entry is at most
///   [`CAPACITY`],
/// * processing times are positive and finite, releases non-negative and
///   finite, weights non-negative and finite,
/// * `jobs[i].id == JobId(i)`.
///
/// The paper additionally normalizes `p_j >= 1` by dividing all times by the
/// minimum processing time; [`Instance::normalize`] performs that step.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    jobs: Vec<Job>,
    num_resources: usize,
}

impl Instance {
    /// Validates and wraps a job collection.
    pub fn new(jobs: Vec<Job>, num_resources: usize) -> Result<Self, InstanceError> {
        if num_resources == 0 {
            return Err(InstanceError::NoResources);
        }
        for (index, job) in jobs.iter().enumerate() {
            if job.id.index() != index {
                return Err(InstanceError::MisnumberedJob {
                    index,
                    found: job.id,
                });
            }
            if job.demands.len() != num_resources {
                return Err(InstanceError::DemandDimensionMismatch {
                    job: job.id,
                    expected: num_resources,
                    found: job.demands.len(),
                });
            }
            if let Some(resource) = job.demands.iter().position(|&d| d > CAPACITY) {
                return Err(InstanceError::DemandExceedsCapacity {
                    job: job.id,
                    resource,
                });
            }
            if !(job.proc_time.is_finite() && job.proc_time > 0.0) {
                return Err(InstanceError::InvalidProcTime {
                    job: job.id,
                    value: job.proc_time,
                });
            }
            if !(job.release.is_finite() && job.release >= 0.0) {
                return Err(InstanceError::InvalidRelease {
                    job: job.id,
                    value: job.release,
                });
            }
            if !(job.weight.is_finite() && job.weight >= 0.0) {
                return Err(InstanceError::InvalidWeight {
                    job: job.id,
                    value: job.weight,
                });
            }
        }
        Ok(Instance {
            jobs,
            num_resources,
        })
    }

    /// Convenience constructor renumbering job ids to match their index, for
    /// generators that assemble jobs out of order.
    pub fn from_unnumbered(
        mut jobs: Vec<Job>,
        num_resources: usize,
    ) -> Result<Self, InstanceError> {
        for (index, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(index as u32);
        }
        Instance::new(jobs, num_resources)
    }

    /// The jobs, indexed by [`JobId`].
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up a job by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Number of jobs `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of resource types `R`.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Total volume `V_I = sum_j v_j` (Section 5.1).
    pub fn total_volume(&self) -> f64 {
        self.jobs.iter().map(Job::volume).sum()
    }

    /// Total weight `sum_j w_j`.
    pub fn total_weight(&self) -> f64 {
        self.jobs.iter().map(|j| j.weight).sum()
    }

    /// Divides all times (releases and processing times) by the minimum
    /// processing time, so the result satisfies the paper's `p_j >= 1`
    /// convention. Returns the normalized instance and the scale factor
    /// (the original minimum processing time); multiply normalized times by
    /// the scale to recover original units. An empty instance is returned
    /// unchanged with scale 1.
    pub fn normalize(&self) -> (Instance, f64) {
        let Some(min_p) = self
            .jobs
            .iter()
            .map(|j| j.proc_time)
            .min_by(|a, b| a.total_cmp(b))
        else {
            return (self.clone(), 1.0);
        };
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                release: j.release / min_p,
                proc_time: j.proc_time / min_p,
                ..j.clone()
            })
            .collect();
        (
            Instance {
                jobs,
                num_resources: self.num_resources,
            },
            min_p,
        )
    }

    /// Multiplies `job`'s weight by `factor`, preserving the instance
    /// invariants (the result must stay finite and non-negative). Used by
    /// the weight-aging restart semantics of the fault model.
    ///
    /// # Panics
    ///
    /// If the scaled weight would be negative, infinite, or NaN.
    pub fn scale_weight(&mut self, job: JobId, factor: f64) {
        let w = &mut self.jobs[job.index()].weight;
        let scaled = *w * factor;
        assert!(
            scaled.is_finite() && scaled >= 0.0,
            "scaling weight of {job} by {factor} yields invalid weight {scaled}"
        );
        *w = scaled;
    }

    /// Summary statistics used for reporting and for sizing MRIS's interval
    /// sequence.
    pub fn stats(&self) -> InstanceStats {
        let mut s = InstanceStats {
            num_jobs: self.jobs.len(),
            num_resources: self.num_resources,
            min_proc: f64::INFINITY,
            max_proc: 0.0,
            max_release: 0.0,
            total_volume: 0.0,
            total_weight: 0.0,
        };
        for j in &self.jobs {
            s.min_proc = s.min_proc.min(j.proc_time);
            s.max_proc = s.max_proc.max(j.proc_time);
            s.max_release = s.max_release.max(j.release);
            s.total_volume += j.volume();
            s.total_weight += j.weight;
        }
        if self.jobs.is_empty() {
            s.min_proc = 0.0;
        }
        s
    }

    /// Lower bound on the optimal makespan of this instance from Lemma 6.2
    /// combined with trivial bounds: `max(V_I/(R*M), max_j p_j, max_j r_j + p_j ... )`.
    ///
    /// Specifically returns `max( V_I / (R*M), max_j (r_j + p_j) )`, both of
    /// which every feasible schedule on `machines` machines must meet.
    pub fn makespan_lower_bound(&self, machines: usize) -> Time {
        let volume_bound = self.total_volume() / (self.num_resources * machines) as f64;
        let job_bound = self
            .jobs
            .iter()
            .map(|j| j.release + j.proc_time)
            .fold(0.0_f64, f64::max);
        volume_bound.max(job_bound)
    }
}

/// Aggregate statistics of an [`Instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceStats {
    /// Number of jobs `N`.
    pub num_jobs: usize,
    /// Number of resources `R`.
    pub num_resources: usize,
    /// Minimum processing time (0 for an empty instance).
    pub min_proc: Time,
    /// Maximum processing time.
    pub max_proc: Time,
    /// Latest release time.
    pub max_release: Time,
    /// Total volume `V_I`.
    pub total_volume: f64,
    /// Total weight.
    pub total_weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_jobs() -> Vec<Job> {
        vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.5, 0.5]),
            Job::from_fractions(JobId(1), 3.0, 2.0, 2.0, &[1.0, 0.0]),
        ]
    }

    #[test]
    fn construct_and_query() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 2);
        assert!((inst.total_volume() - (4.0 + 2.0)).abs() < 1e-9);
        assert!((inst.total_weight() - 3.0).abs() < 1e-9);
        assert_eq!(inst.job(JobId(1)).weight, 2.0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut jobs = simple_jobs();
        jobs[1].demands = Box::new([crate::CAPACITY]);
        let err = Instance::new(jobs, 2).unwrap_err();
        assert!(matches!(err, InstanceError::DemandDimensionMismatch { .. }));
    }

    #[test]
    fn rejects_oversized_demand() {
        let mut jobs = simple_jobs();
        jobs[0].demands[1] = crate::CAPACITY + 1;
        let err = Instance::new(jobs, 2).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::DemandExceedsCapacity { resource: 1, .. }
        ));
    }

    #[test]
    fn rejects_bad_scalars() {
        for (mutate, pattern) in [
            (
                Box::new(|j: &mut Job| j.proc_time = 0.0) as Box<dyn Fn(&mut Job)>,
                "proc",
            ),
            (Box::new(|j: &mut Job| j.release = -1.0), "release"),
            (Box::new(|j: &mut Job| j.weight = f64::NAN), "weight"),
        ] {
            let mut jobs = simple_jobs();
            mutate(&mut jobs[0]);
            let err = Instance::new(jobs, 2).unwrap_err();
            match pattern {
                "proc" => assert!(matches!(err, InstanceError::InvalidProcTime { .. })),
                "release" => assert!(matches!(err, InstanceError::InvalidRelease { .. })),
                _ => assert!(matches!(err, InstanceError::InvalidWeight { .. })),
            }
        }
    }

    #[test]
    fn rejects_misnumbered_ids() {
        let mut jobs = simple_jobs();
        jobs[0].id = JobId(5);
        assert!(matches!(
            Instance::new(jobs, 2).unwrap_err(),
            InstanceError::MisnumberedJob { index: 0, .. }
        ));
    }

    #[test]
    fn from_unnumbered_renumbers() {
        let mut jobs = simple_jobs();
        jobs[0].id = JobId(9);
        jobs[1].id = JobId(9);
        let inst = Instance::from_unnumbered(jobs, 2).unwrap();
        assert_eq!(inst.jobs()[0].id, JobId(0));
        assert_eq!(inst.jobs()[1].id, JobId(1));
    }

    #[test]
    fn normalize_scales_times() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        let (norm, scale) = inst.normalize();
        assert_eq!(scale, 2.0);
        assert_eq!(norm.jobs()[0].proc_time, 2.0);
        assert_eq!(norm.jobs()[1].proc_time, 1.0);
        assert_eq!(norm.jobs()[1].release, 1.5);
        // Demands and weights untouched.
        assert_eq!(norm.jobs()[0].demands, inst.jobs()[0].demands);
        let stats = norm.stats();
        assert_eq!(stats.min_proc, 1.0);
    }

    #[test]
    fn normalize_empty_is_identity() {
        let inst = Instance::new(vec![], 3).unwrap();
        let (norm, scale) = inst.normalize();
        assert_eq!(scale, 1.0);
        assert!(norm.is_empty());
    }

    #[test]
    fn makespan_lower_bound_combines_volume_and_job_bounds() {
        let inst = Instance::new(simple_jobs(), 2).unwrap();
        // V = 6, R = 2, M = 1 -> volume bound 3; job bound max(4, 5) = 5.
        assert!((inst.makespan_lower_bound(1) - 5.0).abs() < 1e-9);
        // With a huge volume job dominating:
        let jobs = vec![Job::from_fractions(JobId(0), 0.0, 10.0, 1.0, &[1.0, 1.0])];
        let inst = Instance::new(jobs, 2).unwrap();
        assert!((inst.makespan_lower_bound(1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scale_weight_multiplies_in_place() {
        let mut inst = Instance::new(simple_jobs(), 2).unwrap();
        inst.scale_weight(JobId(1), 2.5);
        assert!((inst.job(JobId(1)).weight - 5.0).abs() < 1e-12);
        inst.scale_weight(JobId(1), 0.0);
        assert_eq!(inst.job(JobId(1)).weight, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn scale_weight_rejects_nan() {
        let mut inst = Instance::new(simple_jobs(), 2).unwrap();
        inst.scale_weight(JobId(0), f64::NAN);
    }

    #[test]
    fn zero_resources_rejected() {
        assert_eq!(
            Instance::new(vec![], 0).unwrap_err(),
            InstanceError::NoResources
        );
    }
}
