//! Fault-model vocabulary: machine failure events and restart semantics.
//!
//! Production clusters lose machines mid-run, and non-preemptive scheduling
//! makes that especially costly: a killed job forfeits all progress and must
//! be re-released (compare the rejection-and-restart mechanism of Lucarelli
//! et al. and the re-dispatchable tasks of the bag-of-tasks model). This
//! module defines the *data* of the fault model — what fails, when, and what
//! happens to the victims — while `mris-sim` owns the event-loop mechanics.

use crate::Time;

/// Which machine a [`FaultEvent`] takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A fixed machine index (out-of-range or already-down targets are
    /// absorbed without effect when the event fires).
    Machine(usize),
    /// Resolved when the event fires: the up machine currently running the
    /// most jobs, ties toward the lower index — the adversarial
    /// "kill the busiest machine" policy. Deterministic given the
    /// simulation state.
    Busiest,
}

/// One machine failure: at time `at`, the target machine goes down for
/// `downtime` time units. Every job running on it is killed and re-released
/// as a fresh arrival; the machine accepts no placements until it recovers
/// at `at + downtime`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the failure strikes (simulated time, finite and non-negative).
    pub at: Time,
    /// How long the machine stays down (finite and strictly positive).
    pub downtime: Time,
    /// Which machine goes down.
    pub target: FaultTarget,
}

/// What happens to a job killed by a machine failure when it is re-released.
///
/// In both variants the job restarts from scratch with its original
/// processing time and demands — the model is non-preemptive, so partial
/// progress cannot be resumed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RestartSemantics {
    /// Restart with the original weight `w_j`.
    #[default]
    FullRestart,
    /// Each kill multiplies the job's weight by `factor` for all subsequent
    /// scheduling decisions, modelling the rising urgency of repeatedly
    /// victimized work. Metrics are still reported against the *original*
    /// weights so runs stay comparable across semantics.
    WeightAging {
        /// Per-kill weight multiplier; must be finite and positive
        /// (`> 1` ages upward).
        factor: f64,
    },
}

impl RestartSemantics {
    /// Short machine-readable label (used in reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            RestartSemantics::FullRestart => "full",
            RestartSemantics::WeightAging { .. } => "aging",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_restart() {
        assert_eq!(RestartSemantics::default(), RestartSemantics::FullRestart);
        assert_eq!(RestartSemantics::FullRestart.label(), "full");
        assert_eq!(
            RestartSemantics::WeightAging { factor: 2.0 }.label(),
            "aging"
        );
    }

    #[test]
    fn fault_event_is_plain_data() {
        let e = FaultEvent {
            at: 1.0,
            downtime: 2.0,
            target: FaultTarget::Machine(3),
        };
        assert_eq!(e, e);
        assert_ne!(
            e,
            FaultEvent {
                target: FaultTarget::Busiest,
                ..e
            }
        );
    }
}
