//! Error types for instance construction and online scheduling.

use crate::{JobId, TenantId};

/// A problem instance failed validation (see [`Instance::new`](crate::Instance::new)).
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A job's demand vector length does not match the instance's resource count.
    DemandDimensionMismatch {
        /// Offending job.
        job: JobId,
        /// Expected number of resources.
        expected: usize,
        /// Observed demand vector length.
        found: usize,
    },
    /// A job's demand for some resource exceeds machine capacity; it could
    /// never be scheduled.
    DemandExceedsCapacity {
        /// Offending job.
        job: JobId,
        /// Resource index with the oversized demand.
        resource: usize,
    },
    /// A job's processing time is not strictly positive and finite.
    InvalidProcTime {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's release time is negative or not finite.
    InvalidRelease {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's weight is negative or not finite.
    InvalidWeight {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's `id` field does not equal its index in the job list.
    MisnumberedJob {
        /// Index at which the job was found.
        index: usize,
        /// The id the job carried.
        found: JobId,
    },
    /// The instance declares zero resource types; the model requires `R >= 1`.
    NoResources,
    /// A precedence edge references a job outside the instance, or is a
    /// self-edge.
    PrecedenceOutOfRange {
        /// The edge's predecessor endpoint.
        pred: JobId,
        /// The edge's successor endpoint.
        succ: JobId,
        /// Number of jobs in the instance (valid ids are `0..num_jobs`).
        num_jobs: usize,
    },
    /// The precedence edges contain a cycle; no execution order exists.
    PrecedenceCycle {
        /// A job on (or behind) the cycle, the smallest id among them.
        job: JobId,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::DemandDimensionMismatch {
                job,
                expected,
                found,
            } => write!(
                f,
                "job {job} has {found} demand entries, instance has {expected} resources"
            ),
            InstanceError::DemandExceedsCapacity { job, resource } => write!(
                f,
                "job {job} demands more than machine capacity for resource {resource}"
            ),
            InstanceError::InvalidProcTime { job, value } => {
                write!(f, "job {job} has non-positive processing time {value}")
            }
            InstanceError::InvalidRelease { job, value } => {
                write!(f, "job {job} has invalid release time {value}")
            }
            InstanceError::InvalidWeight { job, value } => {
                write!(f, "job {job} has invalid weight {value}")
            }
            InstanceError::MisnumberedJob { index, found } => {
                write!(f, "job at index {index} carries id {found}")
            }
            InstanceError::NoResources => write!(f, "instance declares zero resource types"),
            InstanceError::PrecedenceOutOfRange {
                pred,
                succ,
                num_jobs,
            } => write!(
                f,
                "precedence edge ({pred}, {succ}) is invalid for an instance of {num_jobs} jobs"
            ),
            InstanceError::PrecedenceCycle { job } => {
                write!(f, "precedence edges form a cycle through {job}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// The scheduling service's admission controller rejected a submission.
///
/// Admission control is *explicit load-shedding*: a submission is either
/// accepted (and then guaranteed to complete) or rejected with one of these
/// typed reasons — never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The submission queue is at or above its depth watermark.
    QueueFull {
        /// Queue depth observed at submission time.
        depth: usize,
        /// The configured depth watermark (submissions are shed at
        /// `depth >= watermark`).
        watermark: usize,
    },
    /// Admitting the job would push the queued demand for some resource
    /// beyond the configured load watermark — the cluster cannot absorb it
    /// at an acceptable backlog.
    DemandInfeasible {
        /// The rejected job.
        job: JobId,
        /// Resource index whose budget the job would overflow.
        resource: usize,
        /// Queued demand for that resource (machine-capacity fractions)
        /// before the submission.
        queued: f64,
        /// The configured budget (`load_watermark * num_machines`).
        budget: f64,
    },
    /// A multi-tenant quota rejected the submission: the submitting tenant
    /// exhausted its own share even though the global watermarks may still
    /// have room. Never produced by a single-tenant service.
    TenantQuota {
        /// The tenant whose quota was exhausted.
        tenant: TenantId,
        /// Which per-tenant limit fired.
        kind: TenantQuotaKind,
    },
}

/// Which per-tenant admission limit rejected a submission
/// (see [`AdmissionError::TenantQuota`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantQuotaKind {
    /// The tenant's own queue-depth watermark is at capacity.
    QueueDepth {
        /// Jobs the tenant already has queued.
        depth: usize,
        /// The tenant's configured depth watermark.
        watermark: usize,
    },
    /// The tenant's queued-demand budget cannot absorb the job.
    QueuedDemand {
        /// The tenant's queued demand (machine-capacity fractions) on the
        /// binding resource before the submission.
        queued: f64,
        /// The tenant's configured demand budget.
        budget: f64,
    },
    /// The weighted-fair (deficit-round-robin) gate refused the submission:
    /// the global queue is contended and the tenant has spent its deficit
    /// credit faster than its weight share earns it back.
    FairShare {
        /// The tenant's deficit credit (demand ticks) at submission time.
        deficit: u64,
        /// The job's cost (demand ticks) the credit could not cover.
        cost: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { depth, watermark } => write!(
                f,
                "submission queue full: depth {depth} at watermark {watermark}"
            ),
            AdmissionError::DemandInfeasible {
                job,
                resource,
                queued,
                budget,
            } => write!(
                f,
                "demand infeasible: {job} would push queued demand for resource {resource} \
                 past {budget:.3} (currently {queued:.3})"
            ),
            AdmissionError::TenantQuota { tenant, kind } => match kind {
                TenantQuotaKind::QueueDepth { depth, watermark } => write!(
                    f,
                    "{tenant} queue full: depth {depth} at tenant watermark {watermark}"
                ),
                TenantQuotaKind::QueuedDemand { queued, budget } => write!(
                    f,
                    "{tenant} demand quota exhausted: queued {queued:.3} of budget {budget:.3}"
                ),
                TenantQuotaKind::FairShare { deficit, cost } => write!(
                    f,
                    "{tenant} over fair share: deficit {deficit} ticks cannot cover cost {cost}"
                ),
            },
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A scheduling policy violated a placement rule, or an algorithm failed to
/// produce a complete schedule. Surfaced as a typed error instead of a
/// process abort so callers can attribute the failure to the offending
/// policy and input.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulingError {
    /// A policy started a job before its release time.
    PlacedBeforeRelease {
        /// Offending job.
        job: JobId,
        /// The job's release time.
        release: f64,
        /// The simulated time of the premature placement.
        now: f64,
    },
    /// A policy referenced a machine index outside the cluster.
    InvalidMachine {
        /// The out-of-range machine index.
        machine: usize,
        /// Number of machines in the cluster (valid indices are
        /// `0..num_machines`).
        num_machines: usize,
    },
    /// A policy started a job on a machine that is currently failed. Down
    /// machines hold no capacity, so accepting the placement would silently
    /// corrupt cluster accounting; the fault-aware event loop surfaces the
    /// attempt instead.
    MachineDown {
        /// The failed machine the policy chose.
        machine: usize,
    },
    /// A policy started a job on a machine lacking capacity for it.
    DoesNotFit {
        /// Offending job.
        job: JobId,
        /// Machine the policy chose.
        machine: usize,
    },
    /// A policy started the same job twice.
    AlreadyPlaced {
        /// Offending job.
        job: JobId,
    },
    /// The event loop drained with jobs still unplaced: the policy stranded
    /// them (a work-conserving policy places every job once the cluster
    /// empties).
    StrandedJobs {
        /// Number of jobs left unplaced.
        unplaced: usize,
    },
    /// A job's completion event fired with no assignment backing it in the
    /// schedule. The event loops order completions before the fault events
    /// that unassign jobs at the same tick, so this indicates a
    /// completion/re-release ordering bug in the driver — surfaced as a
    /// typed error (the run's ledger and audit log stay intact) instead of
    /// a process abort.
    UnassignedCompletion {
        /// The job whose completion had no assignment.
        job: JobId,
        /// The machine the completion event claimed the job ran on.
        machine: usize,
    },
    /// A policy started a job whose precedence predecessor has not
    /// completed yet. The drivers withhold gated jobs from `on_arrivals`,
    /// so a policy can only trip this by placing a job it was never told
    /// about.
    PredecessorIncomplete {
        /// The prematurely placed job.
        job: JobId,
        /// An incomplete predecessor gating it.
        pred: JobId,
    },
    /// The instance cannot run on the given cluster: some job's demand
    /// exceeds every machine's capacity, so no feasible placement exists.
    /// Only reachable on heterogeneous clusters — instance validation
    /// already bounds demands by the reference [`CAPACITY`](crate::CAPACITY).
    UnplaceableJob {
        /// The job no machine can hold.
        job: JobId,
    },
}

impl std::fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulingError::PlacedBeforeRelease { job, release, now } => write!(
                f,
                "policy placed {job} at time {now} before its release {release}"
            ),
            SchedulingError::InvalidMachine {
                machine,
                num_machines,
            } => write!(
                f,
                "policy referenced machine {machine}, but the cluster has {num_machines} machines"
            ),
            SchedulingError::MachineDown { machine } => write!(
                f,
                "policy placed a job on machine {machine}, which is currently failed"
            ),
            SchedulingError::DoesNotFit { job, machine } => write!(
                f,
                "policy placed {job} on machine {machine} without sufficient capacity"
            ),
            SchedulingError::AlreadyPlaced { job } => {
                write!(f, "policy placed {job} twice")
            }
            SchedulingError::StrandedJobs { unplaced } => write!(
                f,
                "online policy stranded {unplaced} jobs: no events remain but the schedule is incomplete"
            ),
            SchedulingError::UnassignedCompletion { job, machine } => write!(
                f,
                "{job} completed on machine {machine} with no recorded assignment (completion/re-release ordering bug)"
            ),
            SchedulingError::PredecessorIncomplete { job, pred } => write!(
                f,
                "policy placed {job} before its predecessor {pred} completed"
            ),
            SchedulingError::UnplaceableJob { job } => write!(
                f,
                "{job} demands more than any machine in the cluster can hold"
            ),
        }
    }
}

impl std::error::Error for SchedulingError {}

/// An algorithm name failed to resolve against the registry.
///
/// Carries the rejected name, the registry's known-name listing (so the
/// message stays self-describing, as the old stringly-typed error was), and
/// an optional did-you-mean suggestion computed by edit distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No registered algorithm matches the requested name.
    UnknownAlgorithm {
        /// The name as the caller supplied it.
        name: String,
        /// Closest registered name by edit distance, when one is near enough.
        suggestion: Option<String>,
        /// The registry's documented names, for the error message.
        known: Vec<&'static str>,
    },
    /// The name used a recognised family prefix (`pq-`, `mris-`) but the
    /// heuristic suffix does not parse.
    UnknownHeuristic {
        /// The name as the caller supplied it.
        name: String,
        /// The parse failure reported by the heuristic parser.
        detail: String,
    },
    /// The algorithm resolved, but it does not support a feature the
    /// workload requires (precedence edges, heterogeneous machines).
    /// Surfaced as a typed error so an unsupported (algorithm, workload)
    /// pair cannot silently produce a wrong schedule.
    Unsupported {
        /// The resolved algorithm's registry name.
        algorithm: String,
        /// The workload feature it lacks.
        feature: WorkloadFeature,
    },
}

/// A workload capability a scheduler may or may not declare
/// (see [`RegistryError::Unsupported`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadFeature {
    /// The instance carries precedence edges.
    Precedence,
    /// The cluster has non-unit machine speeds or reduced capacities.
    HeterogeneousMachines,
}

impl std::fmt::Display for WorkloadFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadFeature::Precedence => write!(f, "precedence-constrained jobs"),
            WorkloadFeature::HeterogeneousMachines => write!(f, "heterogeneous machines"),
        }
    }
}

impl RegistryError {
    /// Builds an [`RegistryError::UnknownAlgorithm`] for `name`, picking a
    /// did-you-mean suggestion from `candidates` by Levenshtein distance.
    pub fn unknown_algorithm<I, S>(name: &str, known: Vec<&'static str>, candidates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let suggestion = closest_match(name, candidates.into_iter().map(Into::into));
        RegistryError::UnknownAlgorithm {
            name: name.to_string(),
            suggestion,
            known,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownAlgorithm {
                name,
                suggestion,
                known,
            } => {
                write!(f, "unknown algorithm '{name}'")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean '{s}'?)")?;
                }
                write!(f, "; known: {}", known.join(", "))
            }
            RegistryError::UnknownHeuristic { name, detail } => {
                write!(f, "unknown heuristic in '{name}': {detail}")
            }
            RegistryError::Unsupported { algorithm, feature } => {
                write!(f, "algorithm '{algorithm}' does not support {feature}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Case-insensitive Levenshtein distance between two short names.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(|c| c.to_lowercase()).collect();
    let b: Vec<char> = b.chars().flat_map(|c| c.to_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `target` by edit distance, if any is within a
/// third of the target's length (minimum slack 2). Used for did-you-mean
/// suggestions in [`RegistryError`].
pub fn closest_match<I>(target: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = String>,
{
    let budget = (target.chars().count() / 3).max(2);
    candidates
        .into_iter()
        .map(|c| (edit_distance(target, &c), c))
        .filter(|(d, _)| *d <= budget)
        .min_by(|(da, a), (db, b)| da.cmp(db).then_with(|| a.cmp(b)))
        .map(|(_, c)| c)
}

/// A service configuration failed validation (see `ServiceConfig::builder`
/// in `mris-service`).
///
/// The builder surfaces these instead of panicking so daemons can reject a
/// bad config at startup with a proper exit message.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The cluster must have at least one machine.
    NoMachines,
    /// The scheduling epoch is negative or not finite. (Zero is legal and
    /// means per-event scheduling.)
    InvalidEpoch {
        /// The invalid value.
        value: f64,
    },
    /// A queue watermark of zero sheds every submission.
    ZeroQueueWatermark,
    /// The load watermark must be a positive number.
    InvalidLoadWatermark {
        /// The invalid value.
        value: f64,
    },
    /// The re-release aging factor is negative or not finite.
    InvalidAgingFactor {
        /// The invalid value.
        value: f64,
    },
    /// A tenant specification in the config's tenant table is invalid.
    InvalidTenant {
        /// Index of the offending tenant in the table.
        tenant: usize,
        /// What was wrong with it.
        detail: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoMachines => write!(f, "service config: num_machines must be positive"),
            ConfigError::InvalidEpoch { value } => {
                write!(
                    f,
                    "service config: epoch must be finite and >= 0, got {value}"
                )
            }
            ConfigError::ZeroQueueWatermark => write!(
                f,
                "service config: queue_watermark 0 would shed every submission"
            ),
            ConfigError::InvalidLoadWatermark { value } => write!(
                f,
                "service config: load_watermark must be positive, got {value}"
            ),
            ConfigError::InvalidAgingFactor { value } => write!(
                f,
                "service config: aging factor must be finite and >= 0, got {value}"
            ),
            ConfigError::InvalidTenant { tenant, detail } => {
                write!(f, "service config: tenant {tenant}: {detail}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Compatibility shim: front ends that still plumb `Result<_, String>` for
/// service configs keep working while the typed error propagates.
impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

/// A durability artifact (journal or snapshot) failed to decode.
///
/// Every variant names the byte offset at which decoding stopped, so a
/// corrupted file is diagnosable without a hex dump. Corruption is always a
/// typed rejection — never a panic, never silent partial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The four bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The version tag found in the header.
        found: u32,
        /// The newest version this build can decode.
        supported: u32,
    },
    /// The input ended before a complete header, frame, or field.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
        /// Bytes the decoder needed at that offset.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A frame's CRC-32 checksum does not match its payload.
    ChecksumMismatch {
        /// Byte offset of the corrupted frame.
        offset: usize,
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A length or tag field holds a structurally impossible value.
    Malformed {
        /// Byte offset of the offending field.
        offset: usize,
        /// What the decoder found there.
        detail: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "bad magic bytes {found:02x?}")
            }
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "format version {found} is newer than supported version {supported}"
            ),
            CodecError::Truncated {
                offset,
                needed,
                remaining,
            } => write!(
                f,
                "truncated at byte {offset}: needed {needed} bytes, {remaining} remain"
            ),
            CodecError::ChecksumMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CodecError::Malformed { offset, detail } => {
                write!(f, "malformed field at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// The durability subsystem of a running service failed.
///
/// Journal-append IO failures are held here (queryable on the service)
/// rather than aborting the event loop: the scheduler keeps its
/// non-preemptive commitments even when the disk under the journal
/// misbehaves, and the operator decides whether to keep flying blind.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// A journal can only be attached to a pristine service — events that
    /// predate the journal could never be replayed.
    AttachAfterStart {
        /// Events the service had already processed.
        events: usize,
        /// Submissions it had already admitted.
        submitted: usize,
    },
    /// Writing or flushing the journal failed.
    JournalIo {
        /// The `std::io::Error` rendered to a string (io errors are not
        /// `Clone`/`PartialEq`).
        detail: String,
    },
    /// Persisting a snapshot failed.
    SnapshotIo {
        /// The underlying error rendered to a string.
        detail: String,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::AttachAfterStart { events, submitted } => write!(
                f,
                "journal attached after start: {events} events processed, {submitted} submitted"
            ),
            DurabilityError::JournalIo { detail } => write!(f, "journal io failed: {detail}"),
            DurabilityError::SnapshotIo { detail } => write!(f, "snapshot io failed: {detail}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// `Service::restore` (in `mris-service`) could not rebuild a crashed
/// service from its journal and snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The journal failed to decode before any record could be replayed
    /// (header-level corruption; tail corruption degrades gracefully).
    Journal(CodecError),
    /// The snapshot container failed to decode.
    Snapshot(CodecError),
    /// The journal or snapshot was written under a different instance,
    /// service config, or durability config than the one being restored.
    FingerprintMismatch {
        /// Fingerprint stored in the artifact.
        stored: u64,
        /// Fingerprint of the restoring configuration.
        expected: u64,
    },
    /// Replay produced a different record than the journal holds — the
    /// journal does not describe a run of this service build.
    Divergence {
        /// Sequence number of the first mismatching record.
        lsn: u64,
        /// Human-readable expected-vs-produced description.
        detail: String,
    },
    /// Replay reached the snapshot's sequence number but the re-derived
    /// state differs byte-for-byte from the stored snapshot.
    SnapshotStateMismatch {
        /// The snapshot's sequence number.
        lsn: u64,
    },
    /// The surviving journal ends before the snapshot's sequence number:
    /// the records needed to reach the snapshot's horizon are gone.
    JournalBehindSnapshot {
        /// The snapshot's sequence number.
        lsn: u64,
        /// Records the journal actually holds.
        records: u64,
    },
    /// The snapshot's sequence number was never visited during replay even
    /// though the journal is long enough — the snapshot belongs to a
    /// different run or cadence.
    SnapshotUnmatched {
        /// The snapshot's sequence number.
        lsn: u64,
        /// Records replayed.
        replayed: u64,
    },
    /// A degraded-mode outage was requested at or before the replayed
    /// horizon; the synthetic failures would rewrite already-replayed
    /// history.
    OutageTooEarly {
        /// The requested outage instant.
        at: f64,
        /// The time replay resumed the service at.
        resumed_at: f64,
    },
    /// The policy violated a placement rule during replay (the journal
    /// encodes an impossible run for this policy).
    Scheduling(SchedulingError),
    /// The restoring service configuration is itself invalid.
    Config(ConfigError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Journal(e) => write!(f, "journal unreadable: {e}"),
            RestoreError::Config(e) => write!(f, "restore configuration invalid: {e}"),
            RestoreError::Snapshot(e) => write!(f, "snapshot unreadable: {e}"),
            RestoreError::FingerprintMismatch { stored, expected } => write!(
                f,
                "configuration fingerprint mismatch: artifact {stored:#018x}, restoring {expected:#018x}"
            ),
            RestoreError::Divergence { lsn, detail } => {
                write!(f, "replay diverged from journal at record {lsn}: {detail}")
            }
            RestoreError::SnapshotStateMismatch { lsn } => write!(
                f,
                "re-derived state at record {lsn} differs from the stored snapshot"
            ),
            RestoreError::JournalBehindSnapshot { lsn, records } => write!(
                f,
                "journal holds {records} records but the snapshot was taken at record {lsn}"
            ),
            RestoreError::SnapshotUnmatched { lsn, replayed } => write!(
                f,
                "snapshot record {lsn} was never visited in {replayed} replayed records"
            ),
            RestoreError::OutageTooEarly { at, resumed_at } => write!(
                f,
                "degraded outage at {at} precedes the replayed horizon {resumed_at}"
            ),
            RestoreError::Scheduling(e) => write!(f, "replay hit a scheduling error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SchedulingError> for RestoreError {
    fn from(e: SchedulingError) -> Self {
        RestoreError::Scheduling(e)
    }
}

impl From<ConfigError> for RestoreError {
    fn from(e: ConfigError) -> Self {
        RestoreError::Config(e)
    }
}

/// A `mris-net` wire-protocol operation failed.
///
/// Transport failures (`Io`, `Closed`) and protocol failures (`Codec`,
/// `FingerprintMismatch`, …) are distinguished so clients can decide
/// between retrying and giving up. IO errors are rendered to strings —
/// `std::io::Error` is neither `Clone` nor `PartialEq`.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A socket read/write failed.
    Io {
        /// The underlying `std::io::Error`, rendered.
        detail: String,
    },
    /// A frame or message failed to decode.
    Codec(CodecError),
    /// The server rejected the connection's authentication token.
    AuthFailed,
    /// The client and server disagree on the configuration fingerprint —
    /// they are not looking at the same instance/config world.
    FingerprintMismatch {
        /// Fingerprint the server reported.
        server: u64,
        /// Fingerprint the client expected.
        client: u64,
    },
    /// The server reported a request-level failure (e.g. a rejected drain).
    Remote {
        /// The server's rendering of the failure.
        detail: String,
    },
    /// The peer answered with a response type the request does not admit.
    UnexpectedResponse {
        /// What arrived instead.
        detail: String,
    },
    /// The connection was closed before the exchange completed.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io { detail } => write!(f, "net io failed: {detail}"),
            NetError::Codec(e) => write!(f, "net frame corrupt: {e}"),
            NetError::AuthFailed => write!(f, "authentication failed: unknown tenant token"),
            NetError::FingerprintMismatch { server, client } => write!(
                f,
                "configuration fingerprint mismatch: server {server:#018x}, client {client:#018x}"
            ),
            NetError::Remote { detail } => write!(f, "server reported an error: {detail}"),
            NetError::UnexpectedResponse { detail } => {
                write!(f, "unexpected response: {detail}")
            }
            NetError::Closed => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_match_finds_near_names() {
        let known = ["mris", "tetris", "bf-exec", "pq-wsjf"];
        let got = closest_match("tetriss", known.iter().map(|s| s.to_string()));
        assert_eq!(got.as_deref(), Some("tetris"));
        // Far-off garbage yields no suggestion.
        assert_eq!(
            closest_match("zzzzzzzzzz", known.iter().map(|s| s.to_string())),
            None
        );
    }

    #[test]
    fn registry_error_message_lists_known_names() {
        let e = RegistryError::unknown_algorithm(
            "mrs",
            vec!["mris", "tetris"],
            ["mris".to_string(), "tetris".to_string()],
        );
        let msg = e.to_string();
        assert!(msg.contains("mris") && msg.contains("tetris"), "{msg}");
        assert!(msg.contains("did you mean 'mris'"), "{msg}");
        assert!(msg.contains("unknown algorithm"), "{msg}");
    }

    #[test]
    fn config_errors_render() {
        let e = ConfigError::InvalidEpoch { value: f64::NAN };
        assert!(e.to_string().contains("epoch"));
        assert!(String::from(ConfigError::NoMachines).contains("num_machines"));
    }
}
