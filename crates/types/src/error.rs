//! Error types for instance construction and online scheduling.

use crate::JobId;

/// A problem instance failed validation (see [`Instance::new`](crate::Instance::new)).
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A job's demand vector length does not match the instance's resource count.
    DemandDimensionMismatch {
        /// Offending job.
        job: JobId,
        /// Expected number of resources.
        expected: usize,
        /// Observed demand vector length.
        found: usize,
    },
    /// A job's demand for some resource exceeds machine capacity; it could
    /// never be scheduled.
    DemandExceedsCapacity {
        /// Offending job.
        job: JobId,
        /// Resource index with the oversized demand.
        resource: usize,
    },
    /// A job's processing time is not strictly positive and finite.
    InvalidProcTime {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's release time is negative or not finite.
    InvalidRelease {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's weight is negative or not finite.
    InvalidWeight {
        /// Offending job.
        job: JobId,
        /// The invalid value.
        value: f64,
    },
    /// A job's `id` field does not equal its index in the job list.
    MisnumberedJob {
        /// Index at which the job was found.
        index: usize,
        /// The id the job carried.
        found: JobId,
    },
    /// The instance declares zero resource types; the model requires `R >= 1`.
    NoResources,
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::DemandDimensionMismatch {
                job,
                expected,
                found,
            } => write!(
                f,
                "job {job} has {found} demand entries, instance has {expected} resources"
            ),
            InstanceError::DemandExceedsCapacity { job, resource } => write!(
                f,
                "job {job} demands more than machine capacity for resource {resource}"
            ),
            InstanceError::InvalidProcTime { job, value } => {
                write!(f, "job {job} has non-positive processing time {value}")
            }
            InstanceError::InvalidRelease { job, value } => {
                write!(f, "job {job} has invalid release time {value}")
            }
            InstanceError::InvalidWeight { job, value } => {
                write!(f, "job {job} has invalid weight {value}")
            }
            InstanceError::MisnumberedJob { index, found } => {
                write!(f, "job at index {index} carries id {found}")
            }
            InstanceError::NoResources => write!(f, "instance declares zero resource types"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// The scheduling service's admission controller rejected a submission.
///
/// Admission control is *explicit load-shedding*: a submission is either
/// accepted (and then guaranteed to complete) or rejected with one of these
/// typed reasons — never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The submission queue is at or above its depth watermark.
    QueueFull {
        /// Queue depth observed at submission time.
        depth: usize,
        /// The configured depth watermark (submissions are shed at
        /// `depth >= watermark`).
        watermark: usize,
    },
    /// Admitting the job would push the queued demand for some resource
    /// beyond the configured load watermark — the cluster cannot absorb it
    /// at an acceptable backlog.
    DemandInfeasible {
        /// The rejected job.
        job: JobId,
        /// Resource index whose budget the job would overflow.
        resource: usize,
        /// Queued demand for that resource (machine-capacity fractions)
        /// before the submission.
        queued: f64,
        /// The configured budget (`load_watermark * num_machines`).
        budget: f64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { depth, watermark } => write!(
                f,
                "submission queue full: depth {depth} at watermark {watermark}"
            ),
            AdmissionError::DemandInfeasible {
                job,
                resource,
                queued,
                budget,
            } => write!(
                f,
                "demand infeasible: {job} would push queued demand for resource {resource} \
                 past {budget:.3} (currently {queued:.3})"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A scheduling policy violated a placement rule, or an algorithm failed to
/// produce a complete schedule. Surfaced as a typed error instead of a
/// process abort so callers can attribute the failure to the offending
/// policy and input.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulingError {
    /// A policy started a job before its release time.
    PlacedBeforeRelease {
        /// Offending job.
        job: JobId,
        /// The job's release time.
        release: f64,
        /// The simulated time of the premature placement.
        now: f64,
    },
    /// A policy referenced a machine index outside the cluster.
    InvalidMachine {
        /// The out-of-range machine index.
        machine: usize,
        /// Number of machines in the cluster (valid indices are
        /// `0..num_machines`).
        num_machines: usize,
    },
    /// A policy started a job on a machine that is currently failed. Down
    /// machines hold no capacity, so accepting the placement would silently
    /// corrupt cluster accounting; the fault-aware event loop surfaces the
    /// attempt instead.
    MachineDown {
        /// The failed machine the policy chose.
        machine: usize,
    },
    /// A policy started a job on a machine lacking capacity for it.
    DoesNotFit {
        /// Offending job.
        job: JobId,
        /// Machine the policy chose.
        machine: usize,
    },
    /// A policy started the same job twice.
    AlreadyPlaced {
        /// Offending job.
        job: JobId,
    },
    /// The event loop drained with jobs still unplaced: the policy stranded
    /// them (a work-conserving policy places every job once the cluster
    /// empties).
    StrandedJobs {
        /// Number of jobs left unplaced.
        unplaced: usize,
    },
}

impl std::fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulingError::PlacedBeforeRelease { job, release, now } => write!(
                f,
                "policy placed {job} at time {now} before its release {release}"
            ),
            SchedulingError::InvalidMachine {
                machine,
                num_machines,
            } => write!(
                f,
                "policy referenced machine {machine}, but the cluster has {num_machines} machines"
            ),
            SchedulingError::MachineDown { machine } => write!(
                f,
                "policy placed a job on machine {machine}, which is currently failed"
            ),
            SchedulingError::DoesNotFit { job, machine } => write!(
                f,
                "policy placed {job} on machine {machine} without sufficient capacity"
            ),
            SchedulingError::AlreadyPlaced { job } => {
                write!(f, "policy placed {job} twice")
            }
            SchedulingError::StrandedJobs { unplaced } => write!(
                f,
                "online policy stranded {unplaced} jobs: no events remain but the schedule is incomplete"
            ),
        }
    }
}

impl std::error::Error for SchedulingError {}
