//! Property tests of the schedule feasibility validator against a naive
//! pairwise-overlap reference, plus metric consistency checks.

use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};
use mris_types::{Instance, Job, JobId, Schedule, ScheduleError, CAPACITY};

/// Naive feasibility: for each machine and each resource, check total
/// demand at every job-start instant (piecewise-constant usage makes starts
/// sufficient witnesses).
fn naive_feasible(instance: &Instance, schedule: &Schedule) -> bool {
    let assignments: Vec<_> = schedule.assignments().collect();
    for a in &assignments {
        let ja = instance.job(a.job);
        if a.start < ja.release {
            return false;
        }
        for l in 0..instance.num_resources() {
            let mut usage = 0u64;
            for b in &assignments {
                if b.machine != a.machine {
                    continue;
                }
                let jb = instance.job(b.job);
                // Does b run at instant a.start?
                if b.start <= a.start && a.start < b.start + jb.proc_time {
                    usage += jb.demands[l];
                }
            }
            if usage > CAPACITY {
                return false;
            }
        }
    }
    true
}

/// One generated job row: release, proc time, demands, machine, start
/// offset past release.
type Row = (f64, f64, Vec<f64>, usize, f64);

fn gen_rows(rng: &mut Rng) -> Vec<Row> {
    let n = rng.gen_range(1..14usize);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..5.0),
                rng.gen_range(0.5..6.0),
                vec![rng.gen_range(0.0..0.7), rng.gen_range(0.0..0.7)],
                rng.gen_range(0..2usize),
                rng.gen_range(0.0..12.0),
            )
        })
        .collect()
}

/// Builds the instance and placements for a row set; `None` for shrink
/// candidates that broke the generator's invariants (treated as passing).
fn build_case(rows: &[Row]) -> Option<(Instance, Vec<(usize, f64)>)> {
    if rows.is_empty() || rows.iter().any(|(_, _, d, _, _)| d.len() != 2) {
        return None;
    }
    let jobs: Vec<Job> = rows
        .iter()
        .map(|(r, p, d, _, _)| Job::from_fractions(JobId(0), *r, *p, 1.0, d))
        .collect();
    let instance = Instance::from_unnumbered(jobs, 2).ok()?;
    let placements = rows.iter().map(|(r, _, _, m, off)| (*m, r + off)).collect();
    Some((instance, placements))
}

/// The sweep validator agrees with the naive checker on arbitrary
/// (often infeasible) schedules.
#[test]
fn validator_matches_naive_reference() {
    check(
        "validator matches naive reference",
        &Config::with_cases(256),
        gen_rows,
        |rows| {
            let Some((instance, placements)) = build_case(rows) else {
                return Ok(());
            };
            let mut schedule = Schedule::new(instance.len(), 2);
            for (job, (machine, start)) in instance.jobs().iter().zip(&placements) {
                schedule.assign(job.id, *machine, *start).unwrap();
            }
            let fast = schedule.validate(&instance);
            let naive = naive_feasible(&instance, &schedule);
            prop_assert_eq!(
                fast.is_ok(),
                naive,
                "validator {:?} vs naive {}",
                fast,
                naive
            );
            Ok(())
        },
    );
}

/// Objective decompositions are consistent: AWCT * N = total weighted
/// completion; flow = completion - weighted release mass.
#[test]
fn metric_identities() {
    check(
        "metric identities",
        &Config::with_cases(256),
        gen_rows,
        |rows| {
            let Some((instance, placements)) = build_case(rows) else {
                return Ok(());
            };
            let mut schedule = Schedule::new(instance.len(), 2);
            for (job, (machine, start)) in instance.jobs().iter().zip(&placements) {
                schedule.assign(job.id, *machine, *start).unwrap();
            }
            let n = instance.len() as f64;
            let twc = schedule.total_weighted_completion(&instance);
            prop_assert!((schedule.awct(&instance) * n - twc).abs() < 1e-6);
            let weighted_release: f64 = instance.jobs().iter().map(|j| j.weight * j.release).sum();
            prop_assert!(
                (schedule.total_weighted_flow(&instance) - (twc - weighted_release)).abs() < 1e-6
            );
            // Makespan dominates every completion time.
            let mk = schedule.makespan(&instance);
            for job in instance.jobs() {
                prop_assert!(schedule.completion_time(&instance, job.id).unwrap() <= mk + 1e-9);
            }
            // Queuing delays are starts minus releases.
            let delays = schedule.queuing_delays(&instance);
            for (job, d) in instance.jobs().iter().zip(&delays) {
                let a = schedule.get(job.id).unwrap();
                prop_assert!((a.start - job.release - d).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

/// Normalization preserves feasibility verdicts and scales objectives.
#[test]
fn normalization_preserves_feasibility() {
    check(
        "normalization preserves feasibility",
        &Config::with_cases(256),
        gen_rows,
        |rows| {
            let Some((instance, placements)) = build_case(rows) else {
                return Ok(());
            };
            let (normalized, scale) = instance.normalize();
            let mut original = Schedule::new(instance.len(), 2);
            let mut scaled = Schedule::new(instance.len(), 2);
            for (job, (machine, start)) in instance.jobs().iter().zip(&placements) {
                original.assign(job.id, *machine, *start).unwrap();
                scaled.assign(job.id, *machine, start / scale).unwrap();
            }
            prop_assert_eq!(
                original.validate(&instance).is_ok(),
                scaled.validate(&normalized).is_ok()
            );
            prop_assert!(
                (original.makespan(&instance) / scale - scaled.makespan(&normalized)).abs() < 1e-6
            );
            Ok(())
        },
    );
}

#[test]
fn validator_pinpoints_violation_location() {
    let instance = Instance::from_unnumbered(
        vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.6, 0.0]),
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.0, 0.6]),
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.0, 0.6]),
        ],
        2,
    )
    .unwrap();
    let mut s = Schedule::new(3, 1);
    s.assign(JobId(0), 0, 0.0).unwrap();
    s.assign(JobId(1), 0, 1.0).unwrap();
    s.assign(JobId(2), 0, 2.0).unwrap();
    match s.validate(&instance).unwrap_err() {
        ScheduleError::CapacityExceeded {
            machine: 0,
            resource: 1,
            at,
        } => assert_eq!(at, 2.0),
        other => panic!("unexpected error {other}"),
    }
}
