//! Property tests for the durability codec: snapshots and journals
//! round-trip byte-for-byte, and every corruption — flipped bits, torn
//! tails, wrong magic, wrong version — is a typed error, never a panic.

use mris_core::registry::online_policy_by_name;
use mris_rng::Rng;
use mris_service::{
    config_fingerprint, parse_journal, read_valid_prefix, DurabilityConfig, JournalRecord,
    JournalWriter, MemorySink, RejectReason, RestoreOptions, Service, ServiceConfig, SharedBuf,
    SimClock, Snapshot, HEADER_LEN, SNAPSHOT_VERSION,
};
use mris_types::{CodecError, DurabilityError, Instance, Job, JobId};

fn tiny_instance(n: usize) -> Instance {
    let jobs = (0..n)
        .map(|i| Job::from_fractions(JobId(0), i as f64, 1.0 + i as f64 * 0.5, 1.0, &[0.5]))
        .collect();
    Instance::from_unnumbered(jobs, 1).expect("valid instance")
}

/// Every record variant, with awkward values (negative zero, infinities
/// are rejected upstream so stay finite, max ids).
fn all_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Admit {
            at: 0.0,
            job: 0,
            tenant: 0,
        },
        JournalRecord::Admit {
            at: -0.0,
            job: u32::MAX,
            tenant: u32::MAX,
        },
        JournalRecord::Reject {
            at: 1.25,
            job: 7,
            reason: RejectReason::QueueFull,
            tenant: 0,
        },
        JournalRecord::Reject {
            at: 2.5,
            job: 8,
            reason: RejectReason::LoadShed,
            tenant: 3,
        },
        JournalRecord::Reject {
            at: 2.75,
            job: 9,
            reason: RejectReason::TenantQuota,
            tenant: 1,
        },
        JournalRecord::Event { at: 3.75 },
        JournalRecord::Place {
            job: 9,
            machine: 2,
            start: 4.0,
        },
        JournalRecord::Complete { job: 9, machine: 2 },
        JournalRecord::Fail {
            machine: 1,
            at: 5.0,
            recover_at: 6.0,
        },
        JournalRecord::Recover {
            machine: 1,
            at: 6.0,
        },
        JournalRecord::ReRelease { job: 9 },
        JournalRecord::SnapshotMark { lsn: u64::MAX },
        JournalRecord::Close { at: 7.0 },
    ]
}

/// encode → frame → parse round-trips every record variant exactly.
#[test]
fn journal_records_round_trip() {
    let buf = SharedBuf::new();
    let mut w = JournalWriter::new(Box::new(buf.clone()), 0xFEED);
    let records = all_records();
    for r in &records {
        w.append(r);
    }
    w.flush().expect("in-memory flush");
    let parsed = parse_journal(&buf.contents()).expect("own journal parses");
    assert_eq!(parsed.fingerprint, 0xFEED);
    assert_eq!(parsed.records, records);
}

/// Snapshot encode → decode → encode is byte-identical, over seeded
/// random payloads.
#[test]
fn snapshot_round_trip_is_byte_identical() {
    let mut rng = Rng::new(0x5EED).substream("snapshot-roundtrip");
    for _ in 0..64 {
        let state: Vec<u8> = (0..rng.gen_range(0..=512usize))
            .map(|_| rng.next_u64_below(256) as u8)
            .collect();
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            fingerprint: rng.next_u64(),
            lsn: rng.next_u64(),
            at: rng.gen_range(-10.0..1e6),
            state,
        };
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("own snapshot decodes");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes, "re-encode changed bytes");
    }
}

/// Corrupting any single byte of a snapshot is a typed [`CodecError`] or
/// (for header-field flips that keep the frame self-consistent) decodes
/// into a *different* snapshot — never a panic, never a silent match.
#[test]
fn snapshot_corruption_is_detected_or_divergent() {
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        fingerprint: 0xABCD_EF01_2345_6789,
        lsn: 42,
        at: 13.5,
        state: (0u8..64).collect(),
    };
    let bytes = snap.encode();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        match Snapshot::decode(&bad) {
            Ok(other) => assert_ne!(other, snap, "flip at byte {i} went unnoticed"),
            Err(
                CodecError::BadMagic { .. }
                | CodecError::UnsupportedVersion { .. }
                | CodecError::Truncated { .. }
                | CodecError::ChecksumMismatch { .. }
                | CodecError::Malformed { .. },
            ) => {}
        }
    }
    // Truncation at every boundary is typed too.
    for cut in 0..bytes.len() {
        assert!(
            Snapshot::decode(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes decoded"
        );
    }
}

/// Builds a real journal by running a journaled service to completion.
fn real_journal() -> (Instance, ServiceConfig, DurabilityConfig, Vec<u8>) {
    let instance = tiny_instance(12);
    let cfg = ServiceConfig::new(2);
    let dcfg = DurabilityConfig {
        flush_every: 1,
        snapshot_every: 4,
    };
    let policy = online_policy_by_name("pq-wsjf", &instance, 2).expect("known policy");
    let mut svc = Service::new(
        instance.clone(),
        policy,
        cfg.clone(),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    let buf = SharedBuf::new();
    svc.attach_journal(
        dcfg,
        Box::new(buf.clone()),
        Box::new(mris_service::NullSnapshots),
    )
    .expect("fresh attach");
    for i in 0..instance.len() {
        let job = JobId(i as u32);
        let _ = svc
            .submit_at(instance.job(job).release, job)
            .expect("no policy error");
    }
    svc.drain().expect("drain");
    (instance, cfg, dcfg, buf.contents())
}

/// Strict parsing rejects a truncated journal with a typed error; the
/// lenient reader recovers the valid prefix and reports the tail error.
#[test]
fn torn_tails_are_typed_and_recoverable() {
    let (_, _, _, journal) = real_journal();
    let full = parse_journal(&journal).expect("full journal parses");
    for cut in HEADER_LEN + 1..journal.len() {
        let torn = &journal[..cut];
        let strict = parse_journal(torn);
        let (prefix, valid, tail_error) = read_valid_prefix(torn).expect("header intact");
        if strict.is_ok() {
            // The cut landed exactly on a frame boundary.
            assert_eq!(valid, cut);
            assert!(tail_error.is_none());
        } else {
            assert!(valid < cut, "lenient reader claimed torn bytes");
            assert!(tail_error.is_some(), "tail error not reported at {cut}");
        }
        assert!(
            prefix.records.len() <= full.records.len(),
            "prefix grew records"
        );
        assert_eq!(
            prefix.records[..],
            full.records[..prefix.records.len()],
            "valid prefix diverged from the full journal at cut {cut}"
        );
    }
}

/// Seeded bit-flip fuzzing: parsing and restoring a corrupted journal
/// never panics — every outcome is `Ok` or a typed error.
#[test]
fn journal_fuzz_never_panics() {
    let (instance, cfg, dcfg, journal) = real_journal();
    let mut rng = Rng::new(0xF122).substream("journal-fuzz");
    for case in 0..64 {
        let mut bad = journal.clone();
        let flips = 1 + rng.next_u64_below(4) as usize;
        for _ in 0..flips {
            let bit = rng.next_u64_below(bad.len() as u64 * 8);
            bad[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        // Typed or fine — but no panic, in any of the three readers.
        let _ = parse_journal(&bad);
        let _ = read_valid_prefix(&bad);
        let policy = online_policy_by_name("pq-wsjf", &instance, cfg.num_machines).expect("known");
        let restored = Service::restore(
            instance.clone(),
            policy,
            cfg.clone(),
            dcfg,
            SimClock::new(),
            MemorySink::default(),
            &bad,
            None,
            RestoreOptions::default(),
        );
        match restored {
            Ok(_) | Err(_) => {} // the property *is* reaching this match
        }
        let _ = case;
    }
}

/// The configuration fingerprint moves when anything that shapes replay
/// moves: instance, machine count, epoch, fault plan, or cadences.
#[test]
fn fingerprint_is_sensitive_to_configuration() {
    let instance = tiny_instance(6);
    let cfg = ServiceConfig::new(2);
    let dcfg = DurabilityConfig::default();
    let base = config_fingerprint(&instance, &cfg, &dcfg);
    assert_eq!(
        base,
        config_fingerprint(&instance, &cfg, &dcfg),
        "fingerprint not deterministic"
    );
    assert_ne!(
        base,
        config_fingerprint(&tiny_instance(7), &cfg, &dcfg),
        "instance change unnoticed"
    );
    assert_ne!(
        base,
        config_fingerprint(&instance, &ServiceConfig::new(3), &dcfg),
        "machine count unnoticed"
    );
    let epoch_cfg = ServiceConfig::builder(2).epoch(1.0).build().expect("valid");
    assert_ne!(
        base,
        config_fingerprint(&instance, &epoch_cfg, &dcfg),
        "epoch change unnoticed"
    );
    assert_ne!(
        base,
        config_fingerprint(
            &instance,
            &cfg,
            &DurabilityConfig {
                flush_every: 2,
                snapshot_every: 0
            }
        ),
        "flush cadence unnoticed"
    );
}

/// Journaling must cover the whole history: attaching to a service that
/// already processed work is a typed [`DurabilityError::AttachAfterStart`].
#[test]
fn attach_after_start_is_rejected() {
    let instance = tiny_instance(4);
    let policy = online_policy_by_name("pq-wsjf", &instance, 2).expect("known");
    let mut svc = Service::new(
        instance.clone(),
        policy,
        ServiceConfig::new(2),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    let _ = svc.submit_at(0.0, JobId(0)).expect("no policy error");
    let err = svc
        .attach_journal(
            DurabilityConfig::default(),
            Box::new(SharedBuf::new()),
            Box::new(mris_service::NullSnapshots),
        )
        .expect_err("attach after work must fail");
    assert!(
        matches!(err, DurabilityError::AttachAfterStart { .. }),
        "wrong error: {err}"
    );
}
