//! Precedence (DAG) workloads through the service event loop.
//!
//! The service must honor precedence edges exactly like the batch drivers:
//! a successor is withheld from the policy until every predecessor has
//! completed, and the journal records each gate opening (`PrecedenceReady`,
//! v3) so a crash-restored service re-derives the identical continuation.
//!
//! Pinned here, over randomized DAG instances:
//!
//! 1. no successor ever starts before a predecessor completes, for every
//!    precedence-capable registered policy;
//! 2. wakeup-free baselines are bit-identical to `run_online` on DAGs;
//! 3. a journaled DAG run parses, contains `PrecedenceReady` records when
//!    gates actually held jobs, and restores bit-identically — both from
//!    the full journal and from every event-boundary truncation.

use mris_core::registry::online_policy_by_name;
use mris_rng::Rng;
use mris_service::{
    truncate_at_event, DurabilityConfig, JobOutcome, JournalRecord, MemorySink, MemorySnapshots,
    RestoreOptions, Service, ServiceConfig, ServiceReport, SharedBuf, SimClock,
};
use mris_sim::run_online;
use mris_types::{Instance, InstanceBuilder, JobId};

/// Precedence-capable registered policies (ca-pq opts out: its clairvoyant
/// arrival oracle cannot see gate-release times).
const DAG_POLICIES: [&str; 5] = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec"];
/// The subset without wakeups, comparable against `run_online` directly.
const EVENT_DRIVEN: [&str; 4] = ["pq-wsjf", "pq-wsvf", "tetris", "bf-exec"];

/// A seeded random DAG: forward edges only (acyclic by construction), with
/// early releases so successors are routinely released before their
/// predecessors complete — the case that exercises the gate.
fn gen_dag(rng: &mut Rng) -> (usize, Instance) {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(3..=12usize);
    let mut b = InstanceBuilder::new(r);
    for _ in 0..n {
        let demands: Vec<f64> = (0..r).map(|_| rng.gen_range(0.05..=1.0)).collect();
        b.push_job(
            rng.gen_range(0.0..4.0),
            rng.gen_range(0.5..6.0),
            rng.gen_range(0.0..4.0),
            &demands,
        );
    }
    for pred in 0..n {
        for succ in (pred + 1)..n {
            if rng.gen_range(0.0..1.0) < 0.25 {
                b.edge(JobId(pred as u32), JobId(succ as u32));
            }
        }
    }
    let machines = rng.gen_range(1..=3usize);
    (machines, b.build().expect("forward edges are acyclic"))
}

/// Jobs in the canonical (release, id) submission order.
fn submission_order(instance: &Instance) -> Vec<JobId> {
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    order
}

/// Runs a permissive service over `instance`; optionally journaled.
fn run_service(
    name: &str,
    instance: &Instance,
    machines: usize,
    journal: Option<(&SharedBuf, &MemorySnapshots)>,
) -> ServiceReport {
    let policy = online_policy_by_name(name, instance, machines).expect("known policy");
    let mut svc = Service::new(
        instance.clone(),
        policy,
        ServiceConfig::new(machines),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    if let Some((buf, snaps)) = journal {
        svc.attach_journal(
            DurabilityConfig {
                flush_every: 1,
                snapshot_every: 4,
            },
            Box::new(buf.clone()),
            Box::new(snaps.clone()),
        )
        .expect("journal attaches to a fresh service");
    }
    for job in submission_order(instance) {
        let _ = svc
            .submit_at(instance.job(job).release, job)
            .expect("policy error on DAG run");
    }
    let (report, _sink) = svc.drain().expect("drain");
    report
}

/// Every edge holds in the drained schedule: `start(succ) >= end(pred)`.
fn assert_edges_respected(name: &str, case: usize, instance: &Instance, report: &ServiceReport) {
    for &(pred, succ) in instance.edges() {
        let p = report
            .schedule
            .get(pred)
            .unwrap_or_else(|| panic!("{name} case {case}: predecessor {pred} unscheduled"));
        let s = report
            .schedule
            .get(succ)
            .unwrap_or_else(|| panic!("{name} case {case}: successor {succ} unscheduled"));
        let end = p.start + instance.job(pred).proc_time;
        assert!(
            s.start >= end,
            "{name} case {case}: {succ} starts at {} before {pred} completes at {end}",
            s.start
        );
    }
}

#[test]
fn service_respects_precedence_on_dags() {
    let mut rng = Rng::new(11).substream("service-dag");
    for case in 0..24 {
        let (machines, instance) = gen_dag(&mut rng);
        for name in DAG_POLICIES {
            let report = run_service(name, &instance, machines, None);
            report
                .schedule
                .validate(&instance)
                .unwrap_or_else(|e| panic!("{name} case {case}: invalid schedule: {e}"));
            assert_edges_respected(name, case, &instance, &report);
            assert!(
                report
                    .outcomes
                    .iter()
                    .all(|o| matches!(o, JobOutcome::Completed)),
                "{name} case {case}: not every job completed"
            );
        }
    }
}

#[test]
fn service_matches_run_online_on_dags() {
    let mut rng = Rng::new(13).substream("service-dag-online");
    for case in 0..24 {
        let (machines, instance) = gen_dag(&mut rng);
        for name in EVENT_DRIVEN {
            let report = run_service(name, &instance, machines, None);
            let mut policy =
                online_policy_by_name(name, &instance, machines).expect("known policy");
            let online = run_online(&instance, machines, policy.as_mut())
                .unwrap_or_else(|e| panic!("{name} case {case} run_online: {e}"));
            assert_eq!(
                report.schedule, online,
                "{name} case {case}: service diverged from run_online on a DAG"
            );
        }
    }
}

/// A chain `0 -> 1 -> 2` with simultaneous releases: 1 and 2 are released
/// long before their predecessors complete, so both are held and reopened
/// — the journal must carry a `PrecedenceReady` record for each.
fn chain_instance() -> Instance {
    let mut b = InstanceBuilder::new(1);
    for _ in 0..3 {
        b.push_job(0.0, 2.0, 1.0, &[0.4]);
    }
    b.edge(JobId(0), JobId(1));
    b.edge(JobId(1), JobId(2));
    b.build().expect("chain is acyclic")
}

#[test]
fn dag_journal_records_gate_openings() {
    let instance = chain_instance();
    let buf = SharedBuf::new();
    let snaps = MemorySnapshots::new();
    let report = run_service("pq-wsjf", &instance, 2, Some((&buf, &snaps)));
    assert_edges_respected("pq-wsjf", 0, &instance, &report);

    let parsed = mris_service::parse_journal(&buf.contents()).expect("journal parses");
    assert_eq!(parsed.version, 3, "DAG journals are written as v3");
    let ready: Vec<u32> = parsed
        .records
        .iter()
        .filter_map(|r| match r {
            JournalRecord::PrecedenceReady { job } => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(
        ready,
        vec![1, 2],
        "each held chain link is reopened exactly once, in order"
    );
}

#[test]
fn dag_crash_restart_is_bit_identical() {
    let mut rng = Rng::new(7).substream("dag-crash");
    for case in 0..8 {
        let (machines, instance) = gen_dag(&mut rng);
        let buf = SharedBuf::new();
        let snaps = MemorySnapshots::new();
        let golden = run_service("pq-wsjf", &instance, machines, Some((&buf, &snaps)));
        let journal = buf.contents();
        let cfg = ServiceConfig::new(machines);
        let dcfg = DurabilityConfig {
            flush_every: 1,
            snapshot_every: 4,
        };
        if golden.summary.epochs < 2 {
            continue;
        }
        for cut in 1..golden.summary.epochs {
            let valid = truncate_at_event(&journal, cut).expect("event boundary exists");
            let truncated = &journal[..valid];
            let policy = online_policy_by_name("pq-wsjf", &instance, machines).expect("known");
            let (mut svc, _restore) = Service::restore(
                instance.clone(),
                policy,
                cfg.clone(),
                dcfg,
                SimClock::new(),
                MemorySink::default(),
                truncated,
                None,
                RestoreOptions::default(),
            )
            .expect("restore from truncated DAG journal");
            for job in submission_order(&instance) {
                if !matches!(svc.outcome(job), JobOutcome::NotSubmitted) {
                    continue;
                }
                let _ = svc
                    .submit_at(instance.job(job).release, job)
                    .expect("resubmission");
            }
            let (report, _sink) = svc.drain().expect("post-restore drain");
            assert_eq!(
                report.schedule, golden.schedule,
                "case {case} cut {cut}: schedule diverged after DAG restore"
            );
            assert_eq!(
                report.summary.awct.to_bits(),
                golden.summary.awct.to_bits(),
                "case {case} cut {cut}: AWCT bits diverged after DAG restore"
            );
            assert_eq!(
                report.outcomes, golden.outcomes,
                "case {case} cut {cut}: outcome ledger diverged after DAG restore"
            );
        }
    }
}
