//! Crash-restart equivalence: a service rebuilt from its write-ahead
//! journal (and optionally a snapshot), then driven to completion, is
//! bit-identical to the run that never crashed.
//!
//! The suite runs seeded cases across three online policies (including
//! MRIS with its `gamma_k` wakeups and durable memo state) and varied
//! configurations — epoch batching on/off, restart semantics, live fault
//! plans. Each case:
//!
//! 1. runs a *golden* service with journaling on (in-memory journal +
//!    snapshot store) and records its schedule, AWCT bits, fault log, and
//!    outcome ledger;
//! 2. simulates crashes by truncating the journal at seeded event
//!    boundaries ([`CrashPlan`]) and at arbitrary mid-frame byte offsets
//!    (torn tails);
//! 3. restores from the truncated journal, resubmits every job the crash
//!    cut off at its release time, drains, and asserts equality with the
//!    golden run — schedule, AWCT bits, [`mris_sim::FaultLog`], and
//!    per-job outcomes.
//!
//! A final test pins the degraded path: restoring with
//! [`RestoreOptions::outage`] after total journal-tail loss equals a
//! fresh run whose fault plan contains the same whole-cluster outage —
//! exactly the chaos driver's machine-failure semantics.

use mris_core::registry::online_policy_by_name;
use mris_rng::Rng;
use mris_service::{
    parse_journal, truncate_at_event, CrashPlan, DurabilityConfig, JobOutcome, MemorySink,
    MemorySnapshots, Outage, RestoreOptions, RestoreReport, Service, ServiceConfig, ServiceReport,
    SharedBuf, SimClock, Snapshot, HEADER_LEN,
};
use mris_sim::{suggested_horizon, FaultPlan, PoissonFaultConfig};
use mris_types::{FaultEvent, FaultTarget, Instance, Job, JobId, RestartSemantics};

const POLICIES: [&str; 3] = ["mris", "pq-wsjf", "tetris"];
const SEEDS: u64 = 16;
const DCFG: DurabilityConfig = DurabilityConfig {
    flush_every: 1,
    snapshot_every: 8,
};

/// One golden (uncrashed) run: its inputs, its artifacts, its results.
struct Golden {
    instance: Instance,
    cfg: ServiceConfig,
    report: ServiceReport,
    journal: Vec<u8>,
    snapshots: Vec<Vec<u8>>,
}

/// A seeded random instance in the conservativity suite's style, a bit
/// larger so epochs, wakeups, and faults all get airtime.
fn gen_instance(rng: &mut Rng) -> (usize, Instance) {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(8..=24usize);
    let jobs = (0..n)
        .map(|_| {
            Job::from_fractions(
                JobId(0),
                rng.gen_range(0.0..12.0),
                rng.gen_range(0.5..6.0),
                rng.gen_range(0.0..4.0),
                &(0..r)
                    .map(|_| rng.gen_range(0.05..=1.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let machines = rng.gen_range(1..=3usize);
    (
        machines,
        Instance::from_unnumbered(jobs, r).expect("generated jobs are valid"),
    )
}

/// Seed-varied service config: epoch cadence, restart semantics, and an
/// optional live fault plan.
fn gen_cfg(seed: u64, machines: usize, instance: &Instance) -> ServiceConfig {
    let mut cfg = ServiceConfig::builder(machines)
        .epoch(match seed % 3 {
            0 => 0.0,
            1 => 0.5,
            _ => 2.0,
        })
        .build()
        .expect("valid config");
    cfg.restart = if seed.is_multiple_of(2) {
        RestartSemantics::FullRestart
    } else {
        RestartSemantics::WeightAging { factor: 2.0 }
    };
    if seed % 2 == 1 {
        let horizon = suggested_horizon(instance, machines);
        cfg.fault_plan = FaultPlan::poisson(&PoissonFaultConfig {
            seed: seed ^ 0xFA17,
            num_machines: machines,
            horizon,
            mtbf: horizon / 1.5,
            mttr: 0.08 * horizon,
        });
    }
    cfg
}

/// Jobs of `instance` in the canonical submission order.
fn submission_order(instance: &Instance) -> Vec<JobId> {
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    order
}

fn golden_run(name: &str, seed: u64) -> Golden {
    let mut rng = Rng::new(seed).substream("crash-restart");
    let (machines, instance) = gen_instance(&mut rng);
    let cfg = gen_cfg(seed, machines, &instance);
    let policy = online_policy_by_name(name, &instance, machines).expect("known policy");
    let mut svc = Service::new(
        instance.clone(),
        policy,
        cfg.clone(),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    let buf = SharedBuf::new();
    let snaps = MemorySnapshots::new();
    svc.attach_journal(DCFG, Box::new(buf.clone()), Box::new(snaps.clone()))
        .expect("journal attaches to a fresh service");
    for job in submission_order(&instance) {
        let _ = svc
            .submit_at(instance.job(job).release, job)
            .expect("golden run never hits a policy error");
    }
    let (report, _sink) = svc.drain().expect("golden drain");
    Golden {
        instance,
        cfg,
        report,
        journal: buf.contents(),
        snapshots: snaps.all(),
    }
}

/// Restores from `journal` (+ optional snapshot), resubmits everything the
/// crash cut off at its release time, drains, and returns both reports.
fn restore_and_finish(
    g: &Golden,
    name: &str,
    journal: &[u8],
    snapshot: Option<&[u8]>,
    opts: RestoreOptions,
) -> (ServiceReport, RestoreReport) {
    let policy = online_policy_by_name(name, &g.instance, g.cfg.num_machines).expect("known");
    let (mut svc, restore) = Service::restore(
        g.instance.clone(),
        policy,
        g.cfg.clone(),
        DCFG,
        SimClock::new(),
        MemorySink::default(),
        journal,
        snapshot,
        opts,
    )
    .expect("restore succeeds");
    for job in submission_order(&g.instance) {
        if !matches!(svc.outcome(job), JobOutcome::NotSubmitted) {
            continue;
        }
        let _ = svc
            .submit_at(g.instance.job(job).release, job)
            .expect("resubmission never hits a policy error");
    }
    let (report, _sink) = svc.drain().expect("post-restore drain");
    (report, restore)
}

/// Equality of everything the golden run pinned.
fn assert_equivalent(
    name: &str,
    seed: u64,
    ctx: &str,
    golden: &ServiceReport,
    got: &ServiceReport,
) {
    assert_eq!(
        got.schedule, golden.schedule,
        "{name} seed {seed} {ctx}: schedule diverged"
    );
    assert_eq!(
        got.summary.awct.to_bits(),
        golden.summary.awct.to_bits(),
        "{name} seed {seed} {ctx}: AWCT bits diverged"
    );
    assert_eq!(
        got.log, golden.log,
        "{name} seed {seed} {ctx}: fault log diverged"
    );
    assert_eq!(
        got.outcomes, golden.outcomes,
        "{name} seed {seed} {ctx}: outcome ledger diverged"
    );
}

/// The tentpole property: for every policy and seed, every seeded crash
/// point restores into a continuation bit-identical to the uncrashed run.
#[test]
fn crash_restart_is_bit_identical() {
    for name in POLICIES {
        for seed in 0..SEEDS {
            let g = golden_run(name, seed);
            let epochs = g.report.summary.epochs;
            if epochs == 0 {
                continue;
            }
            for kill in CrashPlan::seeded(seed ^ 0xC4A5, epochs, 2).kill_after_events {
                let cut = truncate_at_event(&g.journal, kill)
                    .expect("kill point within the journal's events");
                let (report, restore) = restore_and_finish(
                    &g,
                    name,
                    &g.journal[..cut],
                    None,
                    RestoreOptions::default(),
                );
                assert!(!restore.clean_shutdown, "a truncated journal is a crash");
                assert_equivalent(name, seed, &format!("kill@{kill}"), &g.report, &report);
            }
        }
    }
}

/// Restoring the *full* journal replays the clean shutdown: nothing to
/// resubmit, nothing regenerated, and the same results.
#[test]
fn full_journal_restores_clean() {
    for name in POLICIES {
        for seed in [1, 4, 9] {
            let g = golden_run(name, seed);
            let (report, restore) =
                restore_and_finish(&g, name, &g.journal, None, RestoreOptions::default());
            assert!(restore.clean_shutdown, "{name} seed {seed}: not clean");
            assert_eq!(restore.regenerated, 0, "{name} seed {seed}: regenerated");
            assert_eq!(restore.torn_tail_bytes, 0, "{name} seed {seed}: torn");
            assert_equivalent(name, seed, "full journal", &g.report, &report);
        }
    }
}

/// Snapshots are byte-verified during replay: every snapshot the golden
/// run wrote matches the state replay re-derives at its sequence number.
#[test]
fn snapshots_verify_during_replay() {
    for name in POLICIES {
        for seed in [3, 5, 11] {
            let g = golden_run(name, seed);
            let records = parse_journal(&g.journal)
                .expect("golden journal parses")
                .records
                .len() as u64;
            let mut checked = 0;
            for bytes in &g.snapshots {
                let snap = Snapshot::decode(bytes).expect("golden snapshot decodes");
                if snap.lsn > records {
                    continue;
                }
                let (report, restore) = restore_and_finish(
                    &g,
                    name,
                    &g.journal,
                    Some(bytes),
                    RestoreOptions::default(),
                );
                assert_eq!(
                    restore.snapshot_verified,
                    Some(snap.lsn),
                    "{name} seed {seed}: snapshot at lsn {} not verified",
                    snap.lsn
                );
                assert_equivalent(name, seed, "snapshot", &g.report, &report);
                checked += 1;
            }
            assert!(
                checked > 0,
                "{name} seed {seed}: no snapshot exercised (journal too short?)"
            );
        }
    }
}

/// Mid-frame cuts — the torn tail a real crash leaves — restore in
/// lenient mode by dropping the torn frame and regenerating the lost
/// records, still bit-identical to the uncrashed run.
#[test]
fn torn_tails_restore_leniently() {
    for name in POLICIES {
        for seed in [2, 7, 13] {
            let g = golden_run(name, seed);
            let mut rng = Rng::new(seed).substream("torn-tail");
            for _ in 0..4 {
                let span = (g.journal.len() - HEADER_LEN) as u64;
                let cut = HEADER_LEN + rng.next_u64_below(span.max(1)) as usize;
                let (report, restore) = restore_and_finish(
                    &g,
                    name,
                    &g.journal[..cut],
                    None,
                    RestoreOptions::default(),
                );
                assert!(!restore.clean_shutdown || cut == g.journal.len());
                assert_equivalent(name, seed, &format!("torn@{cut}"), &g.report, &report);
            }
        }
    }
}

/// Degraded mode: when the journal tail after a crash is lost for good,
/// `RestoreOptions::outage` recovers with machine-failure semantics — the
/// continuation equals a fresh run whose fault plan holds the same
/// whole-cluster outage. (PR 3's chaos semantics, word for word.)
#[test]
fn journal_loss_degrades_to_machine_failure_semantics() {
    for name in POLICIES {
        for seed in [0, 6, 10] {
            let g = golden_run(name, seed);
            let epochs = g.report.summary.epochs;
            if epochs < 2 {
                continue;
            }
            let kill = epochs / 2;
            let cut = truncate_at_event(&g.journal, kill).expect("kill point in range");
            let prefix = &g.journal[..cut];

            // The outage strikes strictly after everything the surviving
            // journal recorded.
            let horizon = parse_journal(prefix)
                .expect("event-boundary prefix parses strictly")
                .records
                .iter()
                .filter_map(|r| match *r {
                    mris_service::JournalRecord::Admit { at, .. }
                    | mris_service::JournalRecord::Reject { at, .. }
                    | mris_service::JournalRecord::Event { at } => Some(at),
                    _ => None,
                })
                .fold(f64::NEG_INFINITY, f64::max);
            let outage = Outage {
                at: horizon + 0.25,
                downtime: 1.5,
            };
            let (report, restore) = restore_and_finish(
                &g,
                name,
                prefix,
                None,
                RestoreOptions {
                    strict: false,
                    outage: Some(outage),
                },
            );
            assert!(!restore.clean_shutdown);

            // Reference: a never-crashed service whose plan contains the
            // same whole-cluster failure burst.
            let mut cfg = g.cfg.clone();
            let mut events = cfg.fault_plan.events().to_vec();
            for m in 0..cfg.num_machines {
                events.push(FaultEvent {
                    at: outage.at,
                    downtime: outage.downtime,
                    target: FaultTarget::Machine(m),
                });
            }
            cfg.fault_plan = FaultPlan::from_events(events);
            let policy = online_policy_by_name(name, &g.instance, cfg.num_machines).expect("known");
            let mut svc = Service::new(
                g.instance.clone(),
                policy,
                cfg,
                SimClock::new(),
                MemorySink::default(),
            )
            .expect("valid service config");
            for job in submission_order(&g.instance) {
                let _ = svc
                    .submit_at(g.instance.job(job).release, job)
                    .expect("reference run never hits a policy error");
            }
            let (reference, _sink) = svc.drain().expect("reference drain");
            assert_equivalent(name, seed, "degraded outage", &reference, &report);
        }
    }
}
