//! Conservativity of the service event loop.
//!
//! The service adds admission control, clocks, and telemetry *around* the
//! scheduling path — it must not change a single placement. Pinned here,
//! over randomized instances:
//!
//! 1. A permissive service under a lag-free `SimClock` (jobs submitted at
//!    their release times, per-event delivery) produces a bit-identical
//!    schedule and AWCT to the batch scheduler resolved from the registry,
//!    for **every** comparison algorithm — including MRIS, whose `gamma_k`
//!    wakeups the service loop honors.
//! 2. For policies without wakeups (all baselines), the service is also
//!    bit-identical to `run_online` directly.
//! 3. Two service runs with the same seed are byte-identical (replay).

use mris_core::registry::{algorithm_by_name, online_policy_by_name};
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};
use mris_service::{JobOutcome, MemorySink, Service, ServiceConfig, ServiceReport, SimClock};
use mris_sim::run_online;
use mris_types::{Instance, Job, JobId};

const SCHEDULERS: [&str; 6] = ["mris", "pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];
/// Baselines whose `next_wakeup` is `None`, comparable against `run_online`.
const EVENT_DRIVEN: [&str; 5] = ["pq-wsjf", "pq-wsvf", "tetris", "bf-exec", "ca-pq"];

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

/// `(machines, resources, rows)`.
type Case = (usize, usize, Vec<Row>);

fn gen_case(rng: &mut Rng) -> Case {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(2..=12usize);
    let rows = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.5..6.0),
                rng.gen_range(0.0..4.0),
                (0..r).map(|_| rng.gen_range(0.0..=1.0)).collect(),
            )
        })
        .collect();
    (rng.gen_range(1..=3usize), r, rows)
}

fn build_case(case: &Case) -> Option<(usize, Instance)> {
    let (machines, r, rows) = case;
    if rows.len() < 2
        || !(1..=2).contains(r)
        || !(1..=3).contains(machines)
        || rows.iter().any(|(_, _, _, d)| d.len() != *r)
    {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(rel, p, w, d)| Job::from_fractions(JobId(0), *rel, *p, *w, d))
        .collect();
    let instance = Instance::from_unnumbered(jobs, *r).ok()?;
    Some((*machines, instance))
}

/// Runs a permissive service over `instance`, submitting every job at its
/// release time in (release, id) order — the same arrival order the batch
/// drivers synthesize.
fn run_service(name: &str, instance: &Instance, machines: usize) -> Result<ServiceReport, String> {
    let policy = online_policy_by_name(name, instance, machines)
        .expect("registry resolves comparison names");
    let mut service = Service::new(
        instance.clone(),
        policy,
        ServiceConfig::new(machines),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
    order.sort_by(|&a, &b| {
        instance
            .job(a)
            .release
            .total_cmp(&instance.job(b).release)
            .then(a.cmp(&b))
    });
    for job in order {
        service
            .submit_at(instance.job(job).release, job)
            .map_err(|e| format!("{name} service: {e}"))?
            .expect("permissive config never rejects");
    }
    let (report, _sink) = service.drain().map_err(|e| format!("{name} drain: {e}"))?;
    Ok(report)
}

/// Service == batch scheduler, bit for bit, for every comparison algorithm.
#[test]
fn service_matches_batch_for_all_algorithms() {
    check(
        "service vs batch conservativity",
        &Config::with_cases(48),
        gen_case,
        |case| {
            let Some((machines, instance)) = build_case(case) else {
                return Ok(());
            };
            for name in SCHEDULERS {
                let batch = algorithm_by_name(name)
                    .expect("registry resolves comparison names")
                    .try_schedule(&instance, machines)
                    .map_err(|e| format!("{name} batch: {e}"))?;
                let report = run_service(name, &instance, machines)?;
                prop_assert_eq!(&report.schedule, &batch, "{name} diverged from batch");
                prop_assert_eq!(
                    report.schedule.awct(&instance).to_bits(),
                    batch.awct(&instance).to_bits(),
                    "{name} AWCT bits diverged"
                );
                prop_assert!(
                    report
                        .outcomes
                        .iter()
                        .all(|o| matches!(o, JobOutcome::Completed)),
                    "{name} left non-completed outcomes"
                );
                prop_assert_eq!(report.summary.completed, instance.len(), "{name} count");
                prop_assert_eq!(report.summary.failures, 0usize, "{name} phantom failure");
            }
            Ok(())
        },
    );
}

/// For wakeup-free baselines the service is also identical to `run_online`.
#[test]
fn service_matches_run_online_for_event_driven_policies() {
    check(
        "service vs run_online conservativity",
        &Config::with_cases(48),
        gen_case,
        |case| {
            let Some((machines, instance)) = build_case(case) else {
                return Ok(());
            };
            for name in EVENT_DRIVEN {
                let mut policy = online_policy_by_name(name, &instance, machines)
                    .expect("registry resolves comparison names");
                let online = run_online(&instance, machines, policy.as_mut())
                    .map_err(|e| format!("{name} run_online: {e}"))?;
                let report = run_service(name, &instance, machines)?;
                prop_assert_eq!(&report.schedule, &online, "{name} diverged from run_online");
            }
            Ok(())
        },
    );
}

/// Same inputs, two service runs: byte-identical schedules and summaries.
#[test]
fn service_replay_is_bit_for_bit() {
    check(
        "service replay determinism",
        &Config::with_cases(32),
        gen_case,
        |case| {
            let Some((machines, instance)) = build_case(case) else {
                return Ok(());
            };
            for name in ["mris", "tetris"] {
                let first = run_service(name, &instance, machines)?;
                let second = run_service(name, &instance, machines)?;
                prop_assert_eq!(&first.schedule, &second.schedule, "{name} schedule");
                prop_assert_eq!(&first.log, &second.log, "{name} log");
                prop_assert_eq!(
                    first.summary.awct.to_bits(),
                    second.summary.awct.to_bits(),
                    "{name} AWCT bits"
                );
            }
            Ok(())
        },
    );
}
