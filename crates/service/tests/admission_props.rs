//! Admission-control properties: no silent drops, watermark-consistent
//! rejections, and a consistent ledger — with and without machine faults
//! and epoch batching.

use mris_core::registry::online_policy_by_name;
use mris_rng::prop::{check, Config};
use mris_rng::{prop_assert, prop_assert_eq, Rng};
use mris_service::{JobOutcome, MemorySink, Service, ServiceConfig, SimClock};
use mris_sim::{suggested_horizon, FaultPlan, PoissonFaultConfig};
use mris_types::{AdmissionError, Instance, Job, JobId};

const POLICIES: [&str; 3] = ["mris", "tetris", "pq-wsjf"];

/// One generated job row: release, proc time, weight, demands.
type Row = (f64, f64, f64, Vec<f64>);

/// `((policy idx, machines, resources, queue watermark),
/// (epoch selector, load-watermark selector, fault seed — 0 disables
/// faults), rows)`.
type Case = ((usize, usize, usize, usize), (u8, u8, u64), Vec<Row>);

fn gen_case(rng: &mut Rng) -> Case {
    let r = rng.gen_range(1..=2usize);
    let n = rng.gen_range(4..=16usize);
    let rows = (0..n)
        .map(|_| {
            (
                rng.gen_range(0.0..8.0),
                rng.gen_range(0.5..4.0),
                rng.gen_range(0.0..4.0),
                (0..r).map(|_| rng.gen_range(0.05..=1.0)).collect(),
            )
        })
        .collect();
    (
        (
            rng.gen_range(0..POLICIES.len()),
            rng.gen_range(1..=3usize),
            r,
            rng.gen_range(1..=5usize),
        ),
        (
            rng.gen_range(0..=2usize) as u8,
            rng.gen_range(0..=2usize) as u8,
            rng.gen_range(0..u64::MAX),
        ),
        rows,
    )
}

#[allow(clippy::type_complexity)]
fn build_case(case: &Case) -> Option<(&'static str, usize, ServiceConfig, Instance)> {
    let ((policy_idx, machines, r, watermark), (epoch_sel, load_sel, fault_seed), rows) = case;
    if rows.len() < 2
        || !(1..=2).contains(r)
        || !(1..=3).contains(machines)
        || *policy_idx >= POLICIES.len()
        || *watermark == 0
        || rows.iter().any(|(_, _, _, d)| d.len() != *r)
    {
        return None;
    }
    let jobs = rows
        .iter()
        .map(|(rel, p, w, d)| Job::from_fractions(JobId(0), *rel, *p, *w, d))
        .collect();
    let instance = Instance::from_unnumbered(jobs, *r).ok()?;
    let mut cfg = ServiceConfig::new(*machines);
    cfg.queue_watermark = *watermark;
    cfg.epoch = match epoch_sel % 3 {
        0 => 0.0,
        1 => 0.5,
        _ => 1.25,
    };
    cfg.load_watermark = match load_sel % 3 {
        0 => f64::INFINITY,
        1 => 2.0,
        _ => 0.75,
    };
    if *fault_seed != 0 {
        let horizon = suggested_horizon(&instance, *machines);
        cfg.fault_plan = FaultPlan::poisson(&PoissonFaultConfig {
            seed: *fault_seed,
            num_machines: *machines,
            horizon,
            mtbf: horizon,
            mttr: 0.05 * horizon,
        });
    }
    Some((POLICIES[*policy_idx], *machines, cfg, instance))
}

/// Every submitted job ends `Completed` or `Rejected` — never silently
/// dropped — and every rejection is consistent with its watermark.
#[test]
fn no_silent_drops_and_watermark_consistent_rejections() {
    check(
        "admission ledger",
        &Config::with_cases(64),
        gen_case,
        |case| {
            let Some((name, machines, cfg, instance)) = build_case(case) else {
                return Ok(());
            };
            let queue_watermark = cfg.queue_watermark;
            let load_watermark = cfg.load_watermark;
            let epoch = cfg.epoch;
            let had_faults = !cfg.fault_plan.is_empty();
            let policy = online_policy_by_name(name, &instance, machines)
                .expect("registry resolves comparison names");
            let mut service = Service::new(
                instance.clone(),
                policy,
                cfg,
                SimClock::new(),
                MemorySink::default(),
            )
            .expect("valid service config");
            let mut order: Vec<JobId> = instance.jobs().iter().map(|j| j.id).collect();
            order.sort_by(|&a, &b| {
                instance
                    .job(a)
                    .release
                    .total_cmp(&instance.job(b).release)
                    .then(a.cmp(&b))
            });
            let mut live_results = Vec::new();
            for job in order {
                let admission = service
                    .submit_at(instance.job(job).release, job)
                    .map_err(|e| format!("{name} service: {e}"))?;
                live_results.push((job, admission));
            }
            let (report, sink) = service.drain().map_err(|e| format!("{name} drain: {e}"))?;

            // The ledger partitions: every job Completed or Rejected.
            let mut completed = 0usize;
            let mut rejected = 0usize;
            for (i, outcome) in report.outcomes.iter().enumerate() {
                match outcome {
                    JobOutcome::Completed => completed += 1,
                    JobOutcome::Rejected(err) => {
                        rejected += 1;
                        match *err {
                            AdmissionError::QueueFull { depth, watermark } => {
                                prop_assert_eq!(watermark, queue_watermark, "j{i} watermark");
                                prop_assert!(depth >= watermark, "j{i}: depth below watermark");
                            }
                            AdmissionError::DemandInfeasible { budget, queued, .. } => {
                                prop_assert!(
                                    load_watermark.is_finite(),
                                    "j{i}: load shed with shedding disabled"
                                );
                                let expect = load_watermark * machines as f64;
                                prop_assert_eq!(budget.to_bits(), expect.to_bits(), "j{i} budget");
                                prop_assert!(queued >= 0.0 && queued <= budget, "j{i} queued");
                            }
                            AdmissionError::TenantQuota { .. } => {
                                return Err(format!(
                                    "j{i}: tenant quota fired on a single-tenant service"
                                ));
                            }
                        }
                        // Rejected jobs were never scheduled.
                        prop_assert!(
                            report.schedule.get(JobId(i as u32)).is_none(),
                            "j{i} rejected yet scheduled"
                        );
                    }
                    JobOutcome::NotSubmitted | JobOutcome::Accepted => {
                        return Err(format!("j{i} silently dropped: {outcome:?}"));
                    }
                }
            }
            prop_assert_eq!(completed + rejected, instance.len(), "ledger partition");

            // The live admission results agree with the final ledger.
            for (job, admission) in live_results {
                match (admission, report.outcomes[job.index()]) {
                    (Ok(()), JobOutcome::Completed) => {}
                    (Err(a), JobOutcome::Rejected(b)) if a == b => {}
                    (a, b) => return Err(format!("{job}: live {a:?} vs ledger {b:?}")),
                }
            }

            // Accepted jobs respect epoch delivery: no start before the
            // first epoch boundary at or after the release.
            if epoch > 0.0 {
                for a in report.schedule.assignments() {
                    let release = instance.job(a.job).release;
                    let deliver = (release / epoch).ceil() * epoch;
                    prop_assert!(
                        a.start >= deliver - 1e-9,
                        "{} started {} before its delivery epoch {deliver}",
                        a.job,
                        a.start
                    );
                }
            }

            // Summary bookkeeping adds up, and the fault log is sound.
            let s = &report.summary;
            prop_assert_eq!(s.submitted, instance.len(), "submitted");
            prop_assert_eq!(s.accepted, completed, "accepted == completed");
            prop_assert_eq!(
                s.rejected_queue_full + s.rejected_infeasible,
                rejected,
                "rejection split"
            );
            prop_assert!(s.max_queue_depth <= queue_watermark, "depth over watermark");
            prop_assert_eq!(s.epochs, sink.epochs.len(), "epoch count vs sink");
            if !had_faults {
                prop_assert_eq!(s.failures, 0usize, "phantom failures");
            }
            report
                .log
                .verify()
                .map_err(|v| format!("{name}: fault-log violation: {v}"))?;

            // Telemetry is monotone where it must be.
            for w in sink.epochs.windows(2) {
                prop_assert!(w[0].time <= w[1].time, "epoch time regression");
                prop_assert!(
                    w[0].rejections_total <= w[1].rejections_total,
                    "rejection counter regression"
                );
            }
            Ok(())
        },
    );
}

/// A watermark of `usize::MAX` and infinite load budget never reject, and
/// a tiny queue with clustered arrivals must reject — the watermark is
/// live, not decorative.
#[test]
fn watermarks_actually_bind() {
    // 8 jobs all released at t = 0 into a queue of depth 2: exactly 2 are
    // admitted (the queue drains only at delivery events), 6 are shed.
    let jobs: Vec<Job> = (0..8)
        .map(|i| Job::from_fractions(JobId(i), 0.0, 2.0, 1.0, &[0.4]))
        .collect();
    let instance = Instance::new(jobs, 1).unwrap();
    let mut cfg = ServiceConfig::new(2);
    cfg.queue_watermark = 2;
    let policy = online_policy_by_name("tetris", &instance, 2).unwrap();
    let mut service = Service::new(
        instance.clone(),
        policy,
        cfg,
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    let mut accepted = 0;
    for j in instance.jobs() {
        if service.submit_at(j.release, j.id).unwrap().is_ok() {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 2, "queue watermark admitted too many");
    let (report, _) = service.drain().unwrap();
    assert_eq!(report.summary.completed, 2);
    assert_eq!(report.summary.rejected_queue_full, 6);

    // The permissive default accepts everything.
    let policy = online_policy_by_name("tetris", &instance, 2).unwrap();
    let mut service = Service::new(
        instance.clone(),
        policy,
        ServiceConfig::new(2),
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    for j in instance.jobs() {
        service.submit_at(j.release, j.id).unwrap().unwrap();
    }
    let (report, _) = service.drain().unwrap();
    assert_eq!(report.summary.completed, 8);
    assert_eq!(report.summary.rejected_queue_full, 0);
}

/// Load shedding rejects exactly the submissions whose demand would push
/// queued load past the budget, with a typed error naming the resource.
#[test]
fn load_watermark_sheds_by_resource() {
    // Budget: 0.5 * 1 machine = 0.5 capacity of queued demand. Jobs demand
    // 0.3 each: the first queues, the second would reach 0.6 > 0.5.
    let jobs: Vec<Job> = (0..3)
        .map(|i| Job::from_fractions(JobId(i), 0.0, 1.0, 1.0, &[0.3]))
        .collect();
    let instance = Instance::new(jobs, 1).unwrap();
    let mut cfg = ServiceConfig::new(1);
    cfg.load_watermark = 0.5;
    let policy = online_policy_by_name("tetris", &instance, 1).unwrap();
    let mut service = Service::new(
        instance.clone(),
        policy,
        cfg,
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    assert!(service.submit_at(0.0, JobId(0)).unwrap().is_ok());
    let err = service.submit_at(0.0, JobId(1)).unwrap().unwrap_err();
    match err {
        AdmissionError::DemandInfeasible {
            job,
            resource,
            queued,
            budget,
        } => {
            assert_eq!(job, JobId(1));
            assert_eq!(resource, 0);
            assert!((queued - 0.3).abs() < 1e-9, "queued {queued}");
            assert!((budget - 0.5).abs() < 1e-9, "budget {budget}");
        }
        other => panic!("expected DemandInfeasible, got {other:?}"),
    }
    let (report, _) = service.drain().unwrap();
    assert_eq!(report.summary.rejected_infeasible, 1);
    // Job 2 was never submitted; its slot says so.
    assert!(matches!(report.outcomes[2], JobOutcome::NotSubmitted));
    assert_eq!(report.summary.completed, 1);
}

/// A completion and a failure striking the same machine at the same tick
/// compose in that order: the finishing job survives — never re-released —
/// and the service surfaces no `UnassignedCompletion`. This pins the
/// completions-before-faults event ordering that the typed error in
/// `process_event` now guards (the old code `expect`ed the assignment and
/// aborted the process if the ordering ever regressed).
#[test]
fn same_tick_completion_beats_failure() {
    use mris_sim::FaultPlan as Plan;
    use mris_types::{FaultEvent, FaultTarget};
    // One machine: job 0 runs [0, 2) and finishes exactly when the strike
    // lands at t = 2; job 1 arrives mid-run and rides out the downtime.
    let jobs = vec![
        Job::from_fractions(JobId(0), 0.0, 2.0, 1.0, &[0.9]),
        Job::from_fractions(JobId(1), 0.5, 1.0, 1.0, &[0.9]),
    ];
    let instance = Instance::new(jobs, 1).unwrap();
    let mut cfg = ServiceConfig::new(1);
    cfg.fault_plan = Plan::from_events(vec![FaultEvent {
        at: 2.0,
        downtime: 1.0,
        target: FaultTarget::Machine(0),
    }]);
    let policy = online_policy_by_name("tetris", &instance, 1).unwrap();
    let mut service = Service::new(
        instance.clone(),
        policy,
        cfg,
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config");
    for j in instance.jobs() {
        let admission = service
            .submit_at(j.release, j.id)
            .expect("same-tick completion + failure must not error");
        assert!(admission.is_ok(), "{:?} rejected", j.id);
    }
    let (report, _sink) = service
        .drain()
        .expect("same-tick completion + failure must not error");
    assert!(matches!(report.outcomes[0], JobOutcome::Completed));
    assert!(matches!(report.outcomes[1], JobOutcome::Completed));
    assert_eq!(
        report.log.re_releases[0], 0,
        "the finishing job must not be re-released by the same-tick failure"
    );
    assert_eq!(report.summary.failures, 1, "the strike itself still lands");
    assert!(
        report
            .log
            .completions
            .iter()
            .any(|c| c.job == JobId(0) && c.end == 2.0),
        "job 0's completion at the strike instant is recorded"
    );
    report.log.verify().expect("audit log stays sound");
}
