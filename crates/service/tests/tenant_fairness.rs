//! Multi-tenant admission properties: per-tenant quota gates fire typed,
//! deficit-round-robin fair admission splits contended demand by weight,
//! and a configured-but-unconstrained tenant table never changes
//! scheduling (multi-tenant bookkeeping is observation-only until a
//! quota is set).

use mris_core::registry::online_policy_by_name;
use mris_service::{
    JobOutcome, MemorySink, NullSink, Service, ServiceConfig, ServiceReport, SimClock, TenantSpec,
};
use mris_types::{AdmissionError, Instance, Job, JobId, TenantId, TenantQuotaKind};

/// `n` identical unit jobs, one resource, demand `demand`, released at
/// `spacing * i`.
fn uniform_instance(n: usize, demand: f64, spacing: f64) -> Instance {
    let jobs = (0..n)
        .map(|i| Job::from_fractions(JobId(0), spacing * i as f64, 1.0, 1.0, &[demand]))
        .collect();
    Instance::from_unnumbered(jobs, 1).expect("valid instance")
}

fn service(instance: &Instance, cfg: ServiceConfig) -> Service<SimClock, MemorySink> {
    let policy =
        online_policy_by_name("pq-wsjf", instance, cfg.num_machines).expect("known policy");
    Service::new(
        instance.clone(),
        policy,
        cfg,
        SimClock::new(),
        MemorySink::default(),
    )
    .expect("valid service config")
}

/// The per-tenant queue-depth watermark sheds the tenant's own overflow
/// while the global queue still has room.
#[test]
fn tenant_queue_watermark_sheds_typed() {
    let instance = uniform_instance(6, 0.4, 10.0);
    let cfg = ServiceConfig::builder(1)
        .tenants(vec![
            TenantSpec::new("small", "s", 1.0).queue_watermark(2),
            TenantSpec::new("big", "b", 1.0),
        ])
        .build()
        .expect("valid");
    let mut svc = service(&instance, cfg);
    // Releases are far out, so admitted jobs stand in the queue.
    assert!(svc
        .submit_at_as(0.0, JobId(0), TenantId(0))
        .unwrap()
        .is_ok());
    assert!(svc
        .submit_at_as(0.0, JobId(1), TenantId(0))
        .unwrap()
        .is_ok());
    match svc.submit_at_as(0.0, JobId(2), TenantId(0)).unwrap() {
        Err(AdmissionError::TenantQuota {
            tenant,
            kind: TenantQuotaKind::QueueDepth { depth, watermark },
        }) => {
            assert_eq!(tenant, TenantId(0));
            assert_eq!(depth, 2);
            assert_eq!(watermark, 2);
        }
        other => panic!("expected tenant queue-depth shed, got {other:?}"),
    }
    // The other tenant is untouched by its neighbor's watermark.
    assert!(svc
        .submit_at_as(0.0, JobId(3), TenantId(1))
        .unwrap()
        .is_ok());
    let (report, _) = svc.drain().expect("drain");
    assert_eq!(report.tenants[0].rejected, 1);
    assert_eq!(report.tenants[0].admitted, 2);
    assert_eq!(report.tenants[1].admitted, 1);
}

/// The per-tenant queued-demand budget sheds typed with the observed
/// queued fraction and budget.
#[test]
fn tenant_demand_budget_sheds_typed() {
    let instance = uniform_instance(4, 0.4, 10.0);
    let cfg = ServiceConfig::builder(1)
        .tenants(vec![
            TenantSpec::new("capped", "c", 1.0).load_watermark(0.5),
            TenantSpec::new("free", "f", 1.0),
        ])
        .build()
        .expect("valid");
    let mut svc = service(&instance, cfg);
    assert!(svc
        .submit_at_as(0.0, JobId(0), TenantId(0))
        .unwrap()
        .is_ok());
    match svc.submit_at_as(0.0, JobId(1), TenantId(0)).unwrap() {
        Err(AdmissionError::TenantQuota {
            tenant,
            kind: TenantQuotaKind::QueuedDemand { queued, budget },
        }) => {
            assert_eq!(tenant, TenantId(0));
            assert!(queued > 0.0 && budget > 0.0 && queued + 0.4 > budget);
        }
        other => panic!("expected tenant demand shed, got {other:?}"),
    }
    // The uncapped tenant still fits under the global watermark.
    assert!(svc
        .submit_at_as(0.0, JobId(2), TenantId(1))
        .unwrap()
        .is_ok());
    let (report, _) = svc.drain().expect("drain");
    assert_eq!(report.tenants[0].rejected, 1);
}

/// Drives a contended 2-tenant run: both tenants offer the same load far
/// above capacity (submissions lead releases by `lead`, so the queue
/// stands above the fair watermark) and the DRR gate splits admitted
/// demand by weight. Returns the drained report.
fn contended_run(weight_a: f64, weight_b: f64, jobs: usize) -> ServiceReport {
    let spacing = 0.05; // 20 jobs/time offered vs 4 jobs/time capacity
    let lead = 2.0;
    let instance = uniform_instance(jobs, 0.5, spacing);
    let cfg = ServiceConfig::builder(2)
        .tenants(vec![
            TenantSpec::new("alpha", "a", weight_a),
            TenantSpec::new("beta", "b", weight_b),
        ])
        .fair_watermark(4)
        .build()
        .expect("valid");
    let policy = online_policy_by_name("pq-wsjf", &instance, 2).expect("known policy");
    let mut svc = Service::new(instance.clone(), policy, cfg, SimClock::new(), NullSink)
        .expect("valid service config");
    for job in instance.jobs() {
        let tenant = TenantId(job.id.0 % 2);
        let at = (job.release - lead).max(0.0);
        let _ = svc.submit_at_as(at, job.id, tenant).expect("no violation");
    }
    let (report, _) = svc.drain().expect("drain");
    report
}

/// The acceptance pin: a 3:1 weighted contended run splits admitted
/// demand within 5 points of the configured 75/25 share.
#[test]
fn weighted_fair_split_tracks_weights() {
    let report = contended_run(3.0, 1.0, 400);
    let a = &report.tenants[0];
    let b = &report.tenants[1];
    // Contention was real: both tenants were shed by the fair gate.
    assert!(a.rejected > 0, "alpha never shed — no contention");
    assert!(b.rejected > 0, "beta never shed — no contention");
    let total = (a.admitted_cost + b.admitted_cost) as f64;
    let share_a = a.admitted_cost as f64 / total;
    assert!(
        (share_a - 0.75).abs() <= 0.05,
        "alpha share {share_a:.3} strays from 0.75 by more than 5 points \
         (alpha {} ticks, beta {} ticks)",
        a.admitted_cost,
        b.admitted_cost
    );
    // Every admitted job completed; the ledger partition holds.
    assert_eq!(report.summary.accepted, report.summary.completed);
}

/// Equal weights split admitted demand evenly under the same contention.
#[test]
fn equal_weights_split_evenly() {
    let report = contended_run(1.0, 1.0, 400);
    let a = &report.tenants[0];
    let b = &report.tenants[1];
    let total = (a.admitted_cost + b.admitted_cost) as f64;
    let share_a = a.admitted_cost as f64 / total;
    assert!(
        (share_a - 0.5).abs() <= 0.05,
        "equal-weight share {share_a:.3} strays from 0.5"
    );
}

/// A tenant table with no quotas and the fair gate off never changes
/// scheduling: the run is bit-identical to the tenantless service (the
/// single-tenant conservativity property, extended to "configured but
/// unconstrained").
#[test]
fn unconstrained_tenants_do_not_change_scheduling() {
    let instance = uniform_instance(30, 0.4, 0.3);
    let bare = {
        let mut svc = service(&instance, ServiceConfig::new(2));
        for job in instance.jobs() {
            let _ = svc.submit_at(job.release, job.id).expect("no violation");
        }
        svc.drain().expect("drain").0
    };
    let tenanted = {
        let cfg = ServiceConfig::builder(2)
            .tenants(vec![TenantSpec::new("only", "tok", 1.0)])
            .build()
            .expect("valid");
        let mut svc = service(&instance, cfg);
        for job in instance.jobs() {
            let _ = svc
                .submit_at_as(job.release, job.id, TenantId(0))
                .expect("no violation");
        }
        svc.drain().expect("drain").0
    };
    assert_eq!(bare.schedule, tenanted.schedule);
    assert_eq!(bare.outcomes, tenanted.outcomes);
    assert_eq!(
        bare.summary.awct.to_bits(),
        tenanted.summary.awct.to_bits(),
        "AWCT bits diverged"
    );
    assert!(bare.tenants.is_empty());
    assert_eq!(tenanted.tenants.len(), 1);
    assert_eq!(tenanted.tenants[0].admitted as usize, instance.len());
    for o in &tenanted.outcomes {
        assert!(matches!(o, JobOutcome::Completed));
    }
}

/// Tenant configs are validated: empty names, bad weights, duplicate
/// names, and a zero queue watermark are typed [`ConfigError`]s.
#[test]
fn tenant_config_validation() {
    for bad in [
        vec![TenantSpec::new("", "t", 1.0)],
        vec![TenantSpec::new("a", "t", 0.0)],
        vec![TenantSpec::new("a", "t", f64::NAN)],
        vec![TenantSpec::new("a", "t", -1.0)],
        vec![
            TenantSpec::new("dup", "t1", 1.0),
            TenantSpec::new("dup", "t2", 1.0),
        ],
        vec![TenantSpec::new("a", "t", 1.0).queue_watermark(0)],
    ] {
        assert!(
            ServiceConfig::builder(2)
                .tenants(bad.clone())
                .build()
                .is_err(),
            "invalid tenant table accepted: {bad:?}"
        );
    }
}
