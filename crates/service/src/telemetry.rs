//! Structured service telemetry: one JSONL record per decision event plus
//! an end-of-run summary.
//!
//! The event loop reports through the [`TelemetrySink`] trait so the hot
//! path never formats strings unless a sink asks for them:
//! [`JsonlSink`] streams newline-delimited JSON to any writer,
//! [`MemorySink`] retains records for tests, and [`NullSink`] discards.

use std::io::Write;

use mris_metrics::Percentiles;
use mris_types::Time;

/// One processed service event (a "tick" of the decision loop): what
/// arrived, what was placed, and how long the policy took to decide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Decision-event counter (0-based, monotone).
    pub epoch: usize,
    /// Service time of the event.
    pub time: Time,
    /// Admitted submissions still waiting for delivery after this event.
    pub queue_depth: usize,
    /// Jobs announced to the policy at this event (original submissions).
    pub arrivals: usize,
    /// Fault-killed jobs re-announced at this event.
    pub re_releases: usize,
    /// Jobs started on the cluster at this event.
    pub placements: usize,
    /// Jobs that completed at this event.
    pub completions: usize,
    /// Jobs running across the cluster after the event.
    pub running: usize,
    /// Cumulative rejected submissions so far.
    pub rejections_total: usize,
    /// Wall-clock nanoseconds the policy spent deciding this event
    /// (arrival announcement + dispatch).
    pub decision_ns: u64,
}

impl EpochRecord {
    /// The record as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"event\": \"epoch\", \"epoch\": {}, \"t\": {:.6}, \"queue_depth\": {}, ",
                "\"arrivals\": {}, \"re_releases\": {}, \"placements\": {}, ",
                "\"completions\": {}, \"running\": {}, \"rejections_total\": {}, ",
                "\"decision_ns\": {}}}"
            ),
            self.epoch,
            self.time,
            self.queue_depth,
            self.arrivals,
            self.re_releases,
            self.placements,
            self.completions,
            self.running,
            self.rejections_total,
            self.decision_ns,
        )
    }
}

/// End-of-run accounting: the admission ledger, objective values over the
/// completed jobs, and the decision-latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Total submissions offered to the admission controller.
    pub submitted: usize,
    /// Submissions accepted (all of these completed — enforced at drain).
    pub accepted: usize,
    /// Submissions shed at the queue-depth watermark.
    pub rejected_queue_full: usize,
    /// Submissions shed at the resource-load watermark.
    pub rejected_infeasible: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Decision events processed.
    pub epochs: usize,
    /// Largest queue depth observed at any admission decision.
    pub max_queue_depth: usize,
    /// Machine failures replayed during the run.
    pub failures: usize,
    /// Average weighted completion time over the *completed* jobs,
    /// normalized by the completed count (rejected jobs are excluded — the
    /// service never scheduled them).
    pub awct: f64,
    /// Completion time of the last job (0 when nothing completed).
    pub makespan: Time,
    /// Service time at drain.
    pub drained_at: Time,
    /// Wall seconds from construction to drain.
    pub wall_seconds: f64,
    /// Completed jobs per wall second (sustained throughput).
    pub throughput_jobs_per_sec: f64,
    /// p50/p95/p99 of per-event decision latency, microseconds. `None`
    /// when no events were processed.
    pub decision_latency_us: Option<Percentiles>,
}

impl ServiceSummary {
    /// The summary as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let latency = match &self.decision_latency_us {
            Some(p) => format!(
                "{{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}",
                p.p50, p.p95, p.p99
            ),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"event\": \"summary\", \"submitted\": {}, \"accepted\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_infeasible\": {}, ",
                "\"completed\": {}, \"epochs\": {}, \"max_queue_depth\": {}, ",
                "\"failures\": {}, \"awct\": {:.6}, \"makespan\": {:.6}, ",
                "\"drained_at\": {:.6}, \"wall_seconds\": {:.6}, ",
                "\"throughput_jobs_per_sec\": {:.3}, \"decision_latency_us\": {}}}"
            ),
            self.submitted,
            self.accepted,
            self.rejected_queue_full,
            self.rejected_infeasible,
            self.completed,
            self.epochs,
            self.max_queue_depth,
            self.failures,
            self.awct,
            self.makespan,
            self.drained_at,
            self.wall_seconds,
            self.throughput_jobs_per_sec,
            latency,
        )
    }
}

/// Receiver for service telemetry. Sinks must be cheap when idle; the
/// event loop calls [`TelemetrySink::epoch`] once per decision event.
pub trait TelemetrySink {
    /// One decision event was processed.
    fn epoch(&mut self, record: &EpochRecord);

    /// The service drained; no further records follow.
    fn summary(&mut self, summary: &ServiceSummary);
}

/// Discards everything (benchmarks measuring the loop itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn epoch(&mut self, _record: &EpochRecord) {}
    fn summary(&mut self, _summary: &ServiceSummary) {}
}

/// Retains every record in memory (tests and post-run analysis).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Every epoch record, in order.
    pub epochs: Vec<EpochRecord>,
    /// The final summary, when the service drained.
    pub summary: Option<ServiceSummary>,
}

impl TelemetrySink for MemorySink {
    fn epoch(&mut self, record: &EpochRecord) {
        self.epochs.push(*record);
    }

    fn summary(&mut self, summary: &ServiceSummary) {
        self.summary = Some(summary.clone());
    }
}

/// Streams newline-delimited JSON to a writer; panics are avoided by
/// surfacing I/O errors on [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the writer, or the first I/O error encountered.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn epoch(&mut self, record: &EpochRecord) {
        self.write_line(&record.to_json());
    }

    fn summary(&mut self, summary: &ServiceSummary) {
        self.write_line(&summary.to_json());
    }
}

/// Mirrors telemetry into the process-wide observability layer while
/// forwarding every record **unchanged** to the wrapped sink.
///
/// This is how the service's legacy JSONL telemetry is re-homed onto
/// `mris-obs`: wrap the existing sink (`JsonlSink`, `MemorySink`, …) in an
/// `ObsBridge` and each epoch/summary also becomes a structured event on
/// the installed [`mris_obs::EventSink`]. The wrapped sink sees exactly the
/// bytes it would have seen without the bridge, and when no obs subscriber
/// is installed the bridge costs one relaxed atomic load per record.
#[derive(Debug)]
pub struct ObsBridge<S> {
    inner: S,
}

impl<S: TelemetrySink> ObsBridge<S> {
    /// Wraps `inner`, leaving its output byte-identical.
    pub fn new(inner: S) -> Self {
        ObsBridge { inner }
    }

    /// Unwraps the bridge, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TelemetrySink> TelemetrySink for ObsBridge<S> {
    fn epoch(&mut self, record: &EpochRecord) {
        self.inner.epoch(record);
        if !mris_obs::enabled() {
            return;
        }
        mris_obs::with(|obs| {
            let mut event = mris_obs::Event::new("service_epoch");
            event.push("epoch", mris_obs::FieldValue::from(record.epoch));
            event.push("t", mris_obs::FieldValue::from(record.time));
            event.push(
                "queue_depth",
                mris_obs::FieldValue::from(record.queue_depth),
            );
            event.push("arrivals", mris_obs::FieldValue::from(record.arrivals));
            event.push(
                "re_releases",
                mris_obs::FieldValue::from(record.re_releases),
            );
            event.push("placements", mris_obs::FieldValue::from(record.placements));
            event.push(
                "completions",
                mris_obs::FieldValue::from(record.completions),
            );
            event.push("running", mris_obs::FieldValue::from(record.running));
            event.push(
                "rejections_total",
                mris_obs::FieldValue::from(record.rejections_total),
            );
            event.push(
                "decision_ns",
                mris_obs::FieldValue::from(record.decision_ns),
            );
            obs.emit(&event);
        });
    }

    fn summary(&mut self, summary: &ServiceSummary) {
        self.inner.summary(summary);
        if !mris_obs::enabled() {
            return;
        }
        mris_obs::with(|obs| {
            let mut event = mris_obs::Event::new("service_summary");
            event.push("submitted", mris_obs::FieldValue::from(summary.submitted));
            event.push("accepted", mris_obs::FieldValue::from(summary.accepted));
            event.push(
                "rejected_queue_full",
                mris_obs::FieldValue::from(summary.rejected_queue_full),
            );
            event.push(
                "rejected_infeasible",
                mris_obs::FieldValue::from(summary.rejected_infeasible),
            );
            event.push("completed", mris_obs::FieldValue::from(summary.completed));
            event.push("epochs", mris_obs::FieldValue::from(summary.epochs));
            event.push("failures", mris_obs::FieldValue::from(summary.failures));
            event.push("awct", mris_obs::FieldValue::from(summary.awct));
            event.push("makespan", mris_obs::FieldValue::from(summary.makespan));
            obs.emit(&event);
            obs.flush();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> EpochRecord {
        EpochRecord {
            epoch: 3,
            time: 1.5,
            queue_depth: 2,
            arrivals: 4,
            re_releases: 1,
            placements: 3,
            completions: 2,
            running: 5,
            rejections_total: 7,
            decision_ns: 1_234,
        }
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.epoch(&record());
        sink.summary(&ServiceSummary {
            submitted: 10,
            accepted: 8,
            rejected_queue_full: 1,
            rejected_infeasible: 1,
            completed: 8,
            epochs: 4,
            max_queue_depth: 3,
            failures: 0,
            awct: 12.5,
            makespan: 9.0,
            drained_at: 9.0,
            wall_seconds: 0.5,
            throughput_jobs_per_sec: 16.0,
            decision_latency_us: Some(Percentiles {
                p50: 1.0,
                p95: 2.0,
                p99: 3.0,
            }),
        });
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\": \"epoch\""), "{}", lines[0]);
        assert!(lines[0].contains("\"decision_ns\": 1234"));
        assert!(lines[1].contains("\"event\": \"summary\""));
        assert!(lines[1].contains("\"p99\": 3.000"));
        // Every line is a single JSON object.
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn memory_sink_retains_records() {
        let mut sink = MemorySink::default();
        sink.epoch(&record());
        sink.epoch(&record());
        assert_eq!(sink.epochs.len(), 2);
        assert!(sink.summary.is_none());
    }

    #[test]
    fn summary_without_latency_serializes_null() {
        let s = ServiceSummary {
            submitted: 0,
            accepted: 0,
            rejected_queue_full: 0,
            rejected_infeasible: 0,
            completed: 0,
            epochs: 0,
            max_queue_depth: 0,
            failures: 0,
            awct: 0.0,
            makespan: 0.0,
            drained_at: 0.0,
            wall_seconds: 0.0,
            throughput_jobs_per_sec: 0.0,
            decision_latency_us: None,
        };
        assert!(s.to_json().contains("\"decision_latency_us\": null"));
    }
}
