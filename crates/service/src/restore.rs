//! Crash recovery: rebuilding a [`Service`] from its journal (and an
//! optional snapshot) with bit-for-bit equivalence to the uncrashed run.
//!
//! # Replay-from-genesis
//!
//! The service event loop is deterministic given its inputs — the
//! instance, the configuration, and the timed sequence of admission
//! offers. [`Service::restore`] therefore replays the journal's *input*
//! records (`Admit`, `Reject`, `Event`) through a fresh service and
//! policy; every *derived* record (`Place`, `Complete`, `Fail`,
//! `Recover`, `ReRelease`, `PrecedenceReady`, `SnapshotMark`) the replay produces is
//! compared against the journal instead of re-appended. Any mismatch is a
//! typed [`RestoreError::Divergence`]: a journal written by a different
//! build, configuration, or policy can never silently restore into a
//! different schedule. When replay passes a snapshot's sequence number it
//! re-derives the full canonical state and byte-compares it against the
//! stored snapshot, so every snapshot is an end-to-end consistency check
//! on top of the record-level trail.
//!
//! # Torn tails and degraded mode
//!
//! In the default lenient mode a torn final frame (the write the crash
//! interrupted) is dropped and replay simply regenerates the lost
//! records; the continuation is identical to the uncrashed run because
//! the inputs up to the cut are identical. If the journal tail after a
//! snapshot is lost entirely, [`RestoreOptions::outage`] degrades the
//! recovery to machine-failure semantics: every machine synthetically
//! fails at the outage instant, killing (re-releasing) whatever was
//! running — exactly the fault model of the chaos driver.

use mris_sim::{FaultPlan, OnlinePolicy};
use mris_types::{
    CodecError, FaultEvent, FaultTarget, Instance, JobId, RestoreError, TenantId, Time,
};

use crate::clock::Clock;
use crate::core::{JobOutcome, Service, ServiceConfig};
use crate::journal::{
    config_fingerprint, parse_journal, read_valid_prefix, Durability, DurabilityConfig,
    DurabilitySink, JournalRecord, ReplayVerifier,
};
use crate::snapshot::Snapshot;
use crate::telemetry::TelemetrySink;

/// A real-world outage window for degraded (journal-loss) recovery: every
/// machine is treated as failed at `at` and recovers `downtime` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// When the outage struck. Must be after the last replayed record.
    pub at: Time,
    /// How long the machines stay down.
    pub downtime: Time,
}

/// Knobs for [`Service::restore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreOptions {
    /// Reject a torn final frame instead of dropping it. Off by default:
    /// a torn tail is the expected signature of a crash mid-write.
    pub strict: bool,
    /// Degraded-mode outage to apply after replay (see [`Outage`]).
    pub outage: Option<Outage>,
}

/// What a restore did, for operators and the crash suite.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreReport {
    /// Records in the surviving (valid-prefix) journal.
    pub records: u64,
    /// Derived records replay produced past the journal's end — the
    /// regenerated torn tail.
    pub regenerated: u64,
    /// Bytes dropped from the journal's torn tail (lenient mode).
    pub torn_tail_bytes: usize,
    /// The decode error that terminated the lenient scan, if any.
    pub tail_error: Option<CodecError>,
    /// The sequence number of the snapshot that was byte-verified during
    /// replay, if a snapshot was supplied and reached.
    pub snapshot_verified: Option<u64>,
    /// Whether the journal ends with a clean [`JournalRecord::Close`].
    pub clean_shutdown: bool,
    /// Service time replay resumed at (`-inf` for an empty journal).
    pub resumed_at: Time,
    /// Wall-clock seconds the restore took.
    pub restore_seconds: f64,
}

impl<C: Clock, S: TelemetrySink> Service<C, S> {
    /// Rebuilds a service from `journal` (and optionally `snapshot`),
    /// replaying every recorded input through a fresh `policy` and
    /// verifying every derived record against the journal. On success the
    /// returned service stands exactly where the original stood at its
    /// last flushed record and can be driven forward normally. The
    /// restored service carries no journal — re-attach via
    /// [`Service::attach_journal`] semantics is intentionally not implied,
    /// because journaling never affects scheduling decisions.
    ///
    /// `instance`, `cfg`, and `dcfg` must be the original run's; the
    /// journal's configuration fingerprint is checked against them before
    /// anything is replayed.
    ///
    /// # Errors
    ///
    /// Typed [`RestoreError`]s for every failure mode: unreadable or
    /// mismatched artifacts, replay divergence, snapshot/state mismatch,
    /// and degraded-mode misuse. Restore never panics on corrupt input.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        instance: Instance,
        policy: Box<dyn OnlinePolicy>,
        cfg: ServiceConfig,
        dcfg: DurabilityConfig,
        clock: C,
        sink: S,
        journal: &[u8],
        snapshot: Option<&[u8]>,
        opts: RestoreOptions,
    ) -> Result<(Self, RestoreReport), RestoreError> {
        let started = std::time::Instant::now();
        let (parsed, torn_tail_bytes, tail_error) = if opts.strict {
            let parsed = parse_journal(journal).map_err(RestoreError::Journal)?;
            (parsed, 0, None)
        } else {
            let (parsed, valid, tail_error) =
                read_valid_prefix(journal).map_err(RestoreError::Journal)?;
            (parsed, journal.len() - valid, tail_error)
        };
        let expected_fp = config_fingerprint(&instance, &cfg, &dcfg);
        if parsed.fingerprint != expected_fp {
            return Err(RestoreError::FingerprintMismatch {
                stored: parsed.fingerprint,
                expected: expected_fp,
            });
        }
        let snapshot = match snapshot {
            Some(bytes) => {
                let snap = Snapshot::decode(bytes).map_err(RestoreError::Snapshot)?;
                if snap.fingerprint != expected_fp {
                    return Err(RestoreError::FingerprintMismatch {
                        stored: snap.fingerprint,
                        expected: expected_fp,
                    });
                }
                if snap.lsn > parsed.records.len() as u64 {
                    return Err(RestoreError::JournalBehindSnapshot {
                        lsn: snap.lsn,
                        records: parsed.records.len() as u64,
                    });
                }
                Some(snap)
            }
            None => None,
        };

        // Degraded mode: bolt the outage onto the fault plan as synthetic
        // whole-cluster failures *before* construction (the fault queue is
        // seeded from the plan), after checking it cannot rewrite
        // already-journaled history.
        let mut run_cfg = cfg;
        if let Some(outage) = opts.outage {
            let horizon = parsed
                .records
                .iter()
                .rev()
                .find_map(|r| match *r {
                    JournalRecord::Admit { at, .. }
                    | JournalRecord::Reject { at, .. }
                    | JournalRecord::Event { at }
                    | JournalRecord::Close { at } => Some(at),
                    _ => None,
                })
                .unwrap_or(f64::NEG_INFINITY);
            if outage.at <= horizon {
                return Err(RestoreError::OutageTooEarly {
                    at: outage.at,
                    resumed_at: horizon,
                });
            }
            let mut events = run_cfg.fault_plan.events().to_vec();
            for m in 0..run_cfg.num_machines {
                events.push(FaultEvent {
                    at: outage.at,
                    downtime: outage.downtime,
                    target: FaultTarget::Machine(m),
                });
            }
            run_cfg.fault_plan = FaultPlan::from_events(events);
        }

        let num_jobs = instance.len();
        let mut svc = Service::new(instance, policy, run_cfg, clock, sink)?;
        svc.dur = Some(Box::new(Durability::new(
            dcfg,
            expected_fp,
            DurabilitySink::Verify(ReplayVerifier::new(parsed.records.clone(), snapshot)),
        )));

        // Drive replay: at each step the verifier's cursor points at the
        // next unconsumed record; input records are re-executed (their
        // emissions advance the cursor), derived records are consumed by
        // those emissions. A derived record *at* the cursor means replay
        // failed to produce it — divergence.
        let records = parsed.records;
        let mut clean_shutdown = false;
        loop {
            let (cursor, diverged) = {
                let d = svc.dur.as_ref().expect("verifier attached above");
                match &d.sink {
                    DurabilitySink::Verify(v) => (v.cursor, v.divergence.clone()),
                    DurabilitySink::Journal { .. } => unreachable!("restore uses a verifier"),
                }
            };
            if let Some(err) = diverged {
                return Err(err);
            }
            if cursor >= records.len() {
                break;
            }
            match records[cursor] {
                JournalRecord::Admit { at, job, tenant }
                | JournalRecord::Reject {
                    at, job, tenant, ..
                } => {
                    if job as usize >= num_jobs
                        || !matches!(svc.outcomes[job as usize], JobOutcome::NotSubmitted)
                    {
                        return Err(RestoreError::Divergence {
                            lsn: cursor as u64,
                            detail: format!("journal offers unknown or duplicate job {job}"),
                        });
                    }
                    if tenant as usize >= svc.cfg.tenants.len().max(1) {
                        return Err(RestoreError::Divergence {
                            lsn: cursor as u64,
                            detail: format!("journal names unknown tenant {tenant}"),
                        });
                    }
                    // The decision is re-derived; the emission it triggers
                    // is checked against this very record by the verifier.
                    let _ = svc.replay_admit(at, JobId(job), TenantId(tenant));
                }
                JournalRecord::Event { at } => {
                    svc.replay_event(at)?;
                }
                JournalRecord::Close { .. } => {
                    clean_shutdown = true;
                    if let Some(d) = svc.dur.as_deref_mut() {
                        if let DurabilitySink::Verify(v) = &mut d.sink {
                            v.cursor += 1;
                        }
                    }
                    break;
                }
                ref derived => {
                    return Err(RestoreError::Divergence {
                        lsn: cursor as u64,
                        detail: format!(
                            "replay did not produce derived record {derived:?} the journal holds"
                        ),
                    });
                }
            }
        }

        let resumed_at = svc.last_event;
        let dur = svc.dur.take().expect("verifier attached above");
        let verifier = match dur.sink {
            DurabilitySink::Verify(v) => v,
            DurabilitySink::Journal { .. } => unreachable!("restore uses a verifier"),
        };
        if let Some(err) = verifier.divergence {
            return Err(err);
        }
        if verifier.cursor < records.len() {
            return Err(RestoreError::Divergence {
                lsn: verifier.cursor as u64,
                detail: "journal holds records after a clean shutdown".to_string(),
            });
        }
        if let Some(snap) = &verifier.snapshot {
            if verifier.snapshot_verified != Some(snap.lsn) {
                return Err(RestoreError::SnapshotUnmatched {
                    lsn: snap.lsn,
                    replayed: verifier.cursor as u64,
                });
            }
        }
        let restore_seconds = started.elapsed().as_secs_f64();
        mris_obs::histogram_record("mris_restore_seconds", restore_seconds);
        Ok((
            svc,
            RestoreReport {
                records: records.len() as u64,
                regenerated: verifier.regenerated,
                torn_tail_bytes,
                tail_error,
                snapshot_verified: verifier.snapshot_verified,
                clean_shutdown,
                resumed_at,
                restore_seconds,
            },
        ))
    }
}
