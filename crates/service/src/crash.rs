//! Crash simulation helpers for the crash-restart equivalence suite.
//!
//! Because the service event loop is deterministic, a crashed run's
//! journal is a byte prefix of the uncrashed (golden) run's journal. The
//! harness therefore runs the golden service once, then "crashes" it by
//! truncating the golden journal at chosen points: at event-group
//! boundaries (a clean kill between flushes) via [`truncate_at_event`],
//! or mid-frame (a kill inside `write(2)`) by slicing arbitrary byte
//! counts off the tail, which exercises the lenient torn-tail parser.

use mris_rng::Rng;

use crate::codec::Decoder;
use crate::journal::{parse_frame, parse_header, JournalRecord};

/// Seeded selection of crash points for one golden run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Event indices (0-based) after whose record group the journal is
    /// cut, sorted and deduplicated.
    pub kill_after_events: Vec<usize>,
}

impl CrashPlan {
    /// Picks up to `count` distinct kill points over a run of
    /// `num_events` events, deterministically from `seed`.
    pub fn seeded(seed: u64, num_events: usize, count: usize) -> Self {
        let mut rng = Rng::new(seed).substream("crash-plan");
        let mut kill_after_events: Vec<usize> = Vec::new();
        if num_events > 0 {
            for _ in 0..count.max(1) * 4 {
                if kill_after_events.len() >= count {
                    break;
                }
                let e = rng.next_u64_below(num_events as u64) as usize;
                if !kill_after_events.contains(&e) {
                    kill_after_events.push(e);
                }
            }
        }
        kill_after_events.sort_unstable();
        CrashPlan { kill_after_events }
    }
}

/// Byte offset at which to cut `journal` so it ends exactly after the
/// record group of the `event_index`-th (0-based) `Event` record — the
/// event mark plus every derived record it produced, up to (excluding)
/// the next input record. `None` if the journal is unreadable or has no
/// such event.
pub fn truncate_at_event(journal: &[u8], event_index: usize) -> Option<usize> {
    let mut d = Decoder::new(journal);
    let (version, _) = parse_header(&mut d).ok()?;
    let mut current_event: Option<usize> = None;
    let mut group_end: Option<usize> = None;
    while d.remaining() > 0 {
        let Ok((rec, end)) = parse_frame(&mut d, version) else {
            break;
        };
        match rec {
            JournalRecord::Event { .. } => {
                if current_event == Some(event_index) {
                    return group_end;
                }
                let idx = current_event.map_or(0, |i| i + 1);
                current_event = Some(idx);
                if idx == event_index {
                    group_end = Some(end);
                }
            }
            JournalRecord::Admit { .. }
            | JournalRecord::Reject { .. }
            | JournalRecord::Close { .. } => {
                if current_event == Some(event_index) {
                    return group_end;
                }
            }
            _ => {
                if current_event == Some(event_index) {
                    group_end = Some(end);
                }
            }
        }
    }
    group_end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = CrashPlan::seeded(7, 100, 8);
        let b = CrashPlan::seeded(7, 100, 8);
        assert_eq!(a, b);
        assert!(a.kill_after_events.len() <= 8);
        assert!(a.kill_after_events.iter().all(|&e| e < 100));
        assert!(a.kill_after_events.windows(2).all(|w| w[0] < w[1]));
        let c = CrashPlan::seeded(8, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_run_yields_no_kill_points() {
        assert!(CrashPlan::seeded(1, 0, 4).kill_after_events.is_empty());
    }

    #[test]
    fn truncate_rejects_garbage() {
        assert_eq!(truncate_at_event(b"not a journal!..", 0), None);
        assert_eq!(truncate_at_event(&[], 0), None);
    }
}
