//! Write-ahead journal of state-mutating service events.
//!
//! # Format
//!
//! A journal is a 16-byte header followed by frames:
//!
//! ```text
//! header:  magic "MRJL" | version u32 | fingerprint u64
//! frame:   len u32 | crc32(payload) u32 | payload (len bytes)
//! payload: tag u8 | tag-specific fields
//! ```
//!
//! All integers are little-endian; times are IEEE-754 bit patterns (see
//! [`crate::codec`]). The fingerprint hashes the instance, the
//! [`crate::ServiceConfig`], and the [`DurabilityConfig`] so a journal is
//! never replayed against a different world.
//!
//! # Replay model
//!
//! The journal is the *source of truth*: [`crate::Service::restore`]
//! replays the input records (admissions, rejections, event marks) from
//! genesis through a fresh service and policy, which deterministically
//! regenerates every derived record (placements, completions, faults,
//! re-releases). During replay the derived records are *verified* against
//! the journal ([`ReplayVerifier`]) instead of being re-appended — a
//! mismatch is a typed [`RestoreError::Divergence`], so a journal from a
//! different build or a corrupted-but-checksum-valid file can never
//! silently produce a different schedule. Snapshots are consistency
//! checkpoints layered on top (see [`crate::snapshot`]).

use std::io::Write;
use std::sync::{Arc, Mutex};

use mris_sim::FaultPlan;
use mris_types::{CodecError, DurabilityError, FaultTarget, Instance, RestartSemantics, Time};

use crate::codec::{crc32, fnv64, Decoder, Encoder};
use crate::core::ServiceConfig;
use crate::snapshot::{Snapshot, SnapshotStore, SNAPSHOT_VERSION};

/// Journal file magic bytes.
pub const JOURNAL_MAGIC: [u8; 4] = *b"MRJL";
/// Newest journal format version this build reads and writes.
///
/// # Version history and back-compat rule
///
/// * **v1** — PR 8 format: `Admit`/`Reject` carry no tenant field.
/// * **v2** — multi-tenancy: `Admit` and `Reject` payloads end with the
///   admitting tenant's id (`u32`), and `Reject` gains the `TenantQuota`
///   reason (tag 2).
/// * **v3** — precedence: the `PrecedenceReady` record (tag 11) marks a
///   job whose last outstanding predecessor completed while the job was
///   withheld from delivery. It is only ever emitted for DAG instances,
///   and the world encoding appends an edge section for those, so a
///   journal of an edge-free instance is byte-identical to v2 content
///   under a v3 header.
///
/// Writers always write the newest version. Readers accept any version in
/// `1..=JOURNAL_VERSION`: a v1 `Admit`/`Reject` decodes with tenant 0 (the
/// single-tenant default), which replays identically because a v1 journal
/// can only have been recorded by a single-tenant service. The
/// configuration fingerprint incorporates the tenant table only when one
/// is configured (and the edge list only when the instance has edges), so
/// a v1/v2 journal's fingerprint still matches a restore under this build.
pub const JOURNAL_VERSION: u32 = 3;
/// Upper bound on a single frame's payload; real payloads are < 32 bytes,
/// so anything larger is corruption, caught before allocating.
const MAX_FRAME: u32 = 1 << 16;
/// Bytes a frame adds around its payload: `len: u32` + `crc32: u32`.
const FRAME_OVERHEAD: usize = 8;
/// Journal header length in bytes (magic + version + fingerprint).
pub const HEADER_LEN: usize = 16;

/// Why an admission was rejected, as recorded in the journal. Collapses
/// [`mris_types::AdmissionError`] to its variant — the full diagnostic
/// fields are deterministic given replay, so the journal stores only the
/// decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Queue-depth watermark hit.
    QueueFull,
    /// Resource-load watermark hit.
    LoadShed,
    /// A per-tenant quota or the weighted-fair gate hit (v2 journals only).
    TenantQuota,
}

/// One durable record. Input records (`Admit`, `Reject`, `Event`, `Close`)
/// drive replay; the rest are derived and serve as the verification trail.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A submission was admitted at `at`.
    Admit {
        /// Admission time.
        at: Time,
        /// The admitted job id.
        job: u32,
        /// The admitting tenant (0 on the single-tenant path; decoded as 0
        /// from v1 journals).
        tenant: u32,
    },
    /// A submission was rejected at `at`.
    Reject {
        /// Rejection time.
        at: Time,
        /// The rejected job id.
        job: u32,
        /// Which watermark shed it.
        reason: RejectReason,
        /// The submitting tenant (0 on the single-tenant path; decoded as
        /// 0 from v1 journals).
        tenant: u32,
    },
    /// The event loop processed a decision event at `at`.
    Event {
        /// Event time.
        at: Time,
    },
    /// The policy placed `job` on `machine` starting at `start`.
    Place {
        /// Placed job id.
        job: u32,
        /// Target machine.
        machine: u32,
        /// Start time (the event's now).
        start: Time,
    },
    /// `job` ran to completion on `machine`.
    Complete {
        /// Completed job id.
        job: u32,
        /// Machine it ran on.
        machine: u32,
    },
    /// `machine` failed at `at` and will recover at `recover_at`.
    Fail {
        /// Failed machine.
        machine: u32,
        /// Failure instant.
        at: Time,
        /// Scheduled recovery instant.
        recover_at: Time,
    },
    /// `machine` recovered at `at`.
    Recover {
        /// Recovered machine.
        machine: u32,
        /// Recovery instant.
        at: Time,
    },
    /// `job` was killed by a failure and re-released.
    ReRelease {
        /// The re-released job id.
        job: u32,
    },
    /// `job` was released and withheld behind a precedence gate, and its
    /// last outstanding predecessor has now completed: the job re-enters
    /// the delivery queue at this event's time (v3 journals only; derived).
    PrecedenceReady {
        /// The job whose gate opened.
        job: u32,
    },
    /// A snapshot of the full service state was persisted; `lsn` is the
    /// number of records preceding this mark.
    SnapshotMark {
        /// Records written before the mark — the snapshot's identity.
        lsn: u64,
    },
    /// The service drained cleanly at `at`.
    Close {
        /// Drain time.
        at: Time,
    },
}

impl JournalRecord {
    /// Appends the tagged payload encoding (no frame) to `e`.
    pub fn encode(&self, e: &mut Encoder) {
        match *self {
            JournalRecord::Admit { at, job, tenant } => {
                e.u8(1);
                e.f64(at);
                e.u32(job);
                e.u32(tenant);
            }
            JournalRecord::Reject {
                at,
                job,
                reason,
                tenant,
            } => {
                e.u8(2);
                e.f64(at);
                e.u32(job);
                e.u8(match reason {
                    RejectReason::QueueFull => 0,
                    RejectReason::LoadShed => 1,
                    RejectReason::TenantQuota => 2,
                });
                e.u32(tenant);
            }
            JournalRecord::Event { at } => {
                e.u8(3);
                e.f64(at);
            }
            JournalRecord::Place {
                job,
                machine,
                start,
            } => {
                e.u8(4);
                e.u32(job);
                e.u32(machine);
                e.f64(start);
            }
            JournalRecord::Complete { job, machine } => {
                e.u8(5);
                e.u32(job);
                e.u32(machine);
            }
            JournalRecord::Fail {
                machine,
                at,
                recover_at,
            } => {
                e.u8(6);
                e.u32(machine);
                e.f64(at);
                e.f64(recover_at);
            }
            JournalRecord::Recover { machine, at } => {
                e.u8(7);
                e.u32(machine);
                e.f64(at);
            }
            JournalRecord::ReRelease { job } => {
                e.u8(8);
                e.u32(job);
            }
            JournalRecord::PrecedenceReady { job } => {
                e.u8(11);
                e.u32(job);
            }
            JournalRecord::SnapshotMark { lsn } => {
                e.u8(9);
                e.u64(lsn);
            }
            JournalRecord::Close { at } => {
                e.u8(10);
                e.f64(at);
            }
        }
    }

    /// Decodes one tagged payload written by format `version`. `base` is
    /// the payload's offset in the file, for error reporting. v1 payloads
    /// lack the tenant field on `Admit`/`Reject`; it decodes as tenant 0
    /// (see [`JOURNAL_VERSION`] for the back-compat rule).
    pub fn decode(payload: &[u8], base: usize, version: u32) -> Result<JournalRecord, CodecError> {
        let mut d = Decoder::new(payload);
        let tag = d.u8()?;
        let rec = match tag {
            1 => JournalRecord::Admit {
                at: d.f64()?,
                job: d.u32()?,
                tenant: if version >= 2 { d.u32()? } else { 0 },
            },
            2 => JournalRecord::Reject {
                at: d.f64()?,
                job: d.u32()?,
                reason: match d.u8()? {
                    0 => RejectReason::QueueFull,
                    1 => RejectReason::LoadShed,
                    2 if version >= 2 => RejectReason::TenantQuota,
                    other => {
                        return Err(CodecError::Malformed {
                            offset: base + d.offset() - 1,
                            detail: format!("unknown reject reason {other}"),
                        })
                    }
                },
                tenant: if version >= 2 { d.u32()? } else { 0 },
            },
            3 => JournalRecord::Event { at: d.f64()? },
            4 => JournalRecord::Place {
                job: d.u32()?,
                machine: d.u32()?,
                start: d.f64()?,
            },
            5 => JournalRecord::Complete {
                job: d.u32()?,
                machine: d.u32()?,
            },
            6 => JournalRecord::Fail {
                machine: d.u32()?,
                at: d.f64()?,
                recover_at: d.f64()?,
            },
            7 => JournalRecord::Recover {
                machine: d.u32()?,
                at: d.f64()?,
            },
            8 => JournalRecord::ReRelease { job: d.u32()? },
            9 => JournalRecord::SnapshotMark { lsn: d.u64()? },
            10 => JournalRecord::Close { at: d.f64()? },
            11 if version >= 3 => JournalRecord::PrecedenceReady { job: d.u32()? },
            other => {
                return Err(CodecError::Malformed {
                    offset: base,
                    detail: format!("unknown record tag {other}"),
                })
            }
        };
        d.finish().map_err(|e| match e {
            CodecError::Malformed { offset, detail } => CodecError::Malformed {
                offset: base + offset,
                detail,
            },
            other => other,
        })?;
        Ok(rec)
    }
}

/// Durability knobs, part of the journal's configuration fingerprint (the
/// flush and snapshot cadences shape which records group into frames and
/// where snapshot marks land, so replay must run under the same values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Journal frames are flushed to the writer every `flush_every`
    /// processed events (epoch boundaries). `1` flushes per event — the
    /// strongest guarantee; larger values trade crash-window for
    /// throughput. Admissions between events ride along with the next
    /// event flush.
    pub flush_every: u32,
    /// A full state snapshot is persisted every `snapshot_every` processed
    /// events; `0` disables snapshots (journal-only durability).
    pub snapshot_every: u32,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            flush_every: 1,
            snapshot_every: 0,
        }
    }
}

/// Encodes the world a service run is determined by: the instance and the
/// full service config (fault plan and tenant table included). Shared by
/// the durability fingerprint and the net handshake fingerprint.
fn encode_world(e: &mut Encoder, instance: &Instance, cfg: &ServiceConfig) {
    e.u64(instance.len() as u64);
    e.u64(instance.num_resources() as u64);
    for j in instance.jobs() {
        e.f64(j.release);
        e.f64(j.proc_time);
        e.f64(j.weight);
        for &d in j.demands.iter() {
            e.u64(d);
        }
    }
    e.u64(cfg.num_machines as u64);
    e.f64(cfg.epoch);
    e.u64(cfg.queue_watermark as u64);
    e.f64(cfg.load_watermark);
    match cfg.restart {
        RestartSemantics::FullRestart => e.u8(0),
        RestartSemantics::WeightAging { factor } => {
            e.u8(1);
            e.f64(factor);
        }
    }
    encode_fault_plan(e, &cfg.fault_plan);
    // Tenant section only when tenancy is actually in play, so a
    // single-tenant config fingerprints identically to the pre-tenancy
    // format (v1 journals of single-tenant runs stay restorable).
    if !cfg.tenants.is_empty() || cfg.fair_watermark != usize::MAX {
        e.u64(cfg.fair_watermark as u64);
        e.u64(cfg.tenants.len() as u64);
        for t in &cfg.tenants {
            e.u64(t.name.len() as u64);
            e.bytes(t.name.as_bytes());
            e.f64(t.weight);
            e.u64(t.queue_watermark as u64);
            e.f64(t.load_watermark);
        }
    }
    // Edge section only for DAG instances, so edge-free worlds fingerprint
    // identically to the pre-precedence format (v1/v2 journals of edge-free
    // runs stay restorable).
    if instance.has_precedence() {
        let edges = instance.edges();
        e.u64(edges.len() as u64);
        for &(pred, succ) in edges {
            e.u32(pred.0);
            e.u32(succ.0);
        }
    }
}

/// FNV-1a fingerprint binding a journal/snapshot to the exact world it was
/// recorded under: the instance, the service config (including the fault
/// plan and tenant table), and the durability cadences.
pub fn config_fingerprint(
    instance: &Instance,
    cfg: &ServiceConfig,
    dcfg: &DurabilityConfig,
) -> u64 {
    let mut e = Encoder::new();
    encode_world(&mut e, instance, cfg);
    e.u32(dcfg.flush_every);
    e.u32(dcfg.snapshot_every);
    fnv64(&e.into_bytes())
}

/// FNV-1a fingerprint of the instance and service config alone (no
/// durability cadences) — what the `mris-net` handshake compares so a
/// client and server agree they are scheduling the same world regardless
/// of the server's journaling setup.
pub fn service_fingerprint(instance: &Instance, cfg: &ServiceConfig) -> u64 {
    let mut e = Encoder::new();
    encode_world(&mut e, instance, cfg);
    fnv64(&e.into_bytes())
}

fn encode_fault_plan(e: &mut Encoder, plan: &FaultPlan) {
    e.u64(plan.len() as u64);
    for ev in plan.events() {
        e.f64(ev.at);
        e.f64(ev.downtime);
        match ev.target {
            FaultTarget::Machine(m) => {
                e.u8(0);
                e.u64(m as u64);
            }
            FaultTarget::Busiest => e.u8(1),
        }
    }
}

/// Buffered frame writer over any `Write` sink.
///
/// Frames accumulate in an in-process buffer and reach the sink only on
/// [`JournalWriter::flush`] (called by the service at its flush cadence and
/// at drain), so the on-disk journal always ends at a frame-group boundary
/// of the configured cadence.
pub struct JournalWriter {
    out: Box<dyn Write + Send>,
    buf: Encoder,
    appends: u64,
    bytes: u64,
    fsyncs: u64,
    // Obs counters are batched and published at flush so the per-record
    // hot path stays allocation- and lookup-free.
    pending_appends: u64,
    pending_bytes: u64,
}

impl JournalWriter {
    /// Starts a journal on `out`, buffering the header immediately.
    pub fn new(out: Box<dyn Write + Send>, fingerprint: u64) -> Self {
        let mut e = Encoder::new();
        e.bytes(&JOURNAL_MAGIC);
        e.u32(JOURNAL_VERSION);
        e.u64(fingerprint);
        JournalWriter {
            out,
            buf: e,
            appends: 0,
            bytes: HEADER_LEN as u64,
            fsyncs: 0,
            pending_appends: 0,
            pending_bytes: 0,
        }
    }

    /// Buffers one framed record. Allocation-free: the payload is encoded
    /// in place after an 8-byte placeholder, then the frame header (length
    /// and CRC-32) is backpatched over it.
    pub fn append(&mut self, rec: &JournalRecord) {
        let frame_start = self.buf.len();
        self.buf.u32(0); // length placeholder
        self.buf.u32(0); // crc placeholder
        rec.encode(&mut self.buf);
        let payload_len = self.buf.len() - frame_start - FRAME_OVERHEAD;
        let crc = crc32(&self.buf.as_bytes()[frame_start + FRAME_OVERHEAD..]);
        self.buf.patch_u32(frame_start, payload_len as u32);
        self.buf.patch_u32(frame_start + 4, crc);
        let frame_len = (FRAME_OVERHEAD + payload_len) as u64;
        self.appends += 1;
        self.bytes += frame_len;
        self.pending_appends += 1;
        self.pending_bytes += frame_len;
    }

    /// Writes every buffered frame to the sink and flushes it.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.out.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        self.out.flush()?;
        self.fsyncs += 1;
        mris_obs::counter_add("mris_journal_appends_total", self.pending_appends);
        mris_obs::counter_add("mris_journal_bytes_total", self.pending_bytes);
        mris_obs::counter_add("mris_journal_fsyncs_total", 1);
        self.pending_appends = 0;
        self.pending_bytes = 0;
        Ok(())
    }

    /// `(appends, bytes, flushes)` written so far, for telemetry.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.appends, self.bytes, self.fsyncs)
    }
}

/// A decoded journal: header fields plus every record in order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedJournal {
    /// Format version from the header.
    pub version: u32,
    /// Configuration fingerprint from the header.
    pub fingerprint: u64,
    /// All records, in append order.
    pub records: Vec<JournalRecord>,
}

pub(crate) fn parse_header(d: &mut Decoder<'_>) -> Result<(u32, u64), CodecError> {
    let magic = d.bytes(4)?;
    if magic != JOURNAL_MAGIC {
        return Err(CodecError::BadMagic {
            found: magic.try_into().expect("4-byte slice"),
        });
    }
    let version = d.u32()?;
    if version == 0 || version > JOURNAL_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: JOURNAL_VERSION,
        });
    }
    let fingerprint = d.u64()?;
    Ok((version, fingerprint))
}

pub(crate) fn parse_frame(
    d: &mut Decoder<'_>,
    version: u32,
) -> Result<(JournalRecord, usize), CodecError> {
    let frame_start = d.offset();
    let len = d.u32()?;
    if len == 0 || len > MAX_FRAME {
        return Err(CodecError::Malformed {
            offset: frame_start,
            detail: format!("frame length {len} outside (0, {MAX_FRAME}]"),
        });
    }
    let stored = d.u32()?;
    let payload_start = d.offset();
    let payload = d.bytes(len as usize)?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch {
            offset: frame_start,
            stored,
            computed,
        });
    }
    let rec = JournalRecord::decode(payload, payload_start, version)?;
    Ok((rec, d.offset()))
}

/// Strictly parses a complete journal: any malformed byte — including a
/// torn tail — is a typed error.
pub fn parse_journal(bytes: &[u8]) -> Result<ParsedJournal, CodecError> {
    let mut d = Decoder::new(bytes);
    let (version, fingerprint) = parse_header(&mut d)?;
    let mut records = Vec::new();
    while d.remaining() > 0 {
        let (rec, _) = parse_frame(&mut d, version)?;
        records.push(rec);
    }
    Ok(ParsedJournal {
        version,
        fingerprint,
        records,
    })
}

/// Leniently parses the longest valid prefix of a journal, for crash
/// recovery: a torn final frame (the write the crash interrupted) is
/// dropped rather than rejected. Returns the parsed prefix, the number of
/// valid bytes, and the error that terminated the scan (if any). Header
/// corruption is still fatal — without a header nothing can be replayed.
#[allow(clippy::type_complexity)]
pub fn read_valid_prefix(
    bytes: &[u8],
) -> Result<(ParsedJournal, usize, Option<CodecError>), CodecError> {
    let mut d = Decoder::new(bytes);
    let (version, fingerprint) = parse_header(&mut d)?;
    let mut records = Vec::new();
    let mut valid = d.offset();
    let mut tail_error = None;
    while d.remaining() > 0 {
        match parse_frame(&mut d, version) {
            Ok((rec, end)) => {
                records.push(rec);
                valid = end;
            }
            Err(e) => {
                tail_error = Some(e);
                break;
            }
        }
    }
    Ok((
        ParsedJournal {
            version,
            fingerprint,
            records,
        },
        valid,
        tail_error,
    ))
}

/// An in-memory `Write` sink shareable across the service and the test
/// harness — the crash suite's stand-in for a journal file.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// A copy of everything written (and flushed or not — the buffer has
    /// no separate flush stage) so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("shared buf lock").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf lock")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Replay-time verifier: instead of appending, every record the restoring
/// service produces is compared against the journal's record at the
/// cursor. Records produced past the journal's end are the regenerated
/// torn tail (counted, not an error). The first mismatch is latched.
pub(crate) struct ReplayVerifier {
    pub(crate) expected: Vec<JournalRecord>,
    pub(crate) cursor: usize,
    pub(crate) regenerated: u64,
    /// The snapshot to cross-check when replay passes its mark, if any.
    pub(crate) snapshot: Option<Snapshot>,
    pub(crate) snapshot_verified: Option<u64>,
    pub(crate) divergence: Option<mris_types::RestoreError>,
}

impl ReplayVerifier {
    pub(crate) fn new(expected: Vec<JournalRecord>, snapshot: Option<Snapshot>) -> Self {
        ReplayVerifier {
            expected,
            cursor: 0,
            regenerated: 0,
            snapshot,
            snapshot_verified: None,
            divergence: None,
        }
    }

    fn check(&mut self, produced: JournalRecord) {
        if self.divergence.is_some() {
            return;
        }
        if self.cursor < self.expected.len() {
            let expected = &self.expected[self.cursor];
            if *expected != produced {
                self.divergence = Some(mris_types::RestoreError::Divergence {
                    lsn: self.cursor as u64,
                    detail: format!("journal holds {expected:?}, replay produced {produced:?}"),
                });
                return;
            }
            self.cursor += 1;
        } else {
            self.regenerated += 1;
        }
    }
}

/// Where emitted records go: a live journal or the replay verifier.
pub(crate) enum DurabilitySink {
    Journal {
        writer: JournalWriter,
        snapshots: Box<dyn SnapshotStore + Send>,
    },
    Verify(ReplayVerifier),
}

/// The durability state carried by a [`crate::Service`] when a journal is
/// attached (or during restore replay).
pub(crate) struct Durability {
    pub(crate) cfg: DurabilityConfig,
    pub(crate) fingerprint: u64,
    pub(crate) sink: DurabilitySink,
    /// Records emitted so far (the next record's LSN).
    pub(crate) records: u64,
    events_since_flush: u32,
    events_since_snapshot: u32,
    pub(crate) error: Option<DurabilityError>,
}

impl Durability {
    pub(crate) fn new(cfg: DurabilityConfig, fingerprint: u64, sink: DurabilitySink) -> Self {
        Durability {
            cfg,
            fingerprint,
            sink,
            records: 0,
            events_since_flush: 0,
            events_since_snapshot: 0,
            error: None,
        }
    }

    /// Emits one record: appended in journal mode, compared in verify mode.
    pub(crate) fn emit(&mut self, rec: JournalRecord) {
        self.records += 1;
        match &mut self.sink {
            DurabilitySink::Journal { writer, .. } => writer.append(&rec),
            DurabilitySink::Verify(v) => v.check(rec),
        }
    }

    /// Whether the next event boundary is a snapshot point — asked by the
    /// service *before* [`Durability::event_end`] so it can compute the
    /// (expensive) state encoding only when needed.
    pub(crate) fn snapshot_due(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.events_since_snapshot + 1 >= self.cfg.snapshot_every
    }

    /// Event-boundary bookkeeping: snapshot (if due; `state` carries the
    /// service's canonical state bytes) and flush (at the flush cadence).
    pub(crate) fn event_end(&mut self, now: Time, state: Option<Vec<u8>>) {
        if let Some(state) = state {
            debug_assert!(self.snapshot_due());
            self.events_since_snapshot = 0;
            let lsn = self.records;
            self.emit(JournalRecord::SnapshotMark { lsn });
            let snap = Snapshot {
                version: SNAPSHOT_VERSION,
                fingerprint: self.fingerprint,
                lsn,
                at: now,
                state,
            };
            match &mut self.sink {
                DurabilitySink::Journal { snapshots, .. } => {
                    let started = std::time::Instant::now();
                    if let Err(e) = snapshots.put(&snap) {
                        self.error.get_or_insert(e);
                    }
                    mris_obs::histogram_record(
                        "mris_snapshot_seconds",
                        started.elapsed().as_secs_f64(),
                    );
                }
                DurabilitySink::Verify(v) => {
                    if v.divergence.is_none() {
                        if let Some(stored) = &v.snapshot {
                            if stored.lsn == lsn {
                                if stored.state == snap.state {
                                    v.snapshot_verified = Some(lsn);
                                } else {
                                    v.divergence =
                                        Some(mris_types::RestoreError::SnapshotStateMismatch {
                                            lsn,
                                        });
                                }
                            }
                        }
                    }
                }
            }
        } else {
            self.events_since_snapshot += 1;
        }
        self.events_since_flush += 1;
        if self.events_since_flush >= self.cfg.flush_every.max(1) {
            self.events_since_flush = 0;
            self.flush();
        }
    }

    /// Flushes the journal writer (no-op in verify mode); IO failures are
    /// latched into [`Durability::error`] rather than crashing the loop.
    pub(crate) fn flush(&mut self) {
        if let DurabilitySink::Journal { writer, .. } = &mut self.sink {
            if let Err(e) = writer.flush() {
                self.error.get_or_insert(DurabilityError::JournalIo {
                    detail: e.to_string(),
                });
            }
        }
    }
}
