//! Scheduler-as-a-service runtime for MRIS and its baselines.
//!
//! This crate turns any registered [`mris_sim::OnlinePolicy`] into a
//! long-running scheduling daemon:
//!
//! * **Clock abstraction** ([`Clock`], [`SimClock`], [`WallClock`]) — the
//!   same event loop is property-testable under deterministic virtual time
//!   and runnable in real time with a replay speedup.
//! * **Admission control** ([`Service`], [`ServiceConfig`]) — a bounded
//!   submission queue with explicit depth and resource-load watermarks;
//!   shedding is always a typed [`mris_types::AdmissionError`], never a
//!   silent drop, and every job's fate is recorded in a [`JobOutcome`]
//!   ledger.
//! * **Epoch batching** — arrivals accumulate for a configurable decision
//!   interval and are announced as one batch; the zero interval delivers
//!   per-event and is bit-identical to the batch drivers (the
//!   conservativity suite pins this).
//! * **Fault replay** — a [`mris_sim::FaultPlan`] runs against the live
//!   service with the chaos driver's exact event ordering and audit log.
//! * **Telemetry** ([`TelemetrySink`], [`JsonlSink`]) — per-epoch JSONL
//!   events plus an end-of-run [`ServiceSummary`] with decision-latency
//!   percentiles from [`mris_metrics::Percentiles`].
//! * **Threaded front-end** ([`spawn_service`], [`ServiceHandle`]) — a
//!   bounded `std::mpsc` transport into a worker thread that drains
//!   gracefully when the handle is dropped or drained.
//! * **Open-loop load generation** ([`Workload`], [`generate_workload`],
//!   [`run_workload`]) — Poisson and burst arrival processes over
//!   Azure-derived job shapes, seeded by `mris-rng`.
//! * **Durability** ([`Service::attach_journal`], [`Service::restore`]) —
//!   a length-prefixed, checksummed write-ahead journal of every
//!   state-mutating event plus periodic full-state snapshots, both over
//!   the in-tree zero-dependency codec ([`Encoder`], [`Decoder`]).
//!   Restore replays the journal from genesis through a fresh policy and
//!   verifies every derived record and snapshot byte-for-byte, so a
//!   crash-restarted service is bit-identical to the uncrashed run (the
//!   crash-restart suite pins this); journal loss after a snapshot
//!   degrades to machine-failure semantics via [`RestoreOptions::outage`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod codec;
mod core;
mod crash;
mod journal;
mod loadgen;
mod restore;
mod server;
mod snapshot;
mod telemetry;
mod tenant;

pub use clock::{Clock, SimClock, WallClock};
pub use codec::{crc32, fnv64, Decoder, Encoder};
pub use core::{JobOutcome, Service, ServiceConfig, ServiceConfigBuilder, ServiceReport};
pub use crash::{truncate_at_event, CrashPlan};
pub use journal::{
    config_fingerprint, parse_journal, read_valid_prefix, service_fingerprint, DurabilityConfig,
    JournalRecord, JournalWriter, ParsedJournal, RejectReason, SharedBuf, HEADER_LEN,
    JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use loadgen::{
    generate_workload, poisson_rate_for_utilization, run_workload, ArrivalProcess, LoadGenConfig,
    Workload,
};
pub use restore::{Outage, RestoreOptions, RestoreReport};
pub use server::{spawn_service, ServiceError, ServiceHandle, SubmitError};
pub use snapshot::{
    DirSnapshots, MemorySnapshots, NullSnapshots, Snapshot, SnapshotStore, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use telemetry::{
    EpochRecord, JsonlSink, MemorySink, NullSink, ObsBridge, ServiceSummary, TelemetrySink,
};
pub use tenant::{TenantSpec, TenantStat};
