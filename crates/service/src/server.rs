//! Threaded service front-end: a bounded `std::mpsc` transport into a
//! worker thread running the [`Service`] event loop.
//!
//! No async runtime is involved (the workspace is hermetic): the worker
//! blocks on `recv_timeout` using the clock's [`Clock::wait_hint`] so a
//! wall-clock service sleeps exactly until its next event while staying
//! responsive to submissions, and a sim-clock service replays as fast as
//! events can be processed. Dropping the last sender (or calling
//! [`ServiceHandle::drain`]) triggers a graceful drain: the worker finishes
//! every admitted job, emits the summary, and returns the report.

use std::sync::mpsc;

use mris_sim::OnlinePolicy;
use mris_types::{ConfigError, Instance, JobId, SchedulingError};

use crate::clock::Clock;
use crate::core::{Service, ServiceConfig, ServiceReport};
use crate::telemetry::TelemetrySink;

/// Why a threaded service run failed — every way the worker can go down,
/// as a typed error instead of a panic in the caller's thread.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The configuration was rejected at construction.
    Config(ConfigError),
    /// The policy violated a placement rule (or stranded accepted jobs).
    Scheduling(SchedulingError),
    /// The worker thread panicked; `payload` is the panic message when it
    /// was a string, or a placeholder otherwise.
    WorkerPanicked {
        /// Downcast panic payload.
        payload: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(e) => write!(f, "service configuration rejected: {e}"),
            ServiceError::Scheduling(e) => write!(f, "service scheduling failed: {e}"),
            ServiceError::WorkerPanicked { payload } => {
                write!(f, "service worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

impl From<SchedulingError> for ServiceError {
    fn from(e: SchedulingError) -> Self {
        ServiceError::Scheduling(e)
    }
}

/// Why a submission did not make it into the service's admission queue.
/// Transport-level backpressure — distinct from a typed admission
/// rejection, which is recorded in the job's [`crate::JobOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded channel to the worker is full.
    TransportFull,
    /// The worker stopped (drained or failed).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::TransportFull => write!(f, "service transport is full"),
            SubmitError::Closed => write!(f, "service worker stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle to a service running on a worker thread.
pub struct ServiceHandle<S> {
    tx: Option<mpsc::SyncSender<JobId>>,
    join: std::thread::JoinHandle<Result<(ServiceReport, S), ServiceError>>,
}

impl<S> ServiceHandle<S> {
    /// Offers `job` to the service without blocking. Admission control runs
    /// on the worker at receipt time; this only reports transport failures.
    pub fn try_submit(&self, job: JobId) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.try_send(job).map_err(|e| match e {
            mpsc::TrySendError::Full(_) => SubmitError::TransportFull,
            mpsc::TrySendError::Disconnected(_) => SubmitError::Closed,
        })
    }

    /// Offers `job` to the service, blocking while the transport is full.
    pub fn submit(&self, job: JobId) -> Result<(), SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        tx.send(job).map_err(|_| SubmitError::Closed)
    }

    /// Closes the transport and waits for the worker to drain: every
    /// admitted job completes, the summary is emitted, and the report and
    /// sink come back.
    ///
    /// # Errors
    ///
    /// A typed [`ServiceError`]: the configuration rejection or
    /// [`SchedulingError`] the worker hit, or — if the worker thread
    /// panicked — [`ServiceError::WorkerPanicked`] carrying the panic
    /// payload instead of re-panicking in the caller's thread.
    pub fn drain(mut self) -> Result<(ServiceReport, S), ServiceError> {
        drop(self.tx.take());
        match self.join.join() {
            Ok(result) => result,
            Err(payload) => {
                let payload = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                Err(ServiceError::WorkerPanicked { payload })
            }
        }
    }
}

/// Spawns a [`Service`] on a worker thread behind a bounded channel of
/// `transport_capacity` submissions.
///
/// `make_policy` runs *inside* the worker (boxed policies are not `Send`),
/// receiving the instance and machine count. Submissions are admitted at
/// the clock's now when the worker picks them up; between submissions the
/// worker advances the event loop, sleeping per [`Clock::wait_hint`].
pub fn spawn_service<C, S, F>(
    instance: Instance,
    cfg: ServiceConfig,
    clock: C,
    sink: S,
    make_policy: F,
    transport_capacity: usize,
) -> ServiceHandle<S>
where
    C: Clock + Send + 'static,
    S: TelemetrySink + Send + 'static,
    F: FnOnce(&Instance, usize) -> Box<dyn OnlinePolicy> + Send + 'static,
{
    let (tx, rx) = mpsc::sync_channel::<JobId>(transport_capacity.max(1));
    let join = std::thread::spawn(move || -> Result<(ServiceReport, S), ServiceError> {
        let policy = make_policy(&instance, cfg.num_machines);
        let mut service = Service::new(instance, policy, cfg, clock, sink)?;
        loop {
            match service.wait_hint() {
                // Next event is due now (or the clock never waits): process
                // it, then poll the transport opportunistically.
                None if service.next_event_time().is_some() => {
                    service.step()?;
                    while let Ok(job) = rx.try_recv() {
                        let _ = service.submit(job);
                    }
                }
                // Quiescent: block until a submission arrives or the
                // transport closes (drain request).
                None => match rx.recv() {
                    Ok(job) => {
                        let _ = service.submit(job);
                    }
                    Err(mpsc::RecvError) => break,
                },
                // An event is pending in the future: sleep toward it, but
                // wake early for submissions.
                Some(wait) => match rx.recv_timeout(wait) {
                    Ok(job) => {
                        let _ = service.submit(job);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        service.step()?;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                },
            }
        }
        Ok(service.drain()?)
    });
    ServiceHandle { tx: Some(tx), join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, WallClock};
    use crate::telemetry::MemorySink;
    use mris_core::registry::online_policy_by_name;
    use mris_types::Job;

    fn uniform_instance(n: u32) -> Instance {
        let jobs: Vec<Job> = (0..n)
            .map(|i| Job::from_fractions(JobId(i), 0.0, 0.5, 1.0, &[0.4]))
            .collect();
        Instance::new(jobs, 1).unwrap()
    }

    #[test]
    fn threaded_server_completes_all_submissions_under_wall_clock() {
        let instance = uniform_instance(12);
        let handle = spawn_service(
            instance.clone(),
            ServiceConfig::new(2),
            WallClock::new(50_000.0),
            MemorySink::default(),
            |inst, m| online_policy_by_name("tetris", inst, m).unwrap(),
            4,
        );
        for j in instance.jobs() {
            handle.submit(j.id).unwrap();
        }
        let (report, sink) = handle.drain().unwrap();
        assert_eq!(report.summary.completed, 12);
        assert_eq!(report.summary.submitted, 12);
        assert!(sink.summary.is_some());
        report.log.verify().unwrap();
    }

    #[test]
    fn threaded_server_replays_as_fast_as_possible_under_sim_clock() {
        let instance = uniform_instance(8);
        let handle = spawn_service(
            instance.clone(),
            ServiceConfig::new(1),
            SimClock::new(),
            MemorySink::default(),
            |inst, m| online_policy_by_name("pq-wsjf", inst, m).unwrap(),
            2,
        );
        for j in instance.jobs() {
            handle.submit(j.id).unwrap();
        }
        let (report, _) = handle.drain().unwrap();
        assert_eq!(report.summary.completed, 8);
    }
}
