//! Time sources for the service event loop.
//!
//! The loop is written against the [`Clock`] trait so the *same* service
//! code is both property-testable (deterministic [`SimClock`] — virtual
//! time that jumps instantly, optionally with seeded decision lag) and
//! actually runnable as a daemon ([`WallClock`] — real time with a
//! configurable speedup for trace replay).

use mris_rng::Rng;
use mris_types::Time;

/// A monotonic time source the service advances between events.
pub trait Clock {
    /// The current service time (normalized instance time units).
    fn now(&self) -> Time;

    /// Advances to at least `t` (blocking on a wall clock, jumping on a
    /// simulated one) and returns the new now. Implementations may
    /// overshoot — the event loop processes everything due by the returned
    /// instant — but must never return less than `max(t, now)`.
    fn advance_to(&mut self, t: Time) -> Time;

    /// How long a wall-clock caller should sleep before `t` is reached;
    /// `None` means no real waiting is needed (simulated time).
    fn wait_hint(&self, _t: Time) -> Option<std::time::Duration> {
        None
    }
}

/// Deterministic virtual time: `advance_to` jumps instantly.
///
/// With a seeded *decision lag* ([`SimClock::with_lag`]) every advance
/// overshoots its target by `U[0, max_lag)` drawn from an [`mris_rng`]
/// sub-stream — modelling a decision loop that reacts late — while staying
/// bit-reproducible per seed. The default lag is zero, which is what the
/// conservativity suite relies on.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Time,
    lag: Option<(Rng, Time)>,
}

impl SimClock {
    /// A lag-free virtual clock starting at time 0.
    pub fn new() -> Self {
        SimClock {
            now: 0.0,
            lag: None,
        }
    }

    /// A virtual clock whose every advance overshoots by a seeded uniform
    /// draw from `[0, max_lag)` — deterministic decision latency.
    ///
    /// # Panics
    ///
    /// If `max_lag` is negative or not finite.
    pub fn with_lag(seed: u64, max_lag: Time) -> Self {
        assert!(
            max_lag.is_finite() && max_lag >= 0.0,
            "max_lag must be finite and non-negative, got {max_lag}"
        );
        SimClock {
            now: 0.0,
            lag: (max_lag > 0.0).then(|| (Rng::new(seed).substream("sim-clock-lag"), max_lag)),
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        self.now
    }

    fn advance_to(&mut self, t: Time) -> Time {
        let mut target = t.max(self.now);
        if let Some((rng, max_lag)) = &mut self.lag {
            target += rng.gen_f64() * *max_lag;
        }
        self.now = target;
        self.now
    }

    fn wait_hint(&self, _t: Time) -> Option<std::time::Duration> {
        None
    }
}

/// Real time: one normalized time unit lasts `1 / speedup` wall seconds.
///
/// `advance_to` sleeps until the target instant has actually passed, so a
/// service driven by a `WallClock` behaves like a daemon: completions and
/// epoch boundaries fire when their real moment arrives.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: std::time::Instant,
    speedup: f64,
}

impl WallClock {
    /// Starts the clock now; `speedup` normalized time units elapse per
    /// wall second.
    ///
    /// # Panics
    ///
    /// If `speedup` is not finite and positive.
    pub fn new(speedup: f64) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "speedup must be finite and positive, got {speedup}"
        );
        WallClock {
            origin: std::time::Instant::now(),
            speedup,
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        self.origin.elapsed().as_secs_f64() * self.speedup
    }

    fn advance_to(&mut self, t: Time) -> Time {
        if let Some(wait) = self.wait_hint(t) {
            std::thread::sleep(wait);
        }
        self.now().max(t)
    }

    fn wait_hint(&self, t: Time) -> Option<std::time::Duration> {
        let remaining = t - self.now();
        (remaining > 0.0).then(|| std::time::Duration::from_secs_f64(remaining / self.speedup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_jumps_and_is_monotone() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.advance_to(5.0), 5.0);
        // Backwards targets clamp to the current now.
        assert_eq!(c.advance_to(1.0), 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.wait_hint(100.0), None);
    }

    #[test]
    fn lagged_sim_clock_overshoots_deterministically() {
        let mut a = SimClock::with_lag(7, 0.5);
        let mut b = SimClock::with_lag(7, 0.5);
        for t in [1.0, 2.0, 10.0] {
            let (na, nb) = (a.advance_to(t), b.advance_to(t));
            assert_eq!(na.to_bits(), nb.to_bits(), "lag must be seed-stable");
            assert!(na >= t && na < t + 0.5);
        }
        // Zero lag degenerates to the plain clock.
        let mut c = SimClock::with_lag(7, 0.0);
        assert_eq!(c.advance_to(3.0), 3.0);
    }

    #[test]
    fn wall_clock_tracks_real_time() {
        let mut c = WallClock::new(1_000.0); // 1000 units per wall second
        let t0 = c.now();
        let reached = c.advance_to(t0 + 10.0); // 10 ms of wall time
        assert!(reached >= t0 + 10.0);
        assert!(c.wait_hint(c.now() - 1.0).is_none());
        assert!(c.wait_hint(c.now() + 1_000.0).unwrap().as_millis() <= 1_000);
    }
}
