//! Open-loop load generation for the service.
//!
//! Job *shapes* (processing times, weights, demand vectors) come from the
//! Azure-derived trace generator; this module rewrites their release times
//! with a synthetic arrival process — Poisson (exponential interarrivals)
//! or periodic bursts — so service experiments control offered load
//! independently of the shape distribution. Everything is seeded through
//! `mris-rng`: the same [`LoadGenConfig`] always yields the same
//! [`Workload`].

use mris_rng::Rng;
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::{fraction, Instance, Job, JobId, SchedulingError, Time};

use crate::clock::Clock;
use crate::core::{Service, ServiceReport};
use crate::telemetry::TelemetrySink;

/// The synthetic arrival process for [`generate_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential interarrival times with the given mean rate
    /// (jobs per normalized time unit).
    Poisson {
        /// Mean arrival rate, must be finite and positive.
        rate: f64,
    },
    /// `size` jobs arrive together every `period` time units, starting at 0.
    Bursts {
        /// Spacing between bursts, must be finite and positive.
        period: Time,
        /// Jobs per burst, must be positive.
        size: usize,
    },
}

/// Configuration of one generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenConfig {
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Seed for both the shape sampler and the arrival process. The shape
    /// stream is independent of [`LoadGenConfig::arrivals`], so two configs
    /// differing only in the process produce identical job shapes.
    pub seed: u64,
    /// The arrival process writing release times.
    pub arrivals: ArrivalProcess,
}

/// A generated open-loop workload: an instance whose jobs are submitted to
/// the service at their release times, in id order.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The jobs, with releases non-decreasing in id.
    pub instance: Instance,
}

/// Generates a workload: Azure-derived shapes, synthetic arrivals.
///
/// # Panics
///
/// If the arrival process has a non-positive rate, period, or burst size.
pub fn generate_workload(cfg: &LoadGenConfig) -> Workload {
    match cfg.arrivals {
        ArrivalProcess::Poisson { rate } => {
            assert!(
                rate.is_finite() && rate > 0.0,
                "poisson rate must be finite and positive, got {rate}"
            );
        }
        ArrivalProcess::Bursts { period, size } => {
            assert!(
                period.is_finite() && period > 0.0,
                "burst period must be finite and positive, got {period}"
            );
            assert!(size > 0, "burst size must be positive");
        }
    }
    if cfg.num_jobs == 0 {
        return Workload {
            instance: Instance::new(Vec::new(), 1).expect("empty instance is valid"),
        };
    }
    let shapes = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: cfg.num_jobs,
        seed: cfg.seed,
        ..Default::default()
    })
    .sample_instance(1, 0);
    let mut arrival_rng = Rng::new(cfg.seed).substream("loadgen-arrivals");
    let mut t = 0.0_f64;
    let jobs: Vec<Job> = shapes
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, shape)| {
            let release = match cfg.arrivals {
                ArrivalProcess::Poisson { rate } => {
                    // Exponential interarrival, same draw idiom as the
                    // fault-plan generators.
                    t += -(1.0 - arrival_rng.gen_f64()).ln() / rate;
                    t
                }
                ArrivalProcess::Bursts { period, size } => (i / size) as f64 * period,
            };
            Job {
                id: JobId(i as u32),
                release,
                proc_time: shape.proc_time,
                weight: shape.weight,
                demands: shape.demands.clone(),
            }
        })
        .collect();
    let num_resources = shapes.num_resources();
    Workload {
        instance: Instance::new(jobs, num_resources).expect("rewritten jobs stay valid"),
    }
}

/// A Poisson rate putting the cluster's bottleneck resource at `utilization`
/// under the shape distribution of `instance`: offered volume per time unit
/// equals `utilization * num_machines` times one machine's capacity of the
/// most-demanded resource. Returns at least `f64::MIN_POSITIVE` so the
/// result is always a valid [`ArrivalProcess::Poisson`] rate.
pub fn poisson_rate_for_utilization(
    instance: &Instance,
    num_machines: usize,
    utilization: f64,
) -> f64 {
    assert!(
        utilization.is_finite() && utilization > 0.0,
        "utilization must be finite and positive, got {utilization}"
    );
    if instance.is_empty() {
        return 1.0;
    }
    // Mean per-job load on the bottleneck resource: p_j * max_l d_jl.
    let mean_load: f64 = instance
        .jobs()
        .iter()
        .map(|j| {
            let peak = j.demands.iter().copied().max().unwrap_or(0);
            j.proc_time * fraction(peak)
        })
        .sum::<f64>()
        / instance.len() as f64;
    if mean_load <= 0.0 {
        return 1.0;
    }
    (utilization * num_machines as f64 / mean_load).max(f64::MIN_POSITIVE)
}

/// Submits every job of `workload` at its release time, then drains.
/// Admission rejections are normal operation and end up in the report's
/// outcome ledger; the error is a fatal policy violation.
pub fn run_workload<C: Clock, S: TelemetrySink>(
    mut service: Service<C, S>,
    workload: &Workload,
) -> Result<(ServiceReport, S), SchedulingError> {
    for job in workload.instance.jobs() {
        let _admission = service.submit_at(job.release, job.id)?;
    }
    service.drain()
}
