//! The deterministic service event loop.
//!
//! [`Service`] wraps any [`OnlinePolicy`] behind a submission interface with
//! explicit admission control, replays an optional [`FaultPlan`], and
//! commits placements through the same [`Dispatcher`] path as the batch
//! drivers. Under a lag-free [`crate::SimClock`] and a policy without
//! wakeups, a drained service reproduces [`mris_sim::run_online`]
//! bit-for-bit (the conservativity suite pins this); under a
//! [`crate::WallClock`] the identical code runs as a daemon.
//!
//! # Event ordering
//!
//! At one instant the loop mirrors [`mris_sim::run_online_chaos`]:
//! completions, then fault recoveries, then failures, then delivery of
//! admitted submissions (one `on_arrivals`), then re-releases (a second
//! `on_arrivals`), then exactly one `dispatch`. Submissions admitted at the
//! same delivery instant coalesce into one arrival batch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mris_metrics::Percentiles;
use mris_sim::{
    resolve_fault_target, ClusterState, CompletionRecord, Dispatcher, FailureRecord, FaultLog,
    FaultPlan, OnlinePolicy, OrdTime, PrecedenceGate,
};
use mris_types::{
    fraction, AdmissionError, Amount, ConfigError, DurabilityError, Instance, JobId,
    RestartSemantics, Schedule, SchedulingError, TenantId, TenantQuotaKind, Time, CAPACITY,
};

use crate::clock::Clock;
use crate::codec::Encoder;
use crate::journal::{
    config_fingerprint, Durability, DurabilityConfig, DurabilitySink, JournalRecord, JournalWriter,
    RejectReason,
};
use crate::snapshot::SnapshotStore;
use crate::telemetry::{EpochRecord, ServiceSummary, TelemetrySink};
use crate::tenant::{job_cost, TenantSpec, TenantStat, TenantState};

/// Static configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Cluster size.
    pub num_machines: usize,
    /// Decision interval: admitted submissions are delivered to the policy
    /// at the next multiple of `epoch` after they become ready
    /// (`max(submit time, release)`). `0.0` (the default) delivers
    /// per-event, which is what conservativity with the batch drivers
    /// requires.
    pub epoch: Time,
    /// Queue-depth watermark: a submission arriving while `queue_watermark`
    /// admitted jobs are still waiting for delivery is rejected with
    /// [`AdmissionError::QueueFull`].
    pub queue_watermark: usize,
    /// Resource-load watermark as a multiple of one machine's capacity: a
    /// submission that would push the *queued* (undelivered) demand of some
    /// resource above `load_watermark * num_machines` is rejected with
    /// [`AdmissionError::DemandInfeasible`]. `f64::INFINITY` (the default)
    /// disables load shedding.
    pub load_watermark: f64,
    /// Weight treatment for fault-killed jobs, as in the chaos driver.
    pub restart: RestartSemantics,
    /// Machine failures to replay during the run.
    pub fault_plan: FaultPlan,
    /// Tenant table for multi-tenant admission. Empty (the default) runs
    /// the single-tenant path with zero per-tenant bookkeeping — byte-
    /// identical to a build without tenancy.
    pub tenants: Vec<TenantSpec>,
    /// Global queue depth at or above which the weighted-fair
    /// (deficit-round-robin) gate is consulted for multi-tenant
    /// admissions. `usize::MAX` (the default) disables the fair gate;
    /// ignored when `tenants` is empty.
    pub fair_watermark: usize,
}

impl ServiceConfig {
    /// A permissive configuration: per-event delivery, effectively unbounded
    /// queue, no load shedding, full restarts, no faults.
    pub fn new(num_machines: usize) -> Self {
        ServiceConfig {
            num_machines,
            epoch: 0.0,
            queue_watermark: usize::MAX,
            load_watermark: f64::INFINITY,
            restart: RestartSemantics::FullRestart,
            fault_plan: FaultPlan::none(),
            tenants: Vec::new(),
            fair_watermark: usize::MAX,
        }
    }

    /// Starts a validated configuration with [`ServiceConfigBuilder`]
    /// defaults (the same as [`ServiceConfig::new`]). Unlike `new`, the
    /// builder's [`build`](ServiceConfigBuilder::build) rejects nonsensical
    /// values with a typed [`ConfigError`] instead of panicking later.
    pub fn builder(num_machines: usize) -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            cfg: ServiceConfig::new(num_machines),
        }
    }

    /// The typed validation behind both the builder and
    /// [`Service::new`].
    pub(crate) fn check(&self) -> Result<(), ConfigError> {
        if self.num_machines == 0 {
            return Err(ConfigError::NoMachines);
        }
        if !(self.epoch.is_finite() && self.epoch >= 0.0) {
            return Err(ConfigError::InvalidEpoch { value: self.epoch });
        }
        if self.load_watermark.is_nan() || self.load_watermark <= 0.0 {
            return Err(ConfigError::InvalidLoadWatermark {
                value: self.load_watermark,
            });
        }
        if let RestartSemantics::WeightAging { factor } = self.restart {
            if !(factor.is_finite() && factor >= 0.0) {
                return Err(ConfigError::InvalidAgingFactor { value: factor });
            }
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty() {
                return Err(ConfigError::InvalidTenant {
                    tenant: i,
                    detail: "name must be non-empty".into(),
                });
            }
            if !(t.weight.is_finite() && t.weight > 0.0) {
                return Err(ConfigError::InvalidTenant {
                    tenant: i,
                    detail: format!("weight must be finite and > 0, got {}", t.weight),
                });
            }
            if t.queue_watermark == 0 {
                return Err(ConfigError::InvalidTenant {
                    tenant: i,
                    detail: "queue_watermark 0 would shed every submission".into(),
                });
            }
            if t.load_watermark.is_nan() || t.load_watermark <= 0.0 {
                return Err(ConfigError::InvalidTenant {
                    tenant: i,
                    detail: format!("load_watermark must be positive, got {}", t.load_watermark),
                });
            }
            if self.tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(ConfigError::InvalidTenant {
                    tenant: i,
                    detail: format!("duplicate tenant name '{}'", t.name),
                });
            }
        }
        Ok(())
    }
}

/// Fluent, validated construction of a [`ServiceConfig`].
///
/// Obtained from [`ServiceConfig::builder`]. Setters are chainable;
/// [`build`](ServiceConfigBuilder::build) returns a typed [`ConfigError`]
/// for invalid values, so daemon front ends can turn a bad flag into a
/// clean exit instead of a panic deep in the event loop.
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    cfg: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the decision interval (`0.0` = per-event delivery).
    pub fn epoch(mut self, epoch: Time) -> Self {
        self.cfg.epoch = epoch;
        self
    }

    /// Sets the queue-depth watermark.
    pub fn queue_watermark(mut self, watermark: usize) -> Self {
        self.cfg.queue_watermark = watermark;
        self
    }

    /// Sets the resource-load watermark (multiples of one machine).
    pub fn load_watermark(mut self, watermark: f64) -> Self {
        self.cfg.load_watermark = watermark;
        self
    }

    /// Sets the restart semantics for fault-killed jobs.
    pub fn restart(mut self, restart: RestartSemantics) -> Self {
        self.cfg.restart = restart;
        self
    }

    /// Sets the fault plan to replay.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Sets the tenant table for multi-tenant admission.
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.cfg.tenants = tenants;
        self
    }

    /// Sets the contention threshold for the weighted-fair gate.
    pub fn fair_watermark(mut self, watermark: usize) -> Self {
        self.cfg.fair_watermark = watermark;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        if self.cfg.queue_watermark == 0 {
            return Err(ConfigError::ZeroQueueWatermark);
        }
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

/// What the service ultimately did with one job of the instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// Never offered to the admission controller.
    NotSubmitted,
    /// Shed at admission; the policy never saw it.
    Rejected(AdmissionError),
    /// Admitted and not yet completed (queued, pending, or running).
    Accepted,
    /// Ran to completion.
    Completed,
}

/// The result of draining a [`Service`]: the completed placements, the fault
/// audit trail, the per-job ledger, and the run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Final placement of every completed job (rejected jobs are absent).
    pub schedule: Schedule,
    /// Failure/recovery/re-release/completion audit trail.
    pub log: FaultLog,
    /// Per-job outcome, indexed by job id.
    pub outcomes: Vec<JobOutcome>,
    /// End-of-run accounting (also pushed to the telemetry sink).
    pub summary: ServiceSummary,
    /// Per-tenant accounting; empty on the single-tenant path.
    pub tenants: Vec<TenantStat>,
}

/// Pending fault-queue entries; `Recover < Fail` so recoveries fire first
/// at a shared instant, exactly as in the chaos driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FaultKind {
    Recover(usize),
    Fail(usize),
}

/// A long-running scheduling service around one [`OnlinePolicy`].
///
/// Jobs come from a fixed [`Instance`] (the catalog of everything that may
/// be submitted); callers submit job ids over time via
/// [`Service::submit_at`] (or [`Service::submit`] at the clock's current
/// now) and finally [`Service::drain`] the loop, which runs the remaining
/// events to quiescence and returns the [`ServiceReport`] plus the
/// telemetry sink.
pub struct Service<C: Clock, S: TelemetrySink> {
    pub(crate) cfg: ServiceConfig,
    pub(crate) clock: C,
    sink: S,
    policy: Box<dyn OnlinePolicy>,
    /// Pristine copy for metrics; `work` is what aging mutates.
    original: Instance,
    work: Instance,
    cluster: ClusterState,
    schedule: Schedule,
    log: FaultLog,
    pub(crate) outcomes: Vec<JobOutcome>,
    /// Admitted, undelivered submissions ordered by (delivery time,
    /// submission sequence) — matches the batch drivers' (release, id)
    /// arrival order when jobs are submitted in id order.
    queue: BinaryHeap<Reverse<(OrdTime, u64, JobId)>>,
    /// Exact fixed-point per-resource demand of the queued jobs.
    queued_demand: Vec<Amount>,
    /// Live per-tenant admission state; empty on the single-tenant path.
    tenants: Vec<TenantState>,
    /// Admitting tenant of each job, indexed by job id; empty when
    /// single-tenant (everything is implicitly tenant 0).
    job_tenant: Vec<u32>,
    seq: u64,
    fault_q: BinaryHeap<Reverse<(OrdTime, FaultKind)>>,
    re_released: Vec<JobId>,
    /// Precedence gate for DAG instances; inert (every query
    /// short-circuits) when the instance has no edges.
    gate: PrecedenceGate,
    /// Original admission sequence of each currently-held job, indexed by
    /// job id, so a gate-opened job re-enters the delivery queue with its
    /// admission-order tiebreak intact. Empty for edge-free instances.
    held_seq: Vec<u64>,
    /// Scratch: held jobs whose gates this event's completions opened.
    opened_buf: Vec<JobId>,
    // Scratch buffers reused across events.
    freed: Vec<usize>,
    completed_buf: Vec<(JobId, usize)>,
    deliver_buf: Vec<JobId>,
    /// Placements captured from the dispatcher while a journal is
    /// attached; empty otherwise.
    placed_buf: Vec<(JobId, u32)>,
    /// Write-ahead journal / replay verifier, when durability is on.
    /// Boxed: durability is off by default and the hot loop should not
    /// carry its footprint.
    pub(crate) dur: Option<Box<Durability>>,
    // Counters and telemetry state.
    submitted: usize,
    accepted: usize,
    rejected_queue_full: usize,
    rejected_infeasible: usize,
    rejected_tenant: usize,
    max_queue_depth: usize,
    epochs: usize,
    decision_ns: Vec<u64>,
    pub(crate) last_event: Time,
    started: std::time::Instant,
}

impl<C: Clock, S: TelemetrySink> Service<C, S> {
    /// Builds a service over `instance` with the given policy, clock, and
    /// telemetry sink.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] if the configuration is invalid (see
    /// [`ServiceConfig`] field docs) — surfaced to the caller instead of
    /// killing the daemon.
    pub fn new(
        instance: Instance,
        policy: Box<dyn OnlinePolicy>,
        cfg: ServiceConfig,
        clock: C,
        sink: S,
    ) -> Result<Self, ConfigError> {
        if cfg.queue_watermark == 0 {
            return Err(ConfigError::ZeroQueueWatermark);
        }
        cfg.check()?;
        let n = instance.len();
        let r = instance.num_resources();
        let fault_q = cfg
            .fault_plan
            .events()
            .iter()
            .enumerate()
            .map(|(i, e)| Reverse((OrdTime(e.at), FaultKind::Fail(i))))
            .collect();
        let total_weight: f64 = cfg.tenants.iter().map(|t| t.weight).sum();
        let tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .map(|t| TenantState::new(t.clone(), total_weight, cfg.num_machines, r))
            .collect();
        let job_tenant = if tenants.is_empty() {
            Vec::new()
        } else {
            vec![0u32; n]
        };
        let gate = PrecedenceGate::new(&instance);
        let held_seq = if gate.is_active() {
            vec![0u64; n]
        } else {
            Vec::new()
        };
        Ok(Service {
            cluster: ClusterState::new(cfg.num_machines, r),
            schedule: Schedule::new(n, cfg.num_machines),
            log: FaultLog {
                failures: Vec::new(),
                recoveries: Vec::new(),
                re_releases: vec![0; n],
                completions: Vec::new(),
            },
            outcomes: vec![JobOutcome::NotSubmitted; n],
            queue: BinaryHeap::new(),
            queued_demand: vec![0; r],
            tenants,
            job_tenant,
            seq: 0,
            fault_q,
            re_released: Vec::new(),
            gate,
            held_seq,
            opened_buf: Vec::new(),
            freed: Vec::new(),
            completed_buf: Vec::new(),
            deliver_buf: Vec::new(),
            placed_buf: Vec::new(),
            dur: None,
            submitted: 0,
            accepted: 0,
            rejected_queue_full: 0,
            rejected_infeasible: 0,
            rejected_tenant: 0,
            max_queue_depth: 0,
            epochs: 0,
            decision_ns: Vec::new(),
            last_event: f64::NEG_INFINITY,
            started: std::time::Instant::now(),
            original: instance.clone(),
            work: instance,
            cfg,
            clock,
            sink,
            policy,
        })
    }

    /// Attaches a write-ahead journal (and snapshot store) to a pristine
    /// service. Durability is off by default; with it on, every admission
    /// decision and event outcome is framed, checksummed, and flushed at
    /// the configured cadence, and [`Service::restore`] can rebuild the
    /// exact service from the journal after a crash.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::AttachAfterStart`] if the service has already
    /// admitted a submission or processed an event — those could never be
    /// replayed.
    pub fn attach_journal(
        &mut self,
        dcfg: DurabilityConfig,
        out: Box<dyn std::io::Write + Send>,
        snapshots: Box<dyn SnapshotStore + Send>,
    ) -> Result<(), DurabilityError> {
        if self.submitted > 0 || self.epochs > 0 || self.dur.is_some() {
            return Err(DurabilityError::AttachAfterStart {
                events: self.epochs,
                submitted: self.submitted,
            });
        }
        let fingerprint = config_fingerprint(&self.original, &self.cfg, &dcfg);
        let writer = JournalWriter::new(out, fingerprint);
        self.dur = Some(Box::new(Durability::new(
            dcfg,
            fingerprint,
            DurabilitySink::Journal { writer, snapshots },
        )));
        Ok(())
    }

    /// The first durability failure (journal or snapshot IO), if any.
    /// Durability failures never abort the event loop — the scheduler's
    /// non-preemptive commitments outrank the audit trail — so operators
    /// poll this.
    pub fn durability_error(&self) -> Option<DurabilityError> {
        self.dur.as_ref().and_then(|d| d.error.clone())
    }

    /// `(appends, bytes, flushes)` written to the attached journal so far.
    pub fn journal_stats(&self) -> Option<(u64, u64, u64)> {
        self.dur.as_ref().and_then(|d| match &d.sink {
            DurabilitySink::Journal { writer, .. } => Some(writer.stats()),
            DurabilitySink::Verify(_) => None,
        })
    }

    /// Emits one record into the attached journal/verifier, if any.
    #[inline]
    fn emit(&mut self, make: impl FnOnce() -> JournalRecord) {
        if let Some(d) = self.dur.as_deref_mut() {
            d.emit(make());
        }
    }

    /// The service's current time.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Admitted submissions still waiting for delivery to the policy.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The current outcome of `job`.
    pub fn outcome(&self, job: JobId) -> JobOutcome {
        self.outcomes[job.index()]
    }

    /// Per-tenant accounting so far — the mid-run view of
    /// [`ServiceReport::tenants`]. Empty on the single-tenant path.
    pub fn tenant_stats(&self) -> Vec<TenantStat> {
        self.tenants.iter().map(|t| t.stat()).collect()
    }

    /// Submits `job` at the clock's current time without advancing it —
    /// the threaded front-end's entry point. See [`Service::submit_at`].
    pub fn submit(&mut self, job: JobId) -> Result<(), AdmissionError> {
        self.submit_as(job, TenantId::DEFAULT)
    }

    /// [`Service::submit`] on behalf of `tenant`.
    ///
    /// # Panics
    ///
    /// If `tenant` is not in the configured tenant table (or nonzero on a
    /// single-tenant service).
    pub fn submit_as(&mut self, job: JobId, tenant: TenantId) -> Result<(), AdmissionError> {
        let now = self.clock.now();
        self.admit(now, job, tenant)
    }

    /// Advances the service to time `t` (processing every event due
    /// strictly before it) and then offers `job` to the admission
    /// controller.
    ///
    /// The outer error is fatal — the policy violated a placement rule
    /// while catching up. The inner result is the admission decision;
    /// rejections are recorded in the job's [`JobOutcome`] and are normal
    /// operation, not failures.
    ///
    /// # Panics
    ///
    /// If `job` is out of range for the instance or was already submitted.
    pub fn submit_at(
        &mut self,
        t: Time,
        job: JobId,
    ) -> Result<Result<(), AdmissionError>, SchedulingError> {
        self.submit_at_as(t, job, TenantId::DEFAULT)
    }

    /// [`Service::submit_at`] on behalf of `tenant`.
    ///
    /// # Panics
    ///
    /// Additionally panics if `tenant` is not in the configured tenant
    /// table (or nonzero on a single-tenant service).
    pub fn submit_at_as(
        &mut self,
        t: Time,
        job: JobId,
        tenant: TenantId,
    ) -> Result<Result<(), AdmissionError>, SchedulingError> {
        while let Some(next) = self.next_event_time() {
            if next >= t {
                break;
            }
            let now = self.clock.advance_to(next);
            self.process_event(now)?;
        }
        let now = self.clock.advance_to(t);
        Ok(self.admit(now, job, tenant))
    }

    /// Records a tenant-quota rejection: ledger, counters, journal.
    fn reject_tenant(
        &mut self,
        now: Time,
        job: JobId,
        tenant: TenantId,
        kind: TenantQuotaKind,
    ) -> AdmissionError {
        let err = AdmissionError::TenantQuota { tenant, kind };
        self.rejected_tenant += 1;
        self.tenants[tenant.index()].rejected += 1;
        mris_obs::counter_add_labeled(
            "mris_tenant_rejected_total",
            ("tenant", self.tenants[tenant.index()].label),
            1,
        );
        self.outcomes[job.index()] = JobOutcome::Rejected(err);
        self.emit(|| JournalRecord::Reject {
            at: now,
            job: job.0,
            reason: RejectReason::TenantQuota,
            tenant: tenant.0,
        });
        err
    }

    fn admit(&mut self, now: Time, job: JobId, tenant: TenantId) -> Result<(), AdmissionError> {
        assert!(
            job.index() < self.work.len(),
            "unknown job {job} (instance has {} jobs)",
            self.work.len()
        );
        assert!(
            matches!(self.outcomes[job.index()], JobOutcome::NotSubmitted),
            "{job} was already submitted"
        );
        if self.tenants.is_empty() {
            assert!(
                tenant == TenantId::DEFAULT,
                "{tenant} submitted to a single-tenant service"
            );
        } else {
            assert!(
                tenant.index() < self.tenants.len(),
                "unknown {tenant} (service has {} tenants)",
                self.tenants.len()
            );
        }
        self.submitted += 1;
        let depth = self.queue.len();
        if depth >= self.cfg.queue_watermark {
            let err = AdmissionError::QueueFull {
                depth,
                watermark: self.cfg.queue_watermark,
            };
            self.rejected_queue_full += 1;
            mris_obs::counter_add("mris_service_rejected_queue_full_total", 1);
            if !self.tenants.is_empty() {
                self.tenants[tenant.index()].rejected += 1;
                mris_obs::counter_add_labeled(
                    "mris_tenant_rejected_total",
                    ("tenant", self.tenants[tenant.index()].label),
                    1,
                );
            }
            self.outcomes[job.index()] = JobOutcome::Rejected(err);
            self.emit(|| JournalRecord::Reject {
                at: now,
                job: job.0,
                reason: RejectReason::QueueFull,
                tenant: tenant.0,
            });
            return Err(err);
        }
        // Per-tenant queue-depth gate (multi-tenant only).
        if !self.tenants.is_empty() {
            let ts = &self.tenants[tenant.index()];
            if ts.queued_jobs >= ts.spec.queue_watermark {
                let kind = TenantQuotaKind::QueueDepth {
                    depth: ts.queued_jobs,
                    watermark: ts.spec.queue_watermark,
                };
                return Err(self.reject_tenant(now, job, tenant, kind));
            }
        }
        let budget_ticks = self.cfg.load_watermark * self.cfg.num_machines as f64 * CAPACITY as f64;
        if budget_ticks.is_finite() {
            let j = self.work.job(job);
            for (resource, (&queued, &demand)) in
                self.queued_demand.iter().zip(j.demands.iter()).enumerate()
            {
                if (queued + demand) as f64 > budget_ticks {
                    let err = AdmissionError::DemandInfeasible {
                        job,
                        resource,
                        queued: fraction(queued),
                        budget: self.cfg.load_watermark * self.cfg.num_machines as f64,
                    };
                    self.rejected_infeasible += 1;
                    mris_obs::counter_add("mris_service_rejected_infeasible_total", 1);
                    if !self.tenants.is_empty() {
                        self.tenants[tenant.index()].rejected += 1;
                        mris_obs::counter_add_labeled(
                            "mris_tenant_rejected_total",
                            ("tenant", self.tenants[tenant.index()].label),
                            1,
                        );
                    }
                    self.outcomes[job.index()] = JobOutcome::Rejected(err);
                    self.emit(|| JournalRecord::Reject {
                        at: now,
                        job: job.0,
                        reason: RejectReason::LoadShed,
                        tenant: tenant.0,
                    });
                    return Err(err);
                }
            }
        }
        // Per-tenant queued-demand gate (multi-tenant only).
        if !self.tenants.is_empty() {
            let ts = &self.tenants[tenant.index()];
            let tenant_budget =
                ts.spec.load_watermark * self.cfg.num_machines as f64 * CAPACITY as f64;
            if tenant_budget.is_finite() {
                let j = self.work.job(job);
                for (&queued, &demand) in ts.queued_demand.iter().zip(j.demands.iter()) {
                    if (queued + demand) as f64 > tenant_budget {
                        let kind = TenantQuotaKind::QueuedDemand {
                            queued: fraction(queued),
                            budget: ts.spec.load_watermark * self.cfg.num_machines as f64,
                        };
                        return Err(self.reject_tenant(now, job, tenant, kind));
                    }
                }
            }
        }
        // Weighted-fair gate: when the global queue is contended, admission
        // spends deficit credit earned from deliveries (see crate::tenant).
        let mut spend = 0u64;
        if !self.tenants.is_empty() && self.queue.len() >= self.cfg.fair_watermark {
            let cost = job_cost(self.work.job(job));
            let ts = &self.tenants[tenant.index()];
            if ts.deficit < cost {
                let kind = TenantQuotaKind::FairShare {
                    deficit: ts.deficit,
                    cost,
                };
                return Err(self.reject_tenant(now, job, tenant, kind));
            }
            spend = cost;
        }
        let j = self.work.job(job);
        let ready = now.max(j.release);
        let deliver = if self.cfg.epoch > 0.0 {
            (ready / self.cfg.epoch).ceil() * self.cfg.epoch
        } else {
            ready
        };
        for (q, &d) in self.queued_demand.iter_mut().zip(j.demands.iter()) {
            *q += d;
        }
        self.queue.push(Reverse((OrdTime(deliver), self.seq, job)));
        self.seq += 1;
        self.accepted += 1;
        mris_obs::counter_add("mris_service_admitted_total", 1);
        if !self.tenants.is_empty() {
            let cost = job_cost(self.work.job(job));
            let demand_ticks: u64 = self.work.job(job).demands.iter().sum();
            let ts = &mut self.tenants[tenant.index()];
            ts.deficit -= spend;
            ts.queued_jobs += 1;
            for (q, &d) in ts
                .queued_demand
                .iter_mut()
                .zip(self.work.job(job).demands.iter())
            {
                *q += d;
            }
            ts.admitted += 1;
            ts.admitted_cost += cost;
            self.job_tenant[job.index()] = tenant.0;
            let label = self.tenants[tenant.index()].label;
            mris_obs::counter_add_labeled("mris_tenant_admitted_total", ("tenant", label), 1);
            mris_obs::counter_add_labeled(
                "mris_tenant_queued_demand_total",
                ("tenant", label),
                demand_ticks,
            );
        }
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
        self.outcomes[job.index()] = JobOutcome::Accepted;
        self.emit(|| JournalRecord::Admit {
            at: now,
            job: job.0,
            tenant: tenant.0,
        });
        Ok(())
    }

    /// Replays one decision event at the recorded time `at` — the restore
    /// driver's stepper. The recorded time is used verbatim (the original
    /// run's clock may have lagged or been wall-driven; replay must not
    /// re-quantize it).
    pub(crate) fn replay_event(&mut self, at: Time) -> Result<(), SchedulingError> {
        self.clock.advance_to(at);
        self.process_event(at)
    }

    /// Replays one admission decision at the recorded time `at` on behalf
    /// of the recorded `tenant`. The decision itself is re-derived (and
    /// cross-checked by the replay verifier), so the return value mirrors
    /// the original's.
    pub(crate) fn replay_admit(
        &mut self,
        at: Time,
        job: JobId,
        tenant: TenantId,
    ) -> Result<(), AdmissionError> {
        self.clock.advance_to(at);
        self.admit(at, job, tenant)
    }

    /// The time of the next pending event (delivery, completion, fault, or
    /// policy wakeup), or `None` when the service is quiescent.
    pub fn next_event_time(&self) -> Option<Time> {
        let delivery = self.queue.peek().map(|&Reverse((t, _, _))| t.0);
        let completion = self.cluster.next_completion();
        let fault = self.fault_q.peek().map(|&Reverse((t, _))| t.0);
        let wake = self.policy.next_wakeup().filter(|&t| t > self.last_event);
        let mut next = f64::INFINITY;
        for t in [delivery, completion, fault, wake].into_iter().flatten() {
            next = next.min(t);
        }
        next.is_finite().then_some(next)
    }

    /// How long a wall-clock caller should sleep before the next event is
    /// due; `None` when there is no pending event or no waiting is needed.
    pub fn wait_hint(&self) -> Option<std::time::Duration> {
        self.next_event_time().and_then(|t| self.clock.wait_hint(t))
    }

    /// Advances the clock to the next pending event and processes it.
    /// Returns `false` if the service was already quiescent.
    ///
    /// # Errors
    ///
    /// Propagates placement-rule violations from the policy.
    pub fn step(&mut self) -> Result<bool, SchedulingError> {
        match self.next_event_time() {
            None => Ok(false),
            Some(next) => {
                let now = self.clock.advance_to(next);
                self.process_event(now)?;
                Ok(true)
            }
        }
    }

    /// One decision event at `now`: completions, fault events, arrival
    /// deliveries, re-releases, a single dispatch, then telemetry.
    /// Everything due at or before `now` is handled (a lagging clock may
    /// overshoot the event that scheduled this call).
    fn process_event(&mut self, now: Time) -> Result<(), SchedulingError> {
        self.last_event = now;
        self.emit(|| JournalRecord::Event { at: now });

        // 1. Completions — before faults, so a job finishing exactly at a
        //    strike instant survives.
        self.freed.clear();
        self.completed_buf.clear();
        self.opened_buf.clear();
        self.cluster
            .complete_due_recorded(now, &self.work, &mut self.completed_buf);
        let first_new_completion = self.log.completions.len();
        for i in 0..self.completed_buf.len() {
            let (job, machine) = self.completed_buf[i];
            // Completions are ordered before the fault events that unassign
            // jobs at the same tick (a fault re-release racing a completion
            // lands in step 2); a missing assignment means that ordering
            // regressed, so surface the typed error — the ledger keeps the
            // job's last recorded state — instead of aborting the service.
            let Some(a) = self.schedule.get(job) else {
                return Err(SchedulingError::UnassignedCompletion { job, machine });
            };
            self.log.completions.push(CompletionRecord {
                job,
                machine,
                start: a.start,
                end: a.start + self.work.job(job).proc_time,
            });
            self.outcomes[job.index()] = JobOutcome::Completed;
            self.freed.push(machine);
            self.gate.complete(job, &self.work, &mut self.opened_buf);
            self.emit(|| JournalRecord::Complete {
                job: job.0,
                machine: machine as u32,
            });
        }
        let completions = self.completed_buf.len();
        // Held jobs whose last predecessor just completed re-enter the
        // delivery queue at this instant (epoch-quantized, like admission)
        // under their original sequence, so step 3 delivers them in
        // admission order alongside any originals due now.
        if !self.opened_buf.is_empty() {
            let deliver = if self.cfg.epoch > 0.0 {
                (now / self.cfg.epoch).ceil() * self.cfg.epoch
            } else {
                now
            };
            for i in 0..self.opened_buf.len() {
                let job = self.opened_buf[i];
                self.queue
                    .push(Reverse((OrdTime(deliver), self.held_seq[job.index()], job)));
                self.emit(|| JournalRecord::PrecedenceReady { job: job.0 });
            }
            self.opened_buf.clear();
        }

        // 2. Fault events due (recoveries before failures at an instant).
        while let Some(&Reverse((t, kind))) = self.fault_q.peek() {
            if t.0 > now {
                break;
            }
            self.fault_q.pop();
            match kind {
                FaultKind::Recover(machine) => {
                    self.cluster.recover_machine(machine);
                    self.freed.push(machine);
                    self.log.recoveries.push((now, machine));
                    self.policy.on_machine_recovered(now, machine, &self.work);
                    self.emit(|| JournalRecord::Recover {
                        machine: machine as u32,
                        at: now,
                    });
                }
                FaultKind::Fail(idx) => {
                    let event = self.cfg.fault_plan.events()[idx];
                    let Some(machine) = resolve_fault_target(event.target, &self.cluster) else {
                        continue;
                    };
                    let killed = self.cluster.fail_machine(machine);
                    let recover_at = now + event.downtime;
                    for &job in &killed {
                        self.schedule.unassign(job);
                        self.log.re_releases[job.index()] += 1;
                        self.outcomes[job.index()] = JobOutcome::Accepted;
                        if let RestartSemantics::WeightAging { factor } = self.cfg.restart {
                            self.work.scale_weight(job, factor);
                        }
                        // Defensive gate re-arm, mirroring the chaos driver:
                        // completions run before failures at an instant and
                        // only running jobs can be killed, so `job` was never
                        // marked complete and this is a no-op today; it keeps
                        // the gate sound if that ordering ever changes.
                        // Started successors are never recalled.
                        for s in self.gate.revoke(job, &self.work) {
                            if self.schedule.get(s).is_none() {
                                self.gate.hold(s);
                            }
                        }
                        self.re_released.push(job);
                    }
                    self.fault_q
                        .push(Reverse((OrdTime(recover_at), FaultKind::Recover(machine))));
                    self.log.failures.push(FailureRecord {
                        at: now,
                        machine,
                        recover_at,
                        killed: killed.clone(),
                    });
                    self.policy
                        .on_machine_failed(now, machine, recover_at, &killed, &self.work);
                    self.emit(|| JournalRecord::Fail {
                        machine: machine as u32,
                        at: now,
                        recover_at,
                    });
                    for &job in &killed {
                        self.emit(|| JournalRecord::ReRelease { job: job.0 });
                    }
                }
            }
        }

        // 3. Deliveries due: originals first, then this event's re-releases.
        self.freed.sort_unstable();
        self.freed.dedup();
        self.deliver_buf.clear();
        let mut delivered_cost = 0u64;
        while let Some(&Reverse((t, s, job))) = self.queue.peek() {
            if t.0 > now {
                break;
            }
            self.queue.pop();
            if !self.gate.is_ready(job) {
                // Released but a predecessor is still outstanding: withhold
                // from the policy. Queued-demand and tenant accounting stay
                // charged — the job is still admitted-and-undelivered — and
                // the sequence is kept for the re-enqueue on gate open.
                self.gate.hold(job);
                self.held_seq[job.index()] = s;
                continue;
            }
            for (q, &d) in self
                .queued_demand
                .iter_mut()
                .zip(self.work.job(job).demands.iter())
            {
                *q -= d;
            }
            if !self.tenants.is_empty() {
                delivered_cost += job_cost(self.work.job(job));
                let ts = &mut self.tenants[self.job_tenant[job.index()] as usize];
                ts.queued_jobs -= 1;
                for (q, &d) in ts
                    .queued_demand
                    .iter_mut()
                    .zip(self.work.job(job).demands.iter())
                {
                    *q -= d;
                }
            }
            self.deliver_buf.push(job);
        }
        // Deficit-round-robin credit: delivered cost is earned back by the
        // tenants that still have work queued, proportional to weight, so
        // a contended queue converges to a weight-proportional admitted
        // split while a lone active tenant keeps the full delivery rate.
        if delivered_cost > 0 {
            let active_weight: f64 = self
                .tenants
                .iter()
                .filter(|t| t.queued_jobs > 0)
                .map(|t| t.spec.weight)
                .sum();
            for ts in self.tenants.iter_mut() {
                if ts.queued_jobs > 0 {
                    let credit = (delivered_cost as f64 * ts.spec.weight / active_weight) as u64;
                    ts.deficit = (ts.deficit + credit).min(ts.burst);
                } else {
                    // The tenant left the active set: restore its burst
                    // allowance (the DRR deficit reset) so it re-enters
                    // contention from the same starting line.
                    ts.deficit = ts.burst;
                }
            }
        }
        let arrivals = self.deliver_buf.len();
        // Reading the monotonic clock twice per event is measurable against
        // sub-microsecond decisions, so latency is sampled: every event while
        // observability is installed, every 4th event otherwise. Percentiles
        // in the summary are over the sampled events.
        let timed = mris_obs::enabled() || self.epochs.is_multiple_of(4);
        let decision_started = timed.then(std::time::Instant::now);
        if arrivals > 0 {
            self.policy.on_arrivals(now, &self.deliver_buf, &self.work);
        }
        let re_releases = self.re_released.len();
        if re_releases > 0 {
            self.re_released.sort_unstable();
            self.policy.on_arrivals(now, &self.re_released, &self.work);
            self.re_released.clear();
        }

        // 4. One dispatch per event.
        let running_before = self.cluster.num_running();
        self.placed_buf.clear();
        {
            let mut dispatcher =
                Dispatcher::new(&mut self.cluster, &mut self.schedule, &self.work, now);
            if self.dur.is_some() {
                dispatcher.record_placements(&mut self.placed_buf);
            }
            if self.gate.is_active() {
                dispatcher.set_gate(&self.gate);
            }
            self.policy.dispatch(&mut dispatcher, &self.freed)?;
        }
        for i in 0..self.placed_buf.len() {
            let (job, machine) = self.placed_buf[i];
            let start = self.schedule.get(job).map_or(now, |a| a.start);
            self.emit(|| JournalRecord::Place {
                job: job.0,
                machine,
                start,
            });
        }
        self.placed_buf.clear();
        let decision_ns = decision_started.map(|t| t.elapsed().as_nanos() as u64);
        if let Some(ns) = decision_ns {
            self.decision_ns.push(ns);
        }
        let placements = self.cluster.num_running() - running_before;
        if mris_obs::enabled() {
            mris_obs::counter_add("mris_service_epochs_total", 1);
            mris_obs::histogram_record(
                "mris_service_epoch_batch_size",
                (arrivals + re_releases) as f64,
            );
            mris_obs::histogram_record(
                "mris_service_decision_latency_seconds",
                decision_ns.unwrap_or(0) as f64 * 1e-9,
            );
        }

        // 5. Telemetry.
        let record = EpochRecord {
            epoch: self.epochs,
            time: now,
            queue_depth: self.queue.len(),
            arrivals,
            re_releases,
            placements,
            completions,
            running: self.cluster.num_running(),
            rejections_total: self.rejected_queue_full
                + self.rejected_infeasible
                + self.rejected_tenant,
            decision_ns: decision_ns.unwrap_or(0),
        };
        self.epochs += 1;
        self.sink.epoch(&record);

        // 6. Debug invariant audit, mirroring the chaos driver.
        #[cfg(debug_assertions)]
        {
            for rec in &self.log.completions[first_new_completion..] {
                for fail in &self.log.failures {
                    assert!(
                        !(rec.machine == fail.machine
                            && rec.start < fail.recover_at
                            && fail.at < rec.end),
                        "service invariant violated: {} ran [{}, {}) across downtime [{}, {}) on machine {}",
                        rec.job,
                        rec.start,
                        rec.end,
                        fail.at,
                        fail.recover_at,
                        rec.machine
                    );
                }
            }
            for (_, m, job) in self.cluster.running_jobs() {
                assert!(
                    self.cluster.is_up(m),
                    "service invariant violated: {job} is running on down machine {m}"
                );
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = first_new_completion;

        // 7. Durability boundary: snapshot if due, flush at cadence. The
        //    state encoding is computed only at snapshot points.
        if let Some(mut d) = self.dur.take() {
            let state = d.snapshot_due().then(|| self.durable_state_bytes());
            d.event_end(now, state);
            self.dur = Some(d);
        }
        Ok(())
    }

    /// Canonical encoding of the full committed service state — the
    /// snapshot payload and the replay-equivalence witness. Unordered
    /// containers are emitted sorted; wall-clock-only fields (the
    /// decision-latency samples, the start `Instant`) and scratch buffers
    /// are excluded because they differ between an original run and its
    /// replay without affecting any scheduling decision.
    pub(crate) fn durable_state_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.f64(self.last_event);
        e.u64(self.submitted as u64);
        e.u64(self.accepted as u64);
        e.u64(self.rejected_queue_full as u64);
        e.u64(self.rejected_infeasible as u64);
        e.u64(self.max_queue_depth as u64);
        e.u64(self.epochs as u64);
        e.u64(self.seq);
        e.u64(self.outcomes.len() as u64);
        for o in &self.outcomes {
            e.u8(match o {
                JobOutcome::NotSubmitted => 0,
                JobOutcome::Rejected(AdmissionError::QueueFull { .. }) => 1,
                JobOutcome::Rejected(AdmissionError::DemandInfeasible { .. }) => 2,
                JobOutcome::Accepted => 3,
                JobOutcome::Completed => 4,
                JobOutcome::Rejected(AdmissionError::TenantQuota { .. }) => 5,
            });
        }
        // Weight aging mutates `work`; everything else in it is static.
        for j in self.work.jobs() {
            e.f64(j.weight);
        }
        let mut queue: Vec<(u64, u64, u32)> = self
            .queue
            .iter()
            .map(|&Reverse((t, s, j))| (t.0.to_bits(), s, j.0))
            .collect();
        queue.sort_unstable();
        e.u64(queue.len() as u64);
        for (t, s, j) in queue {
            e.u64(t);
            e.u64(s);
            e.u32(j);
        }
        e.u64(self.queued_demand.len() as u64);
        for &d in &self.queued_demand {
            e.u64(d);
        }
        let mut faults: Vec<(u64, u8, u64)> = self
            .fault_q
            .iter()
            .map(|&Reverse((t, kind))| match kind {
                FaultKind::Recover(m) => (t.0.to_bits(), 0u8, m as u64),
                FaultKind::Fail(i) => (t.0.to_bits(), 1u8, i as u64),
            })
            .collect();
        faults.sort_unstable();
        e.u64(faults.len() as u64);
        for (t, k, p) in faults {
            e.u64(t);
            e.u8(k);
            e.u64(p);
        }
        e.u64(self.re_released.len() as u64);
        for j in &self.re_released {
            e.u32(j.0);
        }
        let mut sub = Vec::new();
        self.cluster.durable_bytes(&mut sub);
        e.bytes(&sub);
        for i in 0..self.original.len() {
            match self.schedule.get(JobId(i as u32)) {
                Some(a) => {
                    e.u8(1);
                    e.u32(a.machine as u32);
                    e.f64(a.start);
                }
                None => e.u8(0),
            }
        }
        e.u64(self.log.failures.len() as u64);
        for f in &self.log.failures {
            e.f64(f.at);
            e.u64(f.machine as u64);
            e.f64(f.recover_at);
            e.u64(f.killed.len() as u64);
            for j in &f.killed {
                e.u32(j.0);
            }
        }
        e.u64(self.log.recoveries.len() as u64);
        for &(t, m) in &self.log.recoveries {
            e.f64(t);
            e.u64(m as u64);
        }
        e.u64(self.log.re_releases.len() as u64);
        for &n in &self.log.re_releases {
            e.u64(n as u64);
        }
        e.u64(self.log.completions.len() as u64);
        for c in &self.log.completions {
            e.u32(c.job.0);
            e.u64(c.machine as u64);
            e.f64(c.start);
            e.f64(c.end);
        }
        sub.clear();
        let encoded = self.policy.encode_durable_state(&mut sub);
        e.u8(encoded as u8);
        e.u64(sub.len() as u64);
        e.bytes(&sub);
        // Tenant section — only on the multi-tenant path, so single-tenant
        // snapshot bytes stay identical to the pre-tenancy format.
        if !self.tenants.is_empty() {
            e.u64(self.tenants.len() as u64);
            for ts in &self.tenants {
                e.u64(ts.queued_jobs as u64);
                e.u64(ts.deficit);
                e.u64(ts.admitted);
                e.u64(ts.rejected);
                e.u64(ts.admitted_cost);
                e.u64(ts.queued_demand.len() as u64);
                for &d in &ts.queued_demand {
                    e.u64(d);
                }
            }
            e.u64(self.rejected_tenant as u64);
        }
        // Precedence section — only for DAG instances, so edge-free
        // snapshot bytes stay identical to the pre-precedence format.
        if self.gate.is_active() {
            sub.clear();
            self.gate.durable_bytes_if_active(&mut sub);
            e.bytes(&sub);
            for &s in &self.held_seq {
                e.u64(s);
            }
        }
        e.into_bytes()
    }

    /// Runs the loop to quiescence, enforces that every accepted job
    /// completed, verifies the fault log, emits the summary to the sink,
    /// and returns the report together with the sink.
    ///
    /// # Errors
    ///
    /// [`SchedulingError::StrandedJobs`] if the policy left accepted jobs
    /// incomplete, or any placement-rule violation raised while draining.
    pub fn drain(mut self) -> Result<(ServiceReport, S), SchedulingError> {
        while let Some(next) = self.next_event_time() {
            let now = self.clock.advance_to(next);
            self.process_event(now)?;
        }
        let stranded = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Accepted))
            .count();
        if stranded > 0 {
            return Err(SchedulingError::StrandedJobs { unplaced: stranded });
        }
        debug_assert!(
            self.log.verify().is_ok(),
            "service fault-log invariant violated at drain"
        );
        if let Some(d) = self.dur.as_deref_mut() {
            let at = self.clock.now();
            d.emit(JournalRecord::Close { at });
            d.flush();
        }
        let completed = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Completed))
            .count();
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let awct = if completed > 0 {
            self.schedule.total_weighted_completion(&self.original) / completed as f64
        } else {
            0.0
        };
        let latency: Vec<f64> = self.decision_ns.iter().map(|&ns| ns as f64).collect();
        let summary = ServiceSummary {
            submitted: self.submitted,
            accepted: self.accepted,
            rejected_queue_full: self.rejected_queue_full,
            rejected_infeasible: self.rejected_infeasible,
            completed,
            epochs: self.epochs,
            max_queue_depth: self.max_queue_depth,
            failures: self.log.failures.len(),
            awct,
            makespan: self.schedule.makespan(&self.original),
            drained_at: self.clock.now(),
            wall_seconds,
            // Guard against a zero-resolution timer on pathological hosts.
            throughput_jobs_per_sec: completed as f64 / wall_seconds.max(1e-9),
            decision_latency_us: Percentiles::of(&latency).map(|p| p.scaled(1_000.0)),
        };
        self.sink.summary(&summary);
        Ok((
            ServiceReport {
                schedule: self.schedule,
                log: self.log,
                outcomes: self.outcomes,
                summary,
                tenants: self.tenants.iter().map(|t| t.stat()).collect(),
            },
            self.sink,
        ))
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn builder_defaults_match_new() {
        let built = ServiceConfig::builder(3).build().unwrap();
        let direct = ServiceConfig::new(3);
        assert_eq!(built.num_machines, direct.num_machines);
        assert_eq!(built.epoch, direct.epoch);
        assert_eq!(built.queue_watermark, direct.queue_watermark);
        assert_eq!(built.load_watermark, direct.load_watermark);
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = ServiceConfig::builder(2)
            .epoch(0.5)
            .queue_watermark(16)
            .load_watermark(4.0)
            .restart(RestartSemantics::WeightAging { factor: 0.5 })
            .fault_plan(FaultPlan::none())
            .build()
            .unwrap();
        assert_eq!(cfg.epoch, 0.5);
        assert_eq!(cfg.queue_watermark, 16);
        assert_eq!(cfg.load_watermark, 4.0);
        assert!(matches!(
            cfg.restart,
            RestartSemantics::WeightAging { factor } if factor == 0.5
        ));
    }

    #[test]
    fn builder_rejects_invalid_values() {
        assert!(matches!(
            ServiceConfig::builder(0).build(),
            Err(ConfigError::NoMachines)
        ));
        assert!(matches!(
            ServiceConfig::builder(1).epoch(f64::NAN).build(),
            Err(ConfigError::InvalidEpoch { .. })
        ));
        assert!(matches!(
            ServiceConfig::builder(1).epoch(-1.0).build(),
            Err(ConfigError::InvalidEpoch { .. })
        ));
        assert!(matches!(
            ServiceConfig::builder(1).queue_watermark(0).build(),
            Err(ConfigError::ZeroQueueWatermark)
        ));
        assert!(matches!(
            ServiceConfig::builder(1).load_watermark(0.0).build(),
            Err(ConfigError::InvalidLoadWatermark { .. })
        ));
        assert!(matches!(
            ServiceConfig::builder(1)
                .restart(RestartSemantics::WeightAging { factor: -0.1 })
                .build(),
            Err(ConfigError::InvalidAgingFactor { .. })
        ));
    }
}
