//! Multi-tenant admission state: per-tenant quotas and weighted-fair
//! (deficit-round-robin) sharing of the global admission watermark.
//!
//! Tenancy is opt-in: a [`crate::ServiceConfig`] with an empty tenant table
//! runs the PR 8 single-tenant admission path byte-for-byte (no per-tenant
//! bookkeeping, no new journal payload sections, identical fingerprints).
//! With tenants configured, every submission carries a
//! [`mris_types::TenantId`] and passes three extra gates after the global
//! watermarks:
//!
//! 1. **Tenant queue depth** — the tenant's own undelivered-job watermark.
//! 2. **Tenant queued demand** — the tenant's own load watermark, in
//!    multiples of one machine's capacity, over its *queued* demand.
//! 3. **Weighted-fair share** — when the global queue is contended (depth at
//!    or above `fair_watermark`), admission spends *deficit credit*.
//!    Credit is earned when queued work is delivered to the policy: the
//!    delivered cost (peak demand ticks) is split among the tenants that
//!    still have work queued, proportional to their configured weights.
//!    A tenant that keeps submitting faster than its weight share earns
//!    credit is rejected with [`mris_types::TenantQuotaKind::FairShare`]
//!    until deliveries replenish it — deficit round-robin over admission
//!    slots rather than packets.
//!
//! Credit is capped at a per-tenant *burst allowance* (its weight share of
//! the whole cluster's capacity ticks), which doubles as the initial
//! deficit so a freshly started tenant can fill its share of the queue
//! before any delivery has happened. Crediting only *active* tenants (those
//! with queued work) keeps a lone busy tenant at full delivery rate instead
//! of starving it down to its weight share of an otherwise idle cluster.

use mris_types::{Amount, Job, CAPACITY};

/// Static description of one tenant: identity, authentication token, and
/// admission quotas. Part of [`crate::ServiceConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (the obs label value).
    pub name: String,
    /// Static bearer token presented by `mris-net` connections to
    /// authenticate as this tenant.
    pub token: String,
    /// Fair-share weight; admitted cost under contention is proportional
    /// to weights. Must be finite and positive.
    pub weight: f64,
    /// The tenant's own queue-depth watermark (counts its undelivered
    /// jobs). `usize::MAX` (the default) disables the per-tenant gate.
    pub queue_watermark: usize,
    /// The tenant's own queued-demand watermark in multiples of one
    /// machine's capacity. `f64::INFINITY` (the default) disables it.
    pub load_watermark: f64,
}

impl TenantSpec {
    /// A tenant with the given identity and weight, and permissive quotas.
    pub fn new(name: impl Into<String>, token: impl Into<String>, weight: f64) -> Self {
        TenantSpec {
            name: name.into(),
            token: token.into(),
            weight,
            queue_watermark: usize::MAX,
            load_watermark: f64::INFINITY,
        }
    }

    /// Sets the per-tenant queue-depth watermark.
    pub fn queue_watermark(mut self, watermark: usize) -> Self {
        self.queue_watermark = watermark;
        self
    }

    /// Sets the per-tenant queued-demand watermark.
    pub fn load_watermark(mut self, watermark: f64) -> Self {
        self.load_watermark = watermark;
        self
    }
}

/// Per-tenant accounting in a drained [`crate::ServiceReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStat {
    /// Tenant name, copied from its [`TenantSpec`].
    pub name: String,
    /// Configured fair-share weight.
    pub weight: f64,
    /// Submissions admitted for this tenant.
    pub admitted: u64,
    /// Submissions rejected by any gate while attributed to this tenant.
    pub rejected: u64,
    /// Total admitted cost in demand ticks (peak demand across resources
    /// per job) — the quantity the weighted-fair gate divides.
    pub admitted_cost: u64,
}

/// Live per-tenant admission state inside the service.
#[derive(Debug, Clone)]
pub(crate) struct TenantState {
    pub(crate) spec: TenantSpec,
    /// Obs label value; leaked once per service so the hot path can use
    /// `&'static str` labels.
    pub(crate) label: &'static str,
    /// The tenant's undelivered admitted jobs.
    pub(crate) queued_jobs: usize,
    /// The tenant's undelivered admitted demand, per resource.
    pub(crate) queued_demand: Vec<Amount>,
    /// Deficit-round-robin credit in demand ticks; spent on contended
    /// admissions, earned from deliveries, capped at `burst`.
    pub(crate) deficit: u64,
    /// Credit cap and initial allowance: the tenant's weight share of the
    /// cluster's total capacity ticks.
    pub(crate) burst: u64,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) admitted_cost: u64,
}

impl TenantState {
    pub(crate) fn new(spec: TenantSpec, total_weight: f64, machines: usize, r: usize) -> Self {
        let share = spec.weight / total_weight;
        let burst = ((share * machines as f64 * CAPACITY as f64) as u64).max(1);
        let label: &'static str = Box::leak(spec.name.clone().into_boxed_str());
        TenantState {
            spec,
            label,
            queued_jobs: 0,
            queued_demand: vec![0; r],
            deficit: burst,
            burst,
            admitted: 0,
            rejected: 0,
            admitted_cost: 0,
        }
    }

    pub(crate) fn stat(&self) -> TenantStat {
        TenantStat {
            name: self.spec.name.clone(),
            weight: self.spec.weight,
            admitted: self.admitted,
            rejected: self.rejected,
            admitted_cost: self.admitted_cost,
        }
    }
}

/// A job's cost in demand ticks for the fair-share gate: its peak demand
/// across resources, floored at one tick so zero-demand jobs still consume
/// an admission slot.
pub(crate) fn job_cost(job: &Job) -> u64 {
    job.demands.iter().copied().max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_weight_share_of_cluster_ticks() {
        let a = TenantState::new(TenantSpec::new("a", "ta", 3.0), 4.0, 4, 2);
        let b = TenantState::new(TenantSpec::new("b", "tb", 1.0), 4.0, 4, 2);
        assert_eq!(a.burst, (0.75 * 4.0 * CAPACITY as f64) as u64);
        assert_eq!(b.burst, (0.25 * 4.0 * CAPACITY as f64) as u64);
        assert_eq!(a.deficit, a.burst);
    }

    #[test]
    fn spec_builder_sets_quotas() {
        let s = TenantSpec::new("a", "t", 1.0)
            .queue_watermark(8)
            .load_watermark(2.0);
        assert_eq!(s.queue_watermark, 8);
        assert_eq!(s.load_watermark, 2.0);
    }
}
