//! Snapshot container format and pluggable snapshot stores.
//!
//! A snapshot is a checksummed, version-tagged container around the
//! service's canonical state bytes (committed timelines with compaction
//! watermarks and shard layout, admission ledger, pending fault queue,
//! cluster state, and the policy's durable state — see
//! `Service::durable_state_bytes`):
//!
//! ```text
//! magic "MRSN" | version u32 | fingerprint u64 | lsn u64 | at f64
//!             | state_len u32 | crc32(state) u32 | state bytes
//! ```
//!
//! Restore does **not** deserialize a snapshot into live structures — live
//! state (notably the policy's) is rebuilt by replaying the journal from
//! genesis, which is the only policy-agnostic way to reconstruct a
//! `Box<dyn OnlinePolicy>` bit-for-bit. Instead, when replay reaches the
//! snapshot's sequence number it re-derives the state bytes and compares
//! them to the stored snapshot, turning every snapshot into an end-to-end
//! consistency check; and a snapshot is the anchor for degraded
//! journal-loss recovery (`RestoreOptions::outage`).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mris_types::{CodecError, DurabilityError, Time};

use crate::codec::{crc32, Decoder, Encoder};

/// Snapshot file magic bytes.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MRSN";
/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One decoded (or to-be-encoded) snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Format version.
    pub version: u32,
    /// Configuration fingerprint (same value as the paired journal's).
    pub fingerprint: u64,
    /// Journal records preceding this snapshot's mark.
    pub lsn: u64,
    /// Service time the snapshot was taken at.
    pub at: Time,
    /// The service's canonical state bytes.
    pub state: Vec<u8>,
}

impl Snapshot {
    /// Encodes the container; encode→decode→encode is byte-identical
    /// (pinned by the codec round-trip suite).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&SNAPSHOT_MAGIC);
        e.u32(self.version);
        e.u64(self.fingerprint);
        e.u64(self.lsn);
        e.f64(self.at);
        e.u32(self.state.len() as u32);
        e.u32(crc32(&self.state));
        e.bytes(&self.state);
        e.into_bytes()
    }

    /// Strictly decodes a container: bad magic, unsupported version, short
    /// input, trailing bytes, and checksum mismatches are all typed errors.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CodecError> {
        let mut d = Decoder::new(bytes);
        let magic = d.bytes(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic {
                found: magic.try_into().expect("4-byte slice"),
            });
        }
        let version = d.u32()?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let fingerprint = d.u64()?;
        let lsn = d.u64()?;
        let at = d.f64()?;
        let state_len = d.u32()? as usize;
        let stored = d.u32()?;
        let state_offset = d.offset();
        let state = d.bytes(state_len)?.to_vec();
        d.finish()?;
        let computed = crc32(&state);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch {
                offset: state_offset,
                stored,
                computed,
            });
        }
        Ok(Snapshot {
            version,
            fingerprint,
            lsn,
            at,
            state,
        })
    }
}

/// Where encoded snapshots go.
pub trait SnapshotStore {
    /// Persists one snapshot. Errors are latched by the durability layer
    /// (they never abort the event loop).
    fn put(&mut self, snap: &Snapshot) -> Result<(), DurabilityError>;
}

/// Discards snapshots (journal-only durability).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSnapshots;

impl SnapshotStore for NullSnapshots {
    fn put(&mut self, _snap: &Snapshot) -> Result<(), DurabilityError> {
        Ok(())
    }
}

/// Keeps every encoded snapshot in memory behind a shareable handle — the
/// crash suite's store.
#[derive(Debug, Clone, Default)]
pub struct MemorySnapshots(Arc<Mutex<Vec<Vec<u8>>>>);

impl MemorySnapshots {
    /// An empty store.
    pub fn new() -> Self {
        MemorySnapshots::default()
    }

    /// Copies of every snapshot persisted so far, in order.
    pub fn all(&self) -> Vec<Vec<u8>> {
        self.0.lock().expect("snapshot store lock").clone()
    }
}

impl SnapshotStore for MemorySnapshots {
    fn put(&mut self, snap: &Snapshot) -> Result<(), DurabilityError> {
        self.0
            .lock()
            .expect("snapshot store lock")
            .push(snap.encode());
        Ok(())
    }
}

/// Writes each snapshot to `dir/snapshot-<lsn>.bin` (zero-padded so
/// lexicographic order is LSN order). The write goes through a `.tmp`
/// sibling and a rename, so a crash mid-snapshot never leaves a torn file
/// under the canonical name.
#[derive(Debug, Clone)]
pub struct DirSnapshots {
    dir: PathBuf,
}

impl DirSnapshots {
    /// A store rooted at `dir`, created if missing.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirSnapshots { dir })
    }

    /// Loads the newest (highest-LSN) snapshot file under `dir`, if any.
    pub fn latest(dir: &Path) -> std::io::Result<Option<Vec<u8>>> {
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".bin"))
            })
            .collect();
        names.sort();
        match names.last() {
            Some(path) => Ok(Some(std::fs::read(path)?)),
            None => Ok(None),
        }
    }
}

impl SnapshotStore for DirSnapshots {
    fn put(&mut self, snap: &Snapshot) -> Result<(), DurabilityError> {
        let write = || -> std::io::Result<()> {
            let name = self.dir.join(format!("snapshot-{:012}.bin", snap.lsn));
            let tmp = self.dir.join(format!("snapshot-{:012}.bin.tmp", snap.lsn));
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&snap.encode())?;
            f.flush()?;
            std::fs::rename(&tmp, &name)
        };
        write().map_err(|e| DurabilityError::SnapshotIo {
            detail: e.to_string(),
        })
    }
}
