//! Zero-dependency binary codec for the durability layer.
//!
//! All multi-byte integers are little-endian; `f64` values are encoded as
//! their IEEE-754 bit patterns so encode→decode→encode is byte-identical
//! (the crash-equivalence suite compares AWCT *bits*, so the codec must
//! never round-trip through decimal). On top of the primitive streams sit
//! the two integrity primitives the journal and snapshot formats share:
//! CRC-32 (IEEE polynomial) over frame payloads and an FNV-1a 64-bit
//! configuration fingerprint.

use mris_types::CodecError;

/// Append-only primitive encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes encoded so far, without consuming the encoder.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Empties the encoder, keeping its allocation for reuse on hot paths.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Overwrites 4 bytes at `offset` with `v`, little-endian — for
    /// backpatching a frame header after its payload is encoded in place.
    ///
    /// # Panics
    ///
    /// If `offset + 4` exceeds the encoded length.
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        self.buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes without a length prefix (caller frames them).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based primitive decoder; every read is bounds-checked and returns
/// a typed [`CodecError`] instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset (for error reporting and frame accounting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                offset: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Asserts the input is fully consumed (strict container parsing).
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Malformed {
                offset: self.pos,
                detail: format!("{} trailing bytes after the last field", self.remaining()),
            });
        }
        Ok(())
    }
}

/// The CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE polynomial, as in gzip/PNG) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `data` — the durability layer's configuration
/// fingerprint. Not cryptographic; it only needs to make "restored under a
/// different config" overwhelmingly detectable.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(-0.0);
        e.f64(f64::MAX);
        e.bytes(b"abc");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::MAX);
        assert_eq!(d.bytes(3).unwrap(), b"abc");
        d.finish().unwrap();
    }

    #[test]
    fn short_reads_are_typed_truncations() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(
            d.u32(),
            Err(CodecError::Truncated {
                offset: 0,
                needed: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut d = Decoder::new(&[1, 2, 3]);
        d.u8().unwrap();
        assert!(matches!(d.finish(), Err(CodecError::Malformed { .. })));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv64_matches_known_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let data = b"the scheduler is contractually bound".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
