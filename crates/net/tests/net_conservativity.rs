//! Network conservativity: the TCP front door is an invisible transport.
//!
//! * A single-tenant run driven over a loopback socket is **bit-identical**
//!   (schedule, AWCT bits, outcome ledger, fault log) to the same run
//!   driven in-process, across policies and seeds.
//! * The wire codec round-trips every request/response exactly, and no
//!   corruption — truncation, bit flips, hostile lengths — ever panics a
//!   decoder; every failure is a typed error.
//! * The handshake refuses wrong versions, wrong fingerprints, and
//!   unknown tenant tokens with typed errors.

use std::io::Cursor;

use mris_core::registry::online_policy_by_name;
use mris_net::{read_frame, write_frame, NetClient, Request, Response};
use mris_rng::Rng;
use mris_service::{
    generate_workload, run_workload, service_fingerprint, ArrivalProcess, JobOutcome,
    LoadGenConfig, MemorySink, NullSink, Service, ServiceConfig, ServiceReport, SimClock,
    TenantSpec,
};
use mris_types::{AdmissionError, JobId, NetError, TenantId, TenantQuotaKind};

const MACHINES: usize = 2;

fn workload(seed: u64, jobs: usize) -> mris_service::Workload {
    generate_workload(&LoadGenConfig {
        num_jobs: jobs,
        seed,
        arrivals: ArrivalProcess::Poisson { rate: 4.0 },
    })
}

fn in_process_report(
    w: &mris_service::Workload,
    policy: &str,
    cfg: &ServiceConfig,
) -> ServiceReport {
    let p = online_policy_by_name(policy, &w.instance, cfg.num_machines).expect("known policy");
    let svc = Service::new(
        w.instance.clone(),
        p,
        cfg.clone(),
        SimClock::new(),
        NullSink,
    )
    .expect("valid config");
    let (report, _) = run_workload(svc, w).expect("no policy violation");
    report
}

fn tcp_report(
    w: &mris_service::Workload,
    policy: &'static str,
    cfg: &ServiceConfig,
) -> ServiceReport {
    let fp = service_fingerprint(&w.instance, cfg);
    let server = mris_net::serve_net(
        w.instance.clone(),
        cfg.clone(),
        SimClock::new(),
        NullSink,
        move |inst, m| online_policy_by_name(policy, inst, m).expect("known policy"),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut client = NetClient::connect(&addr, "", fp).expect("handshake");
    for job in w.instance.jobs() {
        let _ = client.submit_at(job.release, job.id).expect("transport ok");
    }
    let report = client.drain().expect("drain over wire");
    let (local, _) = server.wait().expect("server side clean");
    // The wire copy and the server's own copy agree too.
    assert_reports_equal(&local, &report);
    report
}

/// Equality on everything deterministic; wall-clock-derived fields
/// (wall_seconds, throughput, decision latency) are excluded by design.
fn assert_reports_equal(a: &ServiceReport, b: &ServiceReport) {
    assert_eq!(a.schedule, b.schedule, "schedules diverged");
    assert_eq!(a.outcomes, b.outcomes, "outcome ledgers diverged");
    assert_eq!(a.log, b.log, "fault logs diverged");
    assert_eq!(a.tenants, b.tenants, "tenant stats diverged");
    let (sa, sb) = (&a.summary, &b.summary);
    assert_eq!(sa.awct.to_bits(), sb.awct.to_bits(), "AWCT bits diverged");
    assert_eq!(sa.makespan.to_bits(), sb.makespan.to_bits());
    assert_eq!(sa.drained_at.to_bits(), sb.drained_at.to_bits());
    assert_eq!(sa.submitted, sb.submitted);
    assert_eq!(sa.accepted, sb.accepted);
    assert_eq!(sa.rejected_queue_full, sb.rejected_queue_full);
    assert_eq!(sa.rejected_infeasible, sb.rejected_infeasible);
    assert_eq!(sa.completed, sb.completed);
    assert_eq!(sa.epochs, sb.epochs);
    assert_eq!(sa.max_queue_depth, sb.max_queue_depth);
    assert_eq!(sa.failures, sb.failures);
}

/// The tentpole pin: a single-tenant TCP run equals the in-process run on
/// bits, across 3 policies and 16 seeds.
#[test]
fn tcp_is_bit_identical_to_in_process() {
    for policy in ["mris", "tetris", "pq-wsjf"] {
        for seed in 0..16u64 {
            let w = workload(0xC0DE + seed, 18);
            let cfg = ServiceConfig::new(MACHINES);
            let local = in_process_report(&w, policy, &cfg);
            let wire = tcp_report(&w, policy, &cfg);
            assert_reports_equal(&local, &wire);
            wire.log.verify().expect("chaos audit");
            // The ledger partition holds after the wire crossing too.
            for o in &wire.outcomes {
                assert!(!matches!(
                    o,
                    JobOutcome::NotSubmitted | JobOutcome::Accepted
                ));
            }
        }
    }
}

/// Watermarked configs shed over TCP exactly as in-process, so rejection
/// ledgers (typed AdmissionError payloads) survive the wire.
#[test]
fn tcp_preserves_rejection_ledgers() {
    // Pre-submit every job at t = 0 (releases lie in the future) so the
    // admission queue builds past the watermark and sheds.
    let w = workload(0xBEEF, 40);
    let cfg = ServiceConfig::builder(MACHINES)
        .queue_watermark(3)
        .build()
        .expect("valid");

    let p = online_policy_by_name("pq-wsjf", &w.instance, MACHINES).expect("known policy");
    let mut svc = Service::new(
        w.instance.clone(),
        p,
        cfg.clone(),
        SimClock::new(),
        NullSink,
    )
    .expect("valid config");
    for job in w.instance.jobs() {
        let _ = svc.submit_at(0.0, job.id).expect("no policy violation");
    }
    let (local, _) = svc.drain().expect("drain");

    let fp = service_fingerprint(&w.instance, &cfg);
    let server = mris_net::serve_net(
        w.instance.clone(),
        cfg,
        SimClock::new(),
        NullSink,
        |inst, m| online_policy_by_name("pq-wsjf", inst, m).expect("known policy"),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut client = NetClient::connect(&addr, "", fp).expect("handshake");
    for job in w.instance.jobs() {
        let _ = client.submit_at(0.0, job.id).expect("transport ok");
    }
    let wire = client.drain().expect("drain over wire");
    let _ = server.wait().expect("server side clean");

    assert_reports_equal(&local, &wire);
    assert!(
        wire.summary.rejected_queue_full > 0,
        "watermark never fired; the test lost its teeth"
    );
    // Rejected outcomes carry their typed AdmissionError across the wire.
    assert!(wire
        .outcomes
        .iter()
        .any(|o| matches!(o, JobOutcome::Rejected(AdmissionError::QueueFull { .. }))));
}

/// Handshake refusals: wrong version, wrong fingerprint, bad token.
#[test]
fn handshake_refuses_typed() {
    let w = workload(7, 6);
    let cfg = ServiceConfig::builder(MACHINES)
        .tenants(vec![
            TenantSpec::new("alpha", "alpha-token", 3.0),
            TenantSpec::new("beta", "beta-token", 1.0),
        ])
        .build()
        .expect("valid");
    let fp = service_fingerprint(&w.instance, &cfg);
    let server = mris_net::serve_net(
        w.instance.clone(),
        cfg.clone(),
        SimClock::new(),
        NullSink,
        |inst, m| online_policy_by_name("tetris", inst, m).expect("known"),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.addr().to_string();

    match NetClient::connect(&addr, "alpha-token", fp ^ 1) {
        Err(NetError::FingerprintMismatch { server, client }) => {
            assert_eq!(server, fp);
            assert_eq!(client, fp ^ 1);
        }
        Err(e) => panic!("expected fingerprint refusal, got {e:?}"),
        Ok(_) => panic!("mismatched fingerprint was accepted"),
    }
    match NetClient::connect(&addr, "who-goes-there", fp) {
        Err(NetError::AuthFailed) => {}
        Err(e) => panic!("expected auth refusal, got {e:?}"),
        Ok(_) => panic!("unknown token was accepted"),
    }
    // Correct token authenticates to the right tenant.
    let beta = NetClient::connect(&addr, "beta-token", fp).expect("beta handshake");
    assert_eq!(beta.tenant(), 1);
    assert_eq!(beta.fingerprint(), fp);

    // Submit as both tenants over the wire, then drain; the report's
    // tenant table carries the split.
    let mut alpha = NetClient::connect(&addr, "alpha-token", fp).expect("alpha handshake");
    let mut beta = beta;
    for job in w.instance.jobs() {
        let client = if job.id.0 % 2 == 0 {
            &mut alpha
        } else {
            &mut beta
        };
        let _ = client.submit_at(job.release, job.id).expect("transport");
    }
    let report = alpha.drain().expect("drain");
    assert_eq!(report.tenants.len(), 2);
    assert_eq!(report.tenants[0].name, "alpha");
    let offered: u64 = report.tenants.iter().map(|t| t.admitted + t.rejected).sum();
    assert_eq!(offered as usize, w.instance.len());
    let _ = server.wait().expect("clean serve");
}

/// Query, Stats, and Subscribe over a live server.
#[test]
fn query_stats_subscribe_roundtrip() {
    let w = workload(21, 10);
    let cfg = ServiceConfig::new(MACHINES);
    let fp = service_fingerprint(&w.instance, &cfg);
    let server = mris_net::serve_net(
        w.instance.clone(),
        cfg,
        SimClock::new(),
        MemorySink::default(),
        |inst, m| online_policy_by_name("pq-wsjf", inst, m).expect("known"),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let mut sub = NetClient::connect(&addr, "", fp).expect("subscriber");
    sub.subscribe().expect("subscribe");
    let mut client = NetClient::connect(&addr, "", fp).expect("driver");

    assert!(matches!(
        client.query(JobId(0)).expect("query"),
        JobOutcome::NotSubmitted
    ));
    for job in w.instance.jobs() {
        let _ = client.submit_at(job.release, job.id).expect("transport");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted as usize, w.instance.len());
    assert_eq!(stats.submitted, stats.accepted + stats.rejected);
    // Unknown jobs are in-band errors, not panics or hangs.
    match client.query(JobId(9999)) {
        Err(NetError::Remote { .. }) => {}
        other => panic!("expected remote error, got {other:?}"),
    }
    let report = client.drain().expect("drain");
    assert_eq!(report.summary.completed, report.summary.accepted);
    // The subscriber saw at least one epoch line and the summary line.
    let first = sub.next_telemetry().expect("telemetry line");
    assert!(first.contains("\"event\""), "not a JSONL event: {first}");
    let mut saw_summary = first.contains("\"summary\"") || first.contains("awct");
    while let Ok(line) = sub.next_telemetry() {
        saw_summary |= line.contains("awct");
    }
    assert!(saw_summary, "summary line never reached the subscriber");
    let _ = server.wait().expect("clean serve");
}

/// After a drain, new requests on fresh connections answer in-band errors.
#[test]
fn drained_server_answers_errors() {
    let w = workload(3, 4);
    let cfg = ServiceConfig::new(1);
    let server = mris_net::serve_net(
        w.instance.clone(),
        cfg,
        SimClock::new(),
        NullSink,
        |inst, m| online_policy_by_name("tetris", inst, m).expect("known"),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let client = NetClient::connect(&addr, "", 0).expect("handshake");
    let _ = client.drain().expect("drain");
    let _ = server.wait().expect("clean");
    // The listener is gone (or refuses) after the drain; either a failed
    // connect or an in-band error is acceptable — never a hang or panic.
    if let Ok(mut late) = NetClient::connect(&addr, "", 0) {
        match late.submit(JobId(0)) {
            Err(_) => {}
            Ok(_) => panic!("drained server admitted a job"),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec properties (mirrors tests/durability_codec.rs)
// ---------------------------------------------------------------------------

fn all_requests() -> Vec<Request> {
    vec![
        Request::Submit { job: 0, at: None },
        Request::Submit {
            job: u32::MAX,
            at: Some(-0.0),
        },
        Request::SubmitBatch {
            jobs: vec![(1, None), (2, Some(3.5)), (u32::MAX, Some(1e300))],
        },
        Request::SubmitBatch { jobs: vec![] },
        Request::Query { job: 17 },
        Request::Stats,
        Request::Subscribe,
        Request::Drain,
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::Error {
            detail: "nope".to_string(),
        },
        Response::Submitted { result: Ok(()) },
        Response::Submitted {
            result: Err(AdmissionError::QueueFull {
                depth: 9,
                watermark: 8,
            }),
        },
        Response::Submitted {
            result: Err(AdmissionError::DemandInfeasible {
                job: JobId(3),
                resource: 1,
                queued: 1.5,
                budget: 1.25,
            }),
        },
        Response::Submitted {
            result: Err(AdmissionError::TenantQuota {
                tenant: TenantId(2),
                kind: TenantQuotaKind::FairShare {
                    deficit: 10,
                    cost: 500_000,
                },
            }),
        },
        Response::Submitted {
            result: Err(AdmissionError::TenantQuota {
                tenant: TenantId(1),
                kind: TenantQuotaKind::QueueDepth {
                    depth: 4,
                    watermark: 4,
                },
            }),
        },
        Response::Submitted {
            result: Err(AdmissionError::TenantQuota {
                tenant: TenantId(0),
                kind: TenantQuotaKind::QueuedDemand {
                    queued: 0.75,
                    budget: 0.5,
                },
            }),
        },
        Response::BatchSubmitted {
            results: vec![
                Ok(()),
                Err(AdmissionError::QueueFull {
                    depth: 1,
                    watermark: 1,
                }),
            ],
        },
        Response::JobStatus {
            outcome: JobOutcome::Completed,
        },
        Response::JobStatus {
            outcome: JobOutcome::Rejected(AdmissionError::QueueFull {
                depth: usize::MAX,
                watermark: usize::MAX,
            }),
        },
        Response::Subscribed,
        Response::Telemetry {
            line: "{\"event\": \"epoch\"}".to_string(),
        },
    ]
}

/// A drained response with real payload for fuzzing: run a tiny service.
fn real_drained_response() -> Response {
    let w = workload(11, 8);
    let cfg = ServiceConfig::new(MACHINES);
    let report = in_process_report(&w, "pq-wsjf", &cfg);
    Response::Drained(Box::new(report))
}

#[test]
fn wire_round_trip_is_exact() {
    for req in all_requests() {
        let bytes = Request::encode(&req);
        assert_eq!(Request::decode(&bytes).expect("own encoding"), req);
    }
    for resp in sample_responses() {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).expect("own encoding"), resp);
    }
    let drained = real_drained_response();
    let bytes = drained.encode();
    let back = Response::decode(&bytes).expect("own encoding");
    match (&drained, &back) {
        (Response::Drained(a), Response::Drained(b)) => assert_reports_equal(a, b),
        _ => panic!("drained response changed shape"),
    }
}

/// Truncating any payload at every boundary is a typed error, never a
/// panic; same for every single-byte flip (or it decodes to a different
/// value — never silently the same).
#[test]
fn corrupted_payloads_are_typed_or_divergent() {
    let mut payloads: Vec<Vec<u8>> = all_requests().iter().map(Request::encode).collect();
    payloads.extend(sample_responses().iter().map(Response::encode));
    payloads.push(real_drained_response().encode());
    for bytes in &payloads {
        for cut in 0..bytes.len() {
            let _ = Request::decode(&bytes[..cut]);
            let _ = Response::decode(&bytes[..cut]);
        }
    }
    let mut rng = Rng::new(0xFA22).substream("net-fuzz");
    for bytes in &payloads {
        for _ in 0..32 {
            let mut bad = bytes.clone();
            let flips = 1 + rng.next_u64_below(4) as usize;
            for _ in 0..flips {
                let bit = rng.next_u64_below(bad.len() as u64 * 8);
                bad[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            // Typed or fine — but never a panic.
            let _ = Request::decode(&bad);
            let _ = Response::decode(&bad);
        }
    }
    // Pure garbage too.
    for len in [0usize, 1, 7, 64, 1024] {
        let junk: Vec<u8> = (0..len).map(|_| rng.next_u64_below(256) as u8).collect();
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
    }
}

/// The frame layer: checksum mismatches, hostile lengths, and torn frames
/// are typed; a round-tripped frame is exact.
#[test]
fn frame_layer_is_typed() {
    let payload = Request::Stats.encode();
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).expect("write to vec");
    let got = read_frame(&mut Cursor::new(&buf)).expect("read own frame");
    assert_eq!(got, payload);

    // Flip a payload byte: checksum mismatch.
    let mut bad = buf.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xFF;
    match read_frame(&mut Cursor::new(&bad)) {
        Err(NetError::Codec(mris_types::CodecError::ChecksumMismatch { .. })) => {}
        other => panic!("expected checksum mismatch, got {other:?}"),
    }

    // Hostile length field: typed, no allocation bomb.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&0u32.to_le_bytes());
    match read_frame(&mut Cursor::new(&hostile)) {
        Err(NetError::Codec(mris_types::CodecError::Malformed { .. })) => {}
        other => panic!("expected malformed length, got {other:?}"),
    }

    // Torn frames at every cut: typed, never a panic.
    for cut in 0..buf.len() {
        match read_frame(&mut Cursor::new(&buf[..cut])) {
            Ok(_) => panic!("torn frame decoded at cut {cut}"),
            Err(NetError::Closed) => assert_eq!(cut, 0, "Closed only before the first byte"),
            Err(_) => {}
        }
    }

    // Empty stream is a clean close.
    assert!(matches!(
        read_frame(&mut Cursor::new(&[] as &[u8])),
        Err(NetError::Closed)
    ));
}
