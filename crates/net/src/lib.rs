//! TCP front door for the MRIS scheduling service.
//!
//! `mris-net` exposes a running [`mris_service::Service`] over a plain
//! TCP socket — zero external dependencies, thread-per-connection — so
//! clients in other processes can submit jobs, query the outcome ledger,
//! stream telemetry, and drain the service for its final report.
//!
//! * **Wire protocol** ([`proto`]) — length-prefixed, CRC-32-checksummed
//!   frames over the service's own codec, opened by an `MRNP` handshake
//!   that pins the protocol version and (optionally) the configuration
//!   fingerprint of the served world. Floats travel as IEEE-754 bits, so
//!   a drained report crosses the wire bit-identically.
//! * **Server** ([`serve_net`], [`NetServer`]) — an acceptor plus
//!   per-connection handler threads relaying requests to a single worker
//!   thread that owns the service; the admission sequence is the channel
//!   order, so one client connection replays the in-process driver
//!   exactly (the `net_conservativity` suite pins TCP ≡ in-process on
//!   bits).
//! * **Multi-tenant admission** — connections authenticate to a
//!   [`mris_service::TenantSpec`] by token during the handshake; every
//!   submission is offered on that tenant's behalf, subject to the
//!   service's per-tenant quotas and deficit-round-robin fair admission.
//! * **Client** ([`NetClient`]) — a blocking handle mirroring the
//!   in-process submission API: `submit`, `submit_at`, `submit_batch`,
//!   `query`, `stats`, `subscribe`, `drain`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod proto;
mod server;

pub use client::NetClient;
pub use proto::{
    read_frame, write_frame, HandshakeStatus, Hello, HelloReply, NetStats, Request, Response,
    MAX_FRAME_LEN, NET_MAGIC, NET_VERSION,
};
pub use server::{serve_net, NetServeError, NetServer};
