//! The MRNP wire protocol: handshake and framed request/response codec.
//!
//! # Frame format
//!
//! Every message after the handshake travels in the journal's frame
//! format — `len: u32 | crc32: u32 | payload` (little-endian, CRC-32/IEEE
//! over the payload) — reusing [`mris_service::Encoder`] /
//! [`mris_service::Decoder`] so the service and the network speak one
//! codec. A frame whose checksum does not match is a typed
//! [`CodecError::ChecksumMismatch`]; decoding never panics on corrupt
//! bytes (the fuzz suite in `tests/net_conservativity.rs` pins this).
//!
//! # Handshake
//!
//! The client opens with `magic "MRNP" | version: u32 | expected
//! fingerprint: u64 | token length: u32 | token bytes`. An expected
//! fingerprint of `0` skips the check; otherwise the server refuses the
//! connection unless it equals [`mris_service::service_fingerprint`] of
//! the served instance and configuration — two processes that would
//! replay different worlds can never talk past each other. The server
//! replies `magic | version | status: u8 | tenant: u32 | server
//! fingerprint: u64 | detail length: u32 | detail bytes`. The token
//! authenticates the connection to a tenant: with no tenants configured
//! every token maps to tenant 0; with tenants configured the token must
//! match a [`mris_service::TenantSpec::token`] exactly.
//!
//! # Floats
//!
//! Every `f64` travels as its IEEE-754 bit pattern, so AWCT and schedule
//! times survive the wire bit-identically — the TCP ≡ in-process
//! conservativity property is checked on bits, not on epsilons.

use std::io::{Read, Write};

use mris_service::{
    crc32, Decoder, Encoder, JobOutcome, ServiceReport, ServiceSummary, TenantStat,
};
use mris_sim::{CompletionRecord, FailureRecord, FaultLog};
use mris_types::{
    AdmissionError, CodecError, JobId, NetError, Schedule, TenantId, TenantQuotaKind, Time,
};

/// Magic bytes opening both directions of the handshake.
pub const NET_MAGIC: [u8; 4] = *b"MRNP";

/// Wire-protocol version. Bump on any frame-layout change; the server
/// refuses mismatched clients during the handshake (status
/// [`HandshakeStatus::VersionMismatch`]) rather than misparsing frames.
pub const NET_VERSION: u32 = 1;

/// Upper bound on a single frame's payload, to keep a corrupt or hostile
/// length field from provoking an unbounded allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// How the server answered the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeStatus {
    /// Connection accepted; the tenant id in the reply is authoritative.
    Ok,
    /// The token matched no configured tenant.
    AuthFailed,
    /// The client's expected fingerprint differs from the served world.
    FingerprintMismatch,
    /// The client speaks a different [`NET_VERSION`].
    VersionMismatch,
}

impl HandshakeStatus {
    fn to_u8(self) -> u8 {
        match self {
            HandshakeStatus::Ok => 0,
            HandshakeStatus::AuthFailed => 1,
            HandshakeStatus::FingerprintMismatch => 2,
            HandshakeStatus::VersionMismatch => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, NetError> {
        Ok(match v {
            0 => HandshakeStatus::Ok,
            1 => HandshakeStatus::AuthFailed,
            2 => HandshakeStatus::FingerprintMismatch,
            3 => HandshakeStatus::VersionMismatch,
            other => {
                return Err(NetError::UnexpectedResponse {
                    detail: format!("unknown handshake status {other}"),
                })
            }
        })
    }
}

/// What the client sends first on a fresh connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Client's [`NET_VERSION`].
    pub version: u32,
    /// Expected configuration fingerprint; `0` skips the check.
    pub expected_fingerprint: u64,
    /// Tenant token (ignored when the server runs single-tenant).
    pub token: String,
}

/// The server's answer to a [`Hello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloReply {
    /// Accept/refuse verdict.
    pub status: HandshakeStatus,
    /// The tenant the connection authenticated to (0 single-tenant).
    pub tenant: u32,
    /// The server's [`mris_service::service_fingerprint`].
    pub fingerprint: u64,
    /// Human-readable refusal detail (empty on [`HandshakeStatus::Ok`]).
    pub detail: String,
}

/// One client request. `Submit { at: Some(t) }` offers the job at service
/// time `t` exactly like [`mris_service::Service::submit_at`], so a
/// single-connection TCP run replays the same admission sequence as the
/// in-process driver; `at: None` offers at the service clock's now.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Offer one job to the admission controller.
    Submit {
        /// Job id into the served instance.
        job: u32,
        /// Service time of the offer (`None` = clock now).
        at: Option<Time>,
    },
    /// Offer several jobs in order, one round trip.
    SubmitBatch {
        /// `(job, at)` pairs, applied in order.
        jobs: Vec<(u32, Option<Time>)>,
    },
    /// Ask for one job's ledger outcome.
    Query {
        /// Job id into the served instance.
        job: u32,
    },
    /// Ask for the mid-run counters.
    Stats,
    /// Turn this connection into a telemetry stream: the server pushes a
    /// [`Response::Telemetry`] frame per decision epoch until drain.
    Subscribe,
    /// Drain the service and return the full [`ServiceReport`]. Ends the
    /// serve loop; subsequent requests on any connection fail.
    Drain,
}

/// Mid-run counters answered to [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetStats {
    /// Service time at the stats snapshot.
    pub now: Time,
    /// Jobs admitted and not yet delivered to the policy.
    pub queue_depth: u64,
    /// Ledger counts: jobs offered so far.
    pub submitted: u64,
    /// Ledger counts: offers admitted (queued, running, or completed).
    pub accepted: u64,
    /// Ledger counts: offers shed by admission control.
    pub rejected: u64,
    /// Ledger counts: jobs run to completion.
    pub completed: u64,
    /// Per-tenant accounting (empty single-tenant).
    pub tenants: Vec<TenantStat>,
}

/// One server response (or push, for subscribed connections).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request could not be served (unknown job, drained server, ...).
    Error {
        /// Human-readable reason.
        detail: String,
    },
    /// Admission verdict for [`Request::Submit`]. A rejection is normal
    /// operation recorded in the ledger, not a transport error.
    Submitted {
        /// The admission decision.
        result: Result<(), AdmissionError>,
    },
    /// Admission verdicts for [`Request::SubmitBatch`], in offer order.
    BatchSubmitted {
        /// One verdict per offered job.
        results: Vec<Result<(), AdmissionError>>,
    },
    /// Ledger outcome for [`Request::Query`].
    JobStatus {
        /// The job's current outcome.
        outcome: JobOutcome,
    },
    /// Counters for [`Request::Stats`].
    StatsReply(NetStats),
    /// The connection is now a telemetry stream.
    Subscribed,
    /// One telemetry push: the epoch record's JSONL line.
    Telemetry {
        /// The JSON line, exactly as a [`mris_service::JsonlSink`] would
        /// write it.
        line: String,
    },
    /// The drained [`ServiceReport`], transported bit-identically.
    Drained(Box<ServiceReport>),
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Writes `payload` as one `len | crc | payload` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), NetError> {
    let mut head = Encoder::new();
    head.u32(payload.len() as u32);
    head.u32(crc32(payload));
    w.write_all(head.as_bytes()).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    mris_obs::counter_add("mris_net_frames_tx_total", 1);
    mris_obs::counter_add("mris_net_bytes_tx_total", (payload.len() + 8) as u64);
    Ok(())
}

/// Reads one frame and returns its checksum-verified payload. A cleanly
/// closed stream before the first header byte is [`NetError::Closed`];
/// every other short read or corruption is typed.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, NetError> {
    let mut head = [0u8; 8];
    read_exact_or_closed(r, &mut head)?;
    let mut d = Decoder::new(&head);
    let len = d.u32().expect("8-byte header holds two u32s");
    let stored = d.u32().expect("8-byte header holds two u32s");
    if len > MAX_FRAME_LEN {
        return Err(NetError::Codec(CodecError::Malformed {
            offset: 0,
            detail: format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(io_err)?;
    let computed = crc32(&payload);
    if computed != stored {
        return Err(NetError::Codec(CodecError::ChecksumMismatch {
            offset: 8,
            stored,
            computed,
        }));
    }
    mris_obs::counter_add("mris_net_frames_rx_total", 1);
    mris_obs::counter_add("mris_net_bytes_rx_total", (payload.len() + 8) as u64);
    Ok(payload)
}

fn io_err(e: std::io::Error) -> NetError {
    NetError::Io {
        detail: e.to_string(),
    }
}

/// `read_exact` that maps EOF-before-the-first-byte to
/// [`NetError::Closed`] (a clean hangup between messages) and EOF
/// mid-buffer to a typed [`NetError::Io`] (a torn message).
fn read_exact_or_closed<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), NetError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    NetError::Closed
                } else {
                    NetError::Io {
                        detail: format!("connection closed mid-message after {got} bytes"),
                    }
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Handshake codec
// ---------------------------------------------------------------------------

impl Hello {
    /// Serializes the client half of the handshake.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&NET_MAGIC);
        e.u32(self.version);
        e.u64(self.expected_fingerprint);
        e.u32(self.token.len() as u32);
        e.bytes(self.token.as_bytes());
        e.into_bytes()
    }

    /// Writes the hello directly to the stream (not framed — it is the
    /// first bytes on the wire and self-describing).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), NetError> {
        w.write_all(&self.encode()).map_err(io_err)?;
        w.flush().map_err(io_err)
    }

    /// Reads and validates a hello from the stream.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, NetError> {
        let mut magic = [0u8; 4];
        read_exact_or_closed(r, &mut magic)?;
        if magic != NET_MAGIC {
            return Err(NetError::Codec(CodecError::BadMagic { found: magic }));
        }
        let mut fixed = [0u8; 16];
        r.read_exact(&mut fixed).map_err(io_err)?;
        let mut d = Decoder::new(&fixed);
        let version = d.u32().expect("fixed slice");
        let expected_fingerprint = d.u64().expect("fixed slice");
        let token_len = d.u32().expect("fixed slice");
        if token_len > 4096 {
            return Err(NetError::Codec(CodecError::Malformed {
                offset: 16,
                detail: format!("token length {token_len} exceeds cap 4096"),
            }));
        }
        let mut token = vec![0u8; token_len as usize];
        r.read_exact(&mut token).map_err(io_err)?;
        let token = String::from_utf8(token).map_err(|_| {
            NetError::Codec(CodecError::Malformed {
                offset: 20,
                detail: "token is not UTF-8".to_string(),
            })
        })?;
        Ok(Hello {
            version,
            expected_fingerprint,
            token,
        })
    }
}

impl HelloReply {
    /// Serializes the server half of the handshake.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&NET_MAGIC);
        e.u32(NET_VERSION);
        e.u8(self.status.to_u8());
        e.u32(self.tenant);
        e.u64(self.fingerprint);
        e.u32(self.detail.len() as u32);
        e.bytes(self.detail.as_bytes());
        e.into_bytes()
    }

    /// Writes the reply directly to the stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), NetError> {
        w.write_all(&self.encode()).map_err(io_err)?;
        w.flush().map_err(io_err)
    }

    /// Reads and validates a reply from the stream.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, NetError> {
        let mut magic = [0u8; 4];
        read_exact_or_closed(r, &mut magic)?;
        if magic != NET_MAGIC {
            return Err(NetError::Codec(CodecError::BadMagic { found: magic }));
        }
        let mut fixed = [0u8; 21];
        r.read_exact(&mut fixed).map_err(io_err)?;
        let mut d = Decoder::new(&fixed);
        let _version = d.u32().expect("fixed slice");
        let status = HandshakeStatus::from_u8(d.u8().expect("fixed slice"))?;
        let tenant = d.u32().expect("fixed slice");
        let fingerprint = d.u64().expect("fixed slice");
        let detail_len = d.u32().expect("fixed slice");
        if detail_len > 4096 {
            return Err(NetError::Codec(CodecError::Malformed {
                offset: 25,
                detail: format!("detail length {detail_len} exceeds cap 4096"),
            }));
        }
        let mut detail = vec![0u8; detail_len as usize];
        r.read_exact(&mut detail).map_err(io_err)?;
        let detail = String::from_utf8_lossy(&detail).into_owned();
        Ok(HelloReply {
            status,
            tenant,
            fingerprint,
            detail,
        })
    }
}

// ---------------------------------------------------------------------------
// Request / Response payload codec
// ---------------------------------------------------------------------------

fn encode_opt_time(e: &mut Encoder, at: Option<Time>) {
    match at {
        Some(t) => {
            e.u8(1);
            e.f64(t);
        }
        None => e.u8(0),
    }
}

fn decode_opt_time(d: &mut Decoder) -> Result<Option<Time>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.f64()?)),
        other => Err(CodecError::Malformed {
            offset: d.offset(),
            detail: format!("option tag {other}"),
        }),
    }
}

fn malformed(d: &Decoder, what: &str, v: impl std::fmt::Display) -> CodecError {
    CodecError::Malformed {
        offset: d.offset(),
        detail: format!("{what} {v}"),
    }
}

/// Caps a decoded collection length against the bytes that could possibly
/// back it, so corrupt counts fail typed instead of allocating wildly.
fn checked_len(d: &Decoder, n: u32, min_elem: usize) -> Result<usize, CodecError> {
    let n = n as usize;
    if n.saturating_mul(min_elem) > d.remaining() {
        return Err(CodecError::Malformed {
            offset: d.offset(),
            detail: format!("count {n} exceeds remaining payload"),
        });
    }
    Ok(n)
}

impl Request {
    /// Serializes the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Submit { job, at } => {
                e.u8(1);
                e.u32(*job);
                encode_opt_time(&mut e, *at);
            }
            Request::SubmitBatch { jobs } => {
                e.u8(2);
                e.u32(jobs.len() as u32);
                for (job, at) in jobs {
                    e.u32(*job);
                    encode_opt_time(&mut e, *at);
                }
            }
            Request::Query { job } => {
                e.u8(3);
                e.u32(*job);
            }
            Request::Stats => e.u8(4),
            Request::Subscribe => e.u8(5),
            Request::Drain => e.u8(6),
        }
        e.into_bytes()
    }

    /// Parses a frame payload; trailing bytes are malformed.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(payload);
        let req = match d.u8()? {
            1 => Request::Submit {
                job: d.u32()?,
                at: decode_opt_time(&mut d)?,
            },
            2 => {
                let raw = d.u32()?;
                let n = checked_len(&d, raw, 5)?;
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    let job = d.u32()?;
                    jobs.push((job, decode_opt_time(&mut d)?));
                }
                Request::SubmitBatch { jobs }
            }
            3 => Request::Query { job: d.u32()? },
            4 => Request::Stats,
            5 => Request::Subscribe,
            6 => Request::Drain,
            other => return Err(malformed(&d, "request tag", other)),
        };
        d.finish()?;
        Ok(req)
    }
}

fn encode_admission_error(e: &mut Encoder, err: &AdmissionError) {
    match *err {
        AdmissionError::QueueFull { depth, watermark } => {
            e.u8(1);
            e.u64(depth as u64);
            e.u64(watermark as u64);
        }
        AdmissionError::DemandInfeasible {
            job,
            resource,
            queued,
            budget,
        } => {
            e.u8(2);
            e.u32(job.0);
            e.u64(resource as u64);
            e.f64(queued);
            e.f64(budget);
        }
        AdmissionError::TenantQuota { tenant, kind } => {
            e.u8(3);
            e.u32(tenant.0);
            match kind {
                TenantQuotaKind::QueueDepth { depth, watermark } => {
                    e.u8(1);
                    e.u64(depth as u64);
                    e.u64(watermark as u64);
                }
                TenantQuotaKind::QueuedDemand { queued, budget } => {
                    e.u8(2);
                    e.f64(queued);
                    e.f64(budget);
                }
                TenantQuotaKind::FairShare { deficit, cost } => {
                    e.u8(3);
                    e.u64(deficit);
                    e.u64(cost);
                }
            }
        }
    }
}

fn decode_admission_error(d: &mut Decoder) -> Result<AdmissionError, CodecError> {
    let tag = d.u8()?;
    decode_admission_error_with(d, tag)
}

fn decode_admission_error_with(d: &mut Decoder, tag: u8) -> Result<AdmissionError, CodecError> {
    Ok(match tag {
        1 => AdmissionError::QueueFull {
            depth: d.u64()? as usize,
            watermark: d.u64()? as usize,
        },
        2 => AdmissionError::DemandInfeasible {
            job: JobId(d.u32()?),
            resource: d.u64()? as usize,
            queued: d.f64()?,
            budget: d.f64()?,
        },
        3 => {
            let tenant = TenantId(d.u32()?);
            let kind = match d.u8()? {
                1 => TenantQuotaKind::QueueDepth {
                    depth: d.u64()? as usize,
                    watermark: d.u64()? as usize,
                },
                2 => TenantQuotaKind::QueuedDemand {
                    queued: d.f64()?,
                    budget: d.f64()?,
                },
                3 => TenantQuotaKind::FairShare {
                    deficit: d.u64()?,
                    cost: d.u64()?,
                },
                other => return Err(malformed(d, "tenant quota kind tag", other)),
            };
            AdmissionError::TenantQuota { tenant, kind }
        }
        other => return Err(malformed(d, "admission error tag", other)),
    })
}

fn encode_admission_result(e: &mut Encoder, r: &Result<(), AdmissionError>) {
    match r {
        Ok(()) => e.u8(0),
        Err(err) => encode_admission_error(e, err),
    }
}

fn decode_admission_result(d: &mut Decoder) -> Result<Result<(), AdmissionError>, CodecError> {
    match d.u8()? {
        0 => Ok(Ok(())),
        tag => Ok(Err(decode_admission_error_with(d, tag)?)),
    }
}

fn encode_outcome(e: &mut Encoder, o: &JobOutcome) {
    match o {
        JobOutcome::NotSubmitted => e.u8(0),
        JobOutcome::Rejected(err) => {
            e.u8(1);
            encode_admission_error(e, err);
        }
        JobOutcome::Accepted => e.u8(2),
        JobOutcome::Completed => e.u8(3),
    }
}

fn decode_outcome(d: &mut Decoder) -> Result<JobOutcome, CodecError> {
    Ok(match d.u8()? {
        0 => JobOutcome::NotSubmitted,
        1 => JobOutcome::Rejected(decode_admission_error(d)?),
        2 => JobOutcome::Accepted,
        3 => JobOutcome::Completed,
        other => return Err(malformed(d, "outcome tag", other)),
    })
}

fn encode_string(e: &mut Encoder, s: &str) {
    e.u32(s.len() as u32);
    e.bytes(s.as_bytes());
}

fn decode_string(d: &mut Decoder) -> Result<String, CodecError> {
    let raw = d.u32()?;
    let n = checked_len(d, raw, 1)?;
    let bytes = d.bytes(n)?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

fn encode_tenant_stat(e: &mut Encoder, t: &TenantStat) {
    encode_string(e, &t.name);
    e.f64(t.weight);
    e.u64(t.admitted);
    e.u64(t.rejected);
    e.u64(t.admitted_cost);
}

fn decode_tenant_stat(d: &mut Decoder) -> Result<TenantStat, CodecError> {
    Ok(TenantStat {
        name: decode_string(d)?,
        weight: d.f64()?,
        admitted: d.u64()?,
        rejected: d.u64()?,
        admitted_cost: d.u64()?,
    })
}

fn encode_report(e: &mut Encoder, r: &ServiceReport) {
    let s = &r.summary;
    e.u64(s.submitted as u64);
    e.u64(s.accepted as u64);
    e.u64(s.rejected_queue_full as u64);
    e.u64(s.rejected_infeasible as u64);
    e.u64(s.completed as u64);
    e.u64(s.epochs as u64);
    e.u64(s.max_queue_depth as u64);
    e.u64(s.failures as u64);
    e.f64(s.awct);
    e.f64(s.makespan);
    e.f64(s.drained_at);
    e.f64(s.wall_seconds);
    e.f64(s.throughput_jobs_per_sec);
    match &s.decision_latency_us {
        Some(p) => {
            e.u8(1);
            e.f64(p.p50);
            e.f64(p.p95);
            e.f64(p.p99);
        }
        None => e.u8(0),
    }
    e.u32(r.outcomes.len() as u32);
    for o in &r.outcomes {
        encode_outcome(e, o);
    }
    let assignments: Vec<_> = r.schedule.assignments().collect();
    e.u32(r.schedule.num_machines() as u32);
    e.u32(assignments.len() as u32);
    for a in &assignments {
        e.u32(a.job.0);
        e.u32(a.machine as u32);
        e.f64(a.start);
    }
    e.u32(r.log.failures.len() as u32);
    for f in &r.log.failures {
        e.f64(f.at);
        e.u32(f.machine as u32);
        e.f64(f.recover_at);
        e.u32(f.killed.len() as u32);
        for j in &f.killed {
            e.u32(j.0);
        }
    }
    e.u32(r.log.recoveries.len() as u32);
    for (at, m) in &r.log.recoveries {
        e.f64(*at);
        e.u32(*m as u32);
    }
    e.u32(r.log.re_releases.len() as u32);
    for c in &r.log.re_releases {
        e.u32(*c);
    }
    e.u32(r.log.completions.len() as u32);
    for c in &r.log.completions {
        e.u32(c.job.0);
        e.u32(c.machine as u32);
        e.f64(c.start);
        e.f64(c.end);
    }
    e.u32(r.tenants.len() as u32);
    for t in &r.tenants {
        encode_tenant_stat(e, t);
    }
}

fn decode_report(d: &mut Decoder) -> Result<ServiceReport, CodecError> {
    let submitted = d.u64()? as usize;
    let accepted = d.u64()? as usize;
    let rejected_queue_full = d.u64()? as usize;
    let rejected_infeasible = d.u64()? as usize;
    let completed = d.u64()? as usize;
    let epochs = d.u64()? as usize;
    let max_queue_depth = d.u64()? as usize;
    let failures = d.u64()? as usize;
    let awct = d.f64()?;
    let makespan = d.f64()?;
    let drained_at = d.f64()?;
    let wall_seconds = d.f64()?;
    let throughput_jobs_per_sec = d.f64()?;
    let decision_latency_us = match d.u8()? {
        0 => None,
        1 => Some(mris_metrics::Percentiles {
            p50: d.f64()?,
            p95: d.f64()?,
            p99: d.f64()?,
        }),
        other => return Err(malformed(d, "latency option tag", other)),
    };
    let summary = ServiceSummary {
        submitted,
        accepted,
        rejected_queue_full,
        rejected_infeasible,
        completed,
        epochs,
        max_queue_depth,
        failures,
        awct,
        makespan,
        drained_at,
        wall_seconds,
        throughput_jobs_per_sec,
        decision_latency_us,
    };
    let raw = d.u32()?;
    let n = checked_len(d, raw, 1)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(decode_outcome(d)?);
    }
    let num_machines = d.u32()? as usize;
    let mut schedule = Schedule::new(outcomes.len(), num_machines);
    let raw = d.u32()?;
    let n = checked_len(d, raw, 16)?;
    for _ in 0..n {
        let job = JobId(d.u32()?);
        let machine = d.u32()? as usize;
        let start = d.f64()?;
        schedule
            .assign(job, machine, start)
            .map_err(|err| CodecError::Malformed {
                offset: d.offset(),
                detail: format!("wire schedule rejected: {err}"),
            })?;
    }
    let raw = d.u32()?;
    let n = checked_len(d, raw, 20)?;
    let mut log_failures = Vec::with_capacity(n);
    for _ in 0..n {
        let at = d.f64()?;
        let machine = d.u32()? as usize;
        let recover_at = d.f64()?;
        let rawk = d.u32()?;
        let k = checked_len(d, rawk, 4)?;
        let mut killed = Vec::with_capacity(k);
        for _ in 0..k {
            killed.push(JobId(d.u32()?));
        }
        log_failures.push(FailureRecord {
            at,
            machine,
            recover_at,
            killed,
        });
    }
    let raw = d.u32()?;
    let n = checked_len(d, raw, 12)?;
    let mut recoveries = Vec::with_capacity(n);
    for _ in 0..n {
        let at = d.f64()?;
        recoveries.push((at, d.u32()? as usize));
    }
    let raw = d.u32()?;
    let n = checked_len(d, raw, 4)?;
    let mut re_releases = Vec::with_capacity(n);
    for _ in 0..n {
        re_releases.push(d.u32()?);
    }
    let raw = d.u32()?;
    let n = checked_len(d, raw, 24)?;
    let mut completions = Vec::with_capacity(n);
    for _ in 0..n {
        completions.push(CompletionRecord {
            job: JobId(d.u32()?),
            machine: d.u32()? as usize,
            start: d.f64()?,
            end: d.f64()?,
        });
    }
    let log = FaultLog {
        failures: log_failures,
        recoveries,
        re_releases,
        completions,
    };
    let raw = d.u32()?;
    let n = checked_len(d, raw, 13)?;
    let mut tenants = Vec::with_capacity(n);
    for _ in 0..n {
        tenants.push(decode_tenant_stat(d)?);
    }
    Ok(ServiceReport {
        schedule,
        log,
        outcomes,
        summary,
        tenants,
    })
}

impl Response {
    /// Serializes the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Response::Error { detail } => {
                e.u8(0);
                encode_string(&mut e, detail);
            }
            Response::Submitted { result } => {
                e.u8(1);
                encode_admission_result(&mut e, result);
            }
            Response::BatchSubmitted { results } => {
                e.u8(2);
                e.u32(results.len() as u32);
                for r in results {
                    encode_admission_result(&mut e, r);
                }
            }
            Response::JobStatus { outcome } => {
                e.u8(3);
                encode_outcome(&mut e, outcome);
            }
            Response::StatsReply(s) => {
                e.u8(4);
                e.f64(s.now);
                e.u64(s.queue_depth);
                e.u64(s.submitted);
                e.u64(s.accepted);
                e.u64(s.rejected);
                e.u64(s.completed);
                e.u32(s.tenants.len() as u32);
                for t in &s.tenants {
                    encode_tenant_stat(&mut e, t);
                }
            }
            Response::Subscribed => e.u8(5),
            Response::Telemetry { line } => {
                e.u8(6);
                encode_string(&mut e, line);
            }
            Response::Drained(report) => {
                e.u8(7);
                encode_report(&mut e, report);
            }
        }
        e.into_bytes()
    }

    /// Parses a frame payload; trailing bytes are malformed.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(payload);
        let resp = match d.u8()? {
            0 => Response::Error {
                detail: decode_string(&mut d)?,
            },
            1 => Response::Submitted {
                result: decode_admission_result(&mut d)?,
            },
            2 => {
                let raw = d.u32()?;
                let n = checked_len(&d, raw, 1)?;
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    results.push(decode_admission_result(&mut d)?);
                }
                Response::BatchSubmitted { results }
            }
            3 => Response::JobStatus {
                outcome: decode_outcome(&mut d)?,
            },
            4 => {
                let now = d.f64()?;
                let queue_depth = d.u64()?;
                let submitted = d.u64()?;
                let accepted = d.u64()?;
                let rejected = d.u64()?;
                let completed = d.u64()?;
                let raw = d.u32()?;
                let n = checked_len(&d, raw, 13)?;
                let mut tenants = Vec::with_capacity(n);
                for _ in 0..n {
                    tenants.push(decode_tenant_stat(&mut d)?);
                }
                Response::StatsReply(NetStats {
                    now,
                    queue_depth,
                    submitted,
                    accepted,
                    rejected,
                    completed,
                    tenants,
                })
            }
            5 => Response::Subscribed,
            6 => Response::Telemetry {
                line: decode_string(&mut d)?,
            },
            7 => Response::Drained(Box::new(decode_report(&mut d)?)),
            other => return Err(malformed(&d, "response tag", other)),
        };
        d.finish()?;
        Ok(resp)
    }
}
