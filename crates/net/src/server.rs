//! The TCP front door: an acceptor, per-connection handler threads, and a
//! worker thread that owns the [`Service`] event loop.
//!
//! # Threading model
//!
//! No async runtime (the workspace is hermetic). The acceptor blocks on
//! `TcpListener::accept` and spawns one handler thread per connection;
//! handlers perform the handshake (version, token → tenant, optional
//! fingerprint check) and then relay decoded [`Request`]s to the worker
//! over an `mpsc` channel, each carrying its own bounded reply channel.
//! The worker is the *only* thread touching the service, so the admission
//! sequence is exactly the order requests leave the channel — a single
//! client connection therefore replays the same deterministic admission
//! sequence as the in-process driver (`tests/net_conservativity.rs` pins
//! TCP ≡ in-process on bits).
//!
//! `make_policy` runs inside the worker, as in
//! [`mris_service::spawn_service`]: boxed policies are not `Send`.
//!
//! # Shutdown
//!
//! [`Request::Drain`] drains the service on the worker, answers the full
//! [`ServiceReport`] to the requester, raises the shutdown flag, and
//! unblocks the acceptor with a loopback self-connect. Handler requests
//! after drain answer [`Response::Error`].

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use mris_service::{
    service_fingerprint, Clock, EpochRecord, JobOutcome, Service, ServiceConfig, ServiceReport,
    ServiceSummary, TelemetrySink,
};
use mris_sim::OnlinePolicy;
use mris_types::{Instance, JobId, NetError, TenantId, Time};

use crate::proto::{
    read_frame, write_frame, HandshakeStatus, Hello, HelloReply, NetStats, Request, Response,
    NET_VERSION,
};

/// Shared list of subscribed telemetry connections.
type Subscribers = Arc<Mutex<Vec<TcpStream>>>;

/// Closes every subscriber socket (both halves — the handler threads
/// holding the read halves see EOF and exit) and empties the list.
fn close_subscribers(subs: &Subscribers) {
    let mut subs = subs.lock().expect("subscriber lock");
    for s in subs.drain(..) {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
}

/// A [`TelemetrySink`] that forwards every epoch record (and the final
/// summary) to subscribed connections as [`Response::Telemetry`] frames,
/// then delegates to an inner sink. Dead subscribers are dropped silently;
/// telemetry is best-effort by design and never affects scheduling.
struct NetSink<S> {
    inner: S,
    subs: Subscribers,
}

impl<S> NetSink<S> {
    fn push_line(&self, line: String) {
        let frame = Response::Telemetry { line }.encode();
        let mut subs = self.subs.lock().expect("subscriber lock");
        subs.retain_mut(|stream| write_frame(stream, &frame).is_ok());
    }
}

impl<S: TelemetrySink> TelemetrySink for NetSink<S> {
    fn epoch(&mut self, record: &EpochRecord) {
        if !self.subs.lock().expect("subscriber lock").is_empty() {
            self.push_line(record.to_json());
        }
        self.inner.epoch(record);
    }

    fn summary(&mut self, summary: &ServiceSummary) {
        if !self.subs.lock().expect("subscriber lock").is_empty() {
            self.push_line(summary.to_json());
        }
        self.inner.summary(summary);
    }
}

/// One relayed request plus its reply channel.
enum Op {
    Submit {
        job: u32,
        at: Option<Time>,
        tenant: TenantId,
        reply: mpsc::SyncSender<Response>,
    },
    Batch {
        jobs: Vec<(u32, Option<Time>)>,
        tenant: TenantId,
        reply: mpsc::SyncSender<Response>,
    },
    Query {
        job: u32,
        reply: mpsc::SyncSender<Response>,
    },
    Stats {
        reply: mpsc::SyncSender<Response>,
    },
    Drain {
        reply: mpsc::SyncSender<Response>,
    },
}

/// Why a network serve run failed (beyond per-connection errors, which
/// are answered in-band as [`Response::Error`] frames).
#[derive(Debug)]
pub enum NetServeError {
    /// The service configuration was rejected at construction.
    Config(mris_types::ConfigError),
    /// The policy violated a placement rule while the worker drove it.
    Scheduling(mris_types::SchedulingError),
    /// The worker thread panicked.
    WorkerPanicked {
        /// Downcast panic payload.
        payload: String,
    },
}

impl std::fmt::Display for NetServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetServeError::Config(e) => write!(f, "net serve configuration rejected: {e}"),
            NetServeError::Scheduling(e) => write!(f, "net serve scheduling failed: {e}"),
            NetServeError::WorkerPanicked { payload } => {
                write!(f, "net serve worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for NetServeError {}

/// A running TCP service front door.
pub struct NetServer<S> {
    addr: SocketAddr,
    worker: std::thread::JoinHandle<Result<(ServiceReport, S), NetServeError>>,
    acceptor: std::thread::JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
}

impl<S> NetServer<S> {
    /// The bound listen address (resolves the ephemeral port when the
    /// caller listened on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for a client's [`Request::Drain`] to end the serve loop and
    /// returns the drained report and telemetry sink. The same report was
    /// answered over the wire to the draining client.
    ///
    /// # Errors
    ///
    /// A typed [`NetServeError`]; a worker panic is captured, not
    /// propagated.
    pub fn wait(self) -> Result<(ServiceReport, S), NetServeError> {
        let result = match self.worker.join() {
            Ok(r) => r,
            Err(payload) => {
                let payload = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                Err(NetServeError::WorkerPanicked { payload })
            }
        };
        // The worker raised the flag (or died); unblock and join the
        // acceptor so no thread outlives the server handle.
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        result
    }
}

/// Serves `instance` under `cfg` over TCP at `listen` (e.g.
/// `"127.0.0.1:0"` for an ephemeral loopback port).
///
/// The worker admits requests in channel order against the given clock;
/// `make_policy` runs inside the worker. Returns once the listener is
/// bound — connections are accepted in the background until a client
/// drains the service.
///
/// # Errors
///
/// [`NetError::Io`] when the listen address cannot be bound.
pub fn serve_net<C, S, F>(
    instance: Instance,
    cfg: ServiceConfig,
    clock: C,
    sink: S,
    make_policy: F,
    listen: &str,
) -> Result<NetServer<S>, NetError>
where
    C: Clock + Send + 'static,
    S: TelemetrySink + Send + 'static,
    F: FnOnce(&Instance, usize) -> Box<dyn OnlinePolicy> + Send + 'static,
{
    let listener = TcpListener::bind(listen).map_err(|e| NetError::Io {
        detail: format!("bind {listen}: {e}"),
    })?;
    let addr = listener.local_addr().map_err(|e| NetError::Io {
        detail: format!("local_addr: {e}"),
    })?;
    let fingerprint = service_fingerprint(&instance, &cfg);
    // Token table: multi-tenant maps exact tokens to tenant ids; the
    // single-tenant door accepts any token as tenant 0.
    let tokens: Arc<HashMap<String, u32>> = Arc::new(
        cfg.tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.token.clone(), i as u32))
            .collect(),
    );
    let multi_tenant = !cfg.tenants.is_empty();
    let subs: Subscribers = Arc::new(Mutex::new(Vec::new()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let (op_tx, op_rx) = mpsc::channel::<Op>();

    let worker = {
        let subs = Arc::clone(&subs);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let result = run_worker(instance, cfg, clock, sink, make_policy, subs, op_rx);
            // Whatever ended the worker ends the serve loop.
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            result.map(|(report, sink)| (report, sink.inner))
        })
    };

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let subs = Arc::clone(&subs);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Request/response framing with small frames: Nagle's
                // algorithm against delayed ACKs costs ~40ms per round
                // trip on loopback, so turn it off.
                let _ = stream.set_nodelay(true);
                mris_obs::counter_add("mris_net_connections_total", 1);
                let op_tx = op_tx.clone();
                let tokens = Arc::clone(&tokens);
                let subs = Arc::clone(&subs);
                std::thread::spawn(move || {
                    let _ =
                        handle_connection(stream, fingerprint, multi_tenant, tokens, op_tx, subs);
                });
            }
        })
    };

    Ok(NetServer {
        addr,
        worker,
        acceptor,
        shutdown,
    })
}

/// The worker loop: the single owner of the service, admitting relayed
/// requests in channel order until a drain (or channel death).
fn run_worker<C, S, F>(
    instance: Instance,
    cfg: ServiceConfig,
    clock: C,
    sink: S,
    make_policy: F,
    subs: Subscribers,
    op_rx: mpsc::Receiver<Op>,
) -> Result<(ServiceReport, NetSink<S>), NetServeError>
where
    C: Clock,
    S: TelemetrySink,
    F: FnOnce(&Instance, usize) -> Box<dyn OnlinePolicy>,
{
    let policy = make_policy(&instance, cfg.num_machines);
    let num_jobs = instance.len();
    let sink = NetSink {
        inner: sink,
        subs: Arc::clone(&subs),
    };
    let mut svc =
        Service::new(instance, policy, cfg, clock, sink).map_err(NetServeError::Config)?;
    while let Ok(op) = op_rx.recv() {
        match op {
            Op::Submit {
                job,
                at,
                tenant,
                reply,
            } => match submit_one(&mut svc, num_jobs, job, at, tenant) {
                SubmitOutcome::Decision(result) => {
                    let _ = reply.send(Response::Submitted { result });
                }
                SubmitOutcome::BadRequest(detail) => {
                    let _ = reply.send(Response::Error { detail });
                }
                SubmitOutcome::Fatal(e) => {
                    let _ = reply.send(Response::Error {
                        detail: format!("scheduling failed: {e}"),
                    });
                    return Err(NetServeError::Scheduling(e));
                }
            },
            Op::Batch {
                jobs,
                tenant,
                reply,
            } => {
                let mut results = Vec::with_capacity(jobs.len());
                let mut verdict = None;
                for (job, at) in jobs {
                    match submit_one(&mut svc, num_jobs, job, at, tenant) {
                        SubmitOutcome::Decision(result) => results.push(result),
                        SubmitOutcome::BadRequest(detail) => {
                            verdict = Some(Response::Error { detail });
                            break;
                        }
                        SubmitOutcome::Fatal(e) => {
                            let _ = reply.send(Response::Error {
                                detail: format!("scheduling failed: {e}"),
                            });
                            return Err(NetServeError::Scheduling(e));
                        }
                    }
                }
                let _ = reply.send(verdict.unwrap_or(Response::BatchSubmitted { results }));
            }
            Op::Query { job, reply } => {
                let resp = if (job as usize) < num_jobs {
                    Response::JobStatus {
                        outcome: svc.outcome(JobId(job)),
                    }
                } else {
                    Response::Error {
                        detail: format!("job {job} is out of range for the served instance"),
                    }
                };
                let _ = reply.send(resp);
            }
            Op::Stats { reply } => {
                let _ = reply.send(Response::StatsReply(stats_of(&svc, num_jobs)));
            }
            Op::Drain { reply } => {
                match svc.drain() {
                    Ok((report, sink)) => {
                        let _ = reply.send(Response::Drained(Box::new(report.clone())));
                        // Summary already went to subscribers via the sink;
                        // close their sockets so both halves see EOF.
                        close_subscribers(&subs);
                        return Ok((report, sink));
                    }
                    Err(e) => {
                        let _ = reply.send(Response::Error {
                            detail: format!("drain failed: {e}"),
                        });
                        return Err(NetServeError::Scheduling(e));
                    }
                }
            }
        }
    }
    // Every handler hung up without a drain; drain so accepted jobs are
    // never stranded and the report is still recoverable via `wait`.
    svc.drain()
        .map(|(report, sink)| {
            close_subscribers(&subs);
            (report, sink)
        })
        .map_err(NetServeError::Scheduling)
}

/// The worker-side result of one admission offer.
enum SubmitOutcome {
    /// The admission decision (rejections are normal operation).
    Decision(Result<(), mris_types::AdmissionError>),
    /// The request itself was invalid; answered in-band.
    BadRequest(String),
    /// The policy violated a placement rule; ends the serve loop.
    Fatal(mris_types::SchedulingError),
}

fn submit_one<C: Clock, S: TelemetrySink>(
    svc: &mut Service<C, S>,
    num_jobs: usize,
    job: u32,
    at: Option<Time>,
    tenant: TenantId,
) -> SubmitOutcome {
    if job as usize >= num_jobs {
        return SubmitOutcome::BadRequest(format!(
            "job {job} is out of range for the served instance"
        ));
    }
    if !matches!(svc.outcome(JobId(job)), JobOutcome::NotSubmitted) {
        return SubmitOutcome::BadRequest(format!("job {job} was already submitted"));
    }
    match at {
        Some(t) => match svc.submit_at_as(t, JobId(job), tenant) {
            Ok(result) => SubmitOutcome::Decision(result),
            Err(e) => SubmitOutcome::Fatal(e),
        },
        None => SubmitOutcome::Decision(svc.submit_as(JobId(job), tenant)),
    }
}

fn stats_of<C: Clock, S: TelemetrySink>(svc: &Service<C, S>, num_jobs: usize) -> NetStats {
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut completed = 0u64;
    for i in 0..num_jobs {
        match svc.outcome(JobId(i as u32)) {
            JobOutcome::NotSubmitted => {}
            JobOutcome::Rejected(_) => {
                submitted += 1;
                rejected += 1;
            }
            JobOutcome::Accepted => {
                submitted += 1;
                accepted += 1;
            }
            JobOutcome::Completed => {
                submitted += 1;
                accepted += 1;
                completed += 1;
            }
        }
    }
    NetStats {
        now: svc.now(),
        queue_depth: svc.queue_depth() as u64,
        submitted,
        accepted,
        rejected,
        completed,
        tenants: svc.tenant_stats(),
    }
}

/// Per-connection protocol loop: handshake, then request/response frames
/// until the peer hangs up (or the service drains).
fn handle_connection(
    mut stream: TcpStream,
    fingerprint: u64,
    multi_tenant: bool,
    tokens: Arc<HashMap<String, u32>>,
    op_tx: mpsc::Sender<Op>,
    subs: Subscribers,
) -> Result<(), NetError> {
    let hello = match Hello::read_from(&mut stream) {
        Ok(h) => h,
        Err(e) => {
            mris_obs::counter_add("mris_net_handshake_failures_total", 1);
            return Err(e);
        }
    };
    let refuse = |status: HandshakeStatus, detail: String, stream: &mut TcpStream| {
        mris_obs::counter_add("mris_net_handshake_failures_total", 1);
        let _ = HelloReply {
            status,
            tenant: 0,
            fingerprint,
            detail,
        }
        .write_to(stream);
    };
    if hello.version != NET_VERSION {
        refuse(
            HandshakeStatus::VersionMismatch,
            format!(
                "client speaks MRNP v{}, server speaks v{NET_VERSION}",
                hello.version
            ),
            &mut stream,
        );
        return Ok(());
    }
    if hello.expected_fingerprint != 0 && hello.expected_fingerprint != fingerprint {
        refuse(
            HandshakeStatus::FingerprintMismatch,
            format!(
                "client expects world {:016x}, server serves {fingerprint:016x}",
                hello.expected_fingerprint
            ),
            &mut stream,
        );
        return Ok(());
    }
    let tenant = if multi_tenant {
        match tokens.get(&hello.token) {
            Some(&t) => TenantId(t),
            None => {
                refuse(
                    HandshakeStatus::AuthFailed,
                    "token matches no configured tenant".to_string(),
                    &mut stream,
                );
                return Ok(());
            }
        }
    } else {
        TenantId::DEFAULT
    };
    HelloReply {
        status: HandshakeStatus::Ok,
        tenant: tenant.0,
        fingerprint,
        detail: String::new(),
    }
    .write_to(&mut stream)?;

    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(NetError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A malformed frame is answered, not fatal: the framing
                // layer already resynchronized on the length prefix.
                let resp = Response::Error {
                    detail: format!("malformed request: {e}"),
                };
                write_frame(&mut stream, &resp.encode())?;
                continue;
            }
        };
        if let Request::Subscribe = request {
            let clone = stream.try_clone().map_err(|e| NetError::Io {
                detail: format!("clone subscriber stream: {e}"),
            })?;
            subs.lock().expect("subscriber lock").push(clone);
            write_frame(&mut stream, &Response::Subscribed.encode())?;
            continue;
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
        let op = match request {
            Request::Submit { job, at } => Op::Submit {
                job,
                at,
                tenant,
                reply: reply_tx,
            },
            Request::SubmitBatch { jobs } => Op::Batch {
                jobs,
                tenant,
                reply: reply_tx,
            },
            Request::Query { job } => Op::Query {
                job,
                reply: reply_tx,
            },
            Request::Stats => Op::Stats { reply: reply_tx },
            Request::Drain => Op::Drain { reply: reply_tx },
            Request::Subscribe => unreachable!("handled above"),
        };
        let response = if op_tx.send(op).is_err() {
            Response::Error {
                detail: "service drained".to_string(),
            }
        } else {
            reply_rx.recv().unwrap_or(Response::Error {
                detail: "service drained".to_string(),
            })
        };
        let done = matches!(response, Response::Drained(_));
        write_frame(&mut stream, &response.encode())?;
        if done {
            return Ok(());
        }
    }
}
