//! The MRNP client: a blocking, connection-per-client handle mirroring
//! the in-process [`mris_service::Service`] submission API over TCP.

use std::net::TcpStream;

use mris_service::{JobOutcome, ServiceReport};
use mris_types::{AdmissionError, JobId, NetError, Time};

use crate::proto::{
    read_frame, write_frame, HandshakeStatus, Hello, HelloReply, NetStats, Request, Response,
    NET_VERSION,
};

/// A connected MRNP client. One TCP connection, strictly
/// request-response; requests from a single client are admitted in send
/// order, so driving a server from one client replays the in-process
/// admission sequence exactly.
pub struct NetClient {
    stream: TcpStream,
    tenant: u32,
    fingerprint: u64,
}

impl NetClient {
    /// Connects, performs the MRNP handshake, and authenticates `token`.
    ///
    /// `expected_fingerprint` guards against talking to a server that
    /// would replay a different world: pass
    /// [`mris_service::service_fingerprint`] of the instance and
    /// configuration you believe the server runs, or `0` to skip the
    /// check. The server's refusals come back as typed errors:
    /// [`NetError::AuthFailed`], [`NetError::FingerprintMismatch`], or
    /// [`NetError::Remote`] for a version mismatch.
    pub fn connect(addr: &str, token: &str, expected_fingerprint: u64) -> Result<Self, NetError> {
        let mut stream = TcpStream::connect(addr).map_err(|e| NetError::Io {
            detail: format!("connect {addr}: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Hello {
            version: NET_VERSION,
            expected_fingerprint,
            token: token.to_string(),
        }
        .write_to(&mut stream)?;
        let reply = HelloReply::read_from(&mut stream)?;
        match reply.status {
            HandshakeStatus::Ok => Ok(NetClient {
                stream,
                tenant: reply.tenant,
                fingerprint: reply.fingerprint,
            }),
            HandshakeStatus::AuthFailed => Err(NetError::AuthFailed),
            HandshakeStatus::FingerprintMismatch => Err(NetError::FingerprintMismatch {
                server: reply.fingerprint,
                client: expected_fingerprint,
            }),
            HandshakeStatus::VersionMismatch => Err(NetError::Remote {
                detail: reply.detail,
            }),
        }
    }

    /// The tenant this connection authenticated to (0 single-tenant).
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The server's configuration fingerprint, as sent in the handshake.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, NetError> {
        write_frame(&mut self.stream, &req.encode())?;
        loop {
            let payload = read_frame(&mut self.stream)?;
            let resp = Response::decode(&payload).map_err(NetError::Codec)?;
            // Telemetry pushes may interleave if this connection also
            // subscribed; skip them when waiting on a reply.
            if !matches!(resp, Response::Telemetry { .. }) {
                return Ok(resp);
            }
        }
    }

    fn remote(detail: String) -> NetError {
        NetError::Remote { detail }
    }

    fn unexpected(resp: &Response) -> NetError {
        NetError::UnexpectedResponse {
            detail: format!("{resp:?}").chars().take(120).collect(),
        }
    }

    /// Offers `job` at the service clock's now. The inner result is the
    /// admission decision — rejections are normal operation.
    pub fn submit(&mut self, job: JobId) -> Result<Result<(), AdmissionError>, NetError> {
        self.submit_inner(job, None)
    }

    /// Offers `job` at service time `at`, exactly like
    /// [`mris_service::Service::submit_at`].
    pub fn submit_at(
        &mut self,
        at: Time,
        job: JobId,
    ) -> Result<Result<(), AdmissionError>, NetError> {
        self.submit_inner(job, Some(at))
    }

    fn submit_inner(
        &mut self,
        job: JobId,
        at: Option<Time>,
    ) -> Result<Result<(), AdmissionError>, NetError> {
        match self.round_trip(&Request::Submit { job: job.0, at })? {
            Response::Submitted { result } => Ok(result),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Offers several `(job, at)` pairs in order in one round trip and
    /// returns the per-job admission decisions.
    pub fn submit_batch(
        &mut self,
        jobs: &[(JobId, Option<Time>)],
    ) -> Result<Vec<Result<(), AdmissionError>>, NetError> {
        let wire: Vec<(u32, Option<Time>)> = jobs.iter().map(|(j, at)| (j.0, *at)).collect();
        match self.round_trip(&Request::SubmitBatch { jobs: wire })? {
            Response::BatchSubmitted { results } => Ok(results),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks for `job`'s current ledger outcome.
    pub fn query(&mut self, job: JobId) -> Result<JobOutcome, NetError> {
        match self.round_trip(&Request::Query { job: job.0 })? {
            Response::JobStatus { outcome } => Ok(outcome),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks for the mid-run counters.
    pub fn stats(&mut self) -> Result<NetStats, NetError> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsReply(s) => Ok(s),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Subscribes this connection to telemetry pushes. After this call,
    /// use [`NetClient::next_telemetry`] to read lines; request methods
    /// keep working (pushes are skipped while awaiting replies).
    pub fn subscribe(&mut self) -> Result<(), NetError> {
        match self.round_trip(&Request::Subscribe)? {
            Response::Subscribed => Ok(()),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Blocks for the next telemetry line on a subscribed connection.
    /// [`NetError::Closed`] when the server drained and closed the stream.
    pub fn next_telemetry(&mut self) -> Result<String, NetError> {
        loop {
            let payload = read_frame(&mut self.stream)?;
            match Response::decode(&payload).map_err(NetError::Codec)? {
                Response::Telemetry { line } => return Ok(line),
                _ => continue,
            }
        }
    }

    /// Drains the service and returns the full [`ServiceReport`],
    /// transported bit-identically (AWCT and schedule times travel as
    /// IEEE-754 bits). This ends the serve loop for every client.
    pub fn drain(mut self) -> Result<ServiceReport, NetError> {
        match self.round_trip(&Request::Drain)? {
            Response::Drained(report) => Ok(*report),
            Response::Error { detail } => Err(Self::remote(detail)),
            other => Err(Self::unexpected(&other)),
        }
    }
}
