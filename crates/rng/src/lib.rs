//! Deterministic, dependency-free random numbers for the whole workspace.
//!
//! Two layers live here:
//!
//! 1. [`Rng`] — a xoshiro256++ generator seeded through SplitMix64, with the
//!    handful of draw primitives the trace generators and tests need
//!    ([`Rng::gen_f64`], [`Rng::gen_range`], [`Rng::normal`],
//!    [`Rng::lognormal`], [`Rng::weighted_choice`]) plus cheap sub-stream
//!    forking ([`Rng::substream`]) so each generator section gets an
//!    independent stream that does not shift when an unrelated section
//!    changes how many values it draws.
//! 2. [`prop`] — a small property-testing harness (seeded case generation,
//!    failing-seed reporting, halving shrink for `Vec` inputs) that replaces
//!    the external `proptest` dependency.
//!
//! Everything is bit-reproducible per seed across platforms: the only
//! floating-point operations involved in generation are exact power-of-two
//! scalings, and the distributions use plain `f64` arithmetic.

pub mod prop;

/// SplitMix64 step: the standard seed-expansion generator.
///
/// Used to initialise xoshiro state from a single `u64` seed and to mix
/// seeds with labels/indices when forking sub-streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two 64-bit values into one through a SplitMix64 round; used to
/// derive sub-stream and per-case seeds deterministically.
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// FNV-1a hash of a byte string; used to turn sub-stream labels into seeds.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A xoshiro256++ pseudo-random generator seeded via SplitMix64.
///
/// The generator remembers the seed it was constructed from so that
/// [`Rng::substream`] can derive independent streams from the *seed*, not
/// from the current position — a sub-stream is therefore stable no matter
/// how many values were already drawn from the parent.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    base_seed: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s, base_seed: seed }
    }

    /// The seed this generator (or sub-stream) was constructed from.
    pub fn seed(&self) -> u64 {
        self.base_seed
    }

    /// Derives an independent, reproducible stream for a named section.
    ///
    /// The derived seed depends only on this generator's seed and the label,
    /// never on how many values have been drawn — so adding draws to one
    /// section of a trace generator cannot perturb any other section.
    pub fn substream(&self, label: &str) -> Rng {
        Rng::new(mix(self.base_seed, fnv1a(label.as_bytes())))
    }

    /// Derives an independent stream from a numeric index (e.g. per job).
    pub fn substream_indexed(&self, label: &str, index: u64) -> Rng {
        Rng::new(mix(mix(self.base_seed, fnv1a(label.as_bytes())), index))
    }

    /// Forks a child generator from the *current position* of this one.
    ///
    /// Unlike [`Rng::substream`] this advances the parent; use it when you
    /// need many anonymous children rather than stable named sections.
    pub fn fork(&mut self) -> Rng {
        let seed = self.next_u64();
        Rng::new(seed)
    }

    /// Core xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)` via multiply-shift with rejection
    /// (Lemire's method); `bound` must be non-zero.
    #[inline]
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_u64_below: bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw from a range; see [`SampleRange`] for supported types.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Standard normal draw via Box–Muller.
    ///
    /// The uniform for the log term is drawn from
    /// `[f64::MIN_POSITIVE, 1.0)` so `ln` never sees zero.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal draw: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Samples an index proportionally to `weights` (need not be
    /// normalised). Returns the last index as a numeric-fallout fallback,
    /// matching the previous `rng_ext::weighted_choice` behaviour.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty(), "weighted_choice: empty weights");
        let total: f64 = weights.iter().sum();
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Uniformly picks a reference out of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        debug_assert!(!items.is_empty(), "choose: empty slice");
        &items[self.gen_range(0..items.len())]
    }
}

/// Ranges accepted by [`Rng::gen_range`].
///
/// Implemented for half-open and inclusive `f64` ranges and half-open /
/// inclusive integer ranges over `usize` and `u64` — exactly the surface
/// the workspace uses.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        debug_assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + (self.end - self.start) * rng.gen_f64();
        // Guard against rounding up to `end` when the span is tiny.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        lo + (hi - lo) * rng.gen_f64()
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        debug_assert!(self.start < self.end, "gen_range: empty usize range");
        let span = (self.end - self.start) as u64;
        self.start + rng.next_u64_below(span) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "gen_range: empty inclusive usize range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.next_u64_below(span + 1) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        debug_assert!(self.start < self.end, "gen_range: empty u64 range");
        self.start + rng.next_u64_below(self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "gen_range: empty inclusive u64 range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.next_u64_below(span + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substream_is_position_independent() {
        let mut a = Rng::new(7);
        let b = Rng::new(7);
        // Drawing from `a` must not change what its sub-streams produce.
        for _ in 0..100 {
            a.next_u64();
        }
        let mut sa = a.substream("jobs");
        let mut sb = b.substream("jobs");
        for _ in 0..32 {
            assert_eq!(sa.next_u64(), sb.next_u64());
        }
    }

    #[test]
    fn substreams_with_different_labels_differ() {
        let r = Rng::new(7);
        let va: Vec<u64> = {
            let mut s = r.substream("alpha");
            (0..8).map(|_| s.next_u64()).collect()
        };
        let vb: Vec<u64> = {
            let mut s = r.substream("beta");
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_in_unit_interval_with_plausible_mean() {
        let mut r = Rng::new(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..5_000 {
            let f = r.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&f));
            let fi = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&fi));
            let u = r.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let ui = r.gen_range(5..=5usize);
            assert_eq!(ui, 5);
            let w = r.gen_range(10..1000u64);
            assert!((10..1000).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut r = Rng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng::new(21);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "normal variance {var}");
    }

    #[test]
    fn lognormal_is_positive_with_plausible_median() {
        let mut r = Rng::new(23);
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| r.lognormal(2.0, 0.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        // Median of lognormal(mu, sigma) is exp(mu).
        assert!(
            (median - 2.0_f64.exp()).abs() / 2.0_f64.exp() < 0.1,
            "lognormal median {median}"
        );
    }

    #[test]
    fn weighted_choice_tracks_weights() {
        let mut r = Rng::new(31);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[r.weighted_choice(&weights)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "weight {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn fork_children_are_independent() {
        let mut parent = Rng::new(99);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::new(5);
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
