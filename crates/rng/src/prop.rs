//! A small, dependency-free property-testing harness.
//!
//! Replaces the external `proptest` crate for this workspace's needs:
//!
//! * seeded, reproducible case generation (`cases` inputs drawn from a
//!   deterministic per-case [`Rng`]),
//! * failing-seed reporting (the panic message names the base seed and the
//!   exact per-case seed, and how to rerun with `MRIS_PROP_SEED`),
//! * simple halving shrink for `Vec` inputs (plus component-wise shrink for
//!   tuples), so failures are reported on a small input.
//!
//! A property is a closure returning `Result<(), String>`; the
//! [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq)
//! and [`prop_assert_ne!`](crate::prop_assert_ne) macros produce the `Err`
//! early-returns. Panics inside a property are caught and treated as
//! failures too, so library invariant violations shrink like assertion
//! failures.
//!
//! ```
//! use mris_rng::prop::{check, Config};
//! use mris_rng::prop_assert;
//!
//! check(
//!     "reverse twice is identity",
//!     &Config::default(),
//!     |rng| {
//!         let n = rng.gen_range(0..20usize);
//!         (0..n).map(|_| rng.gen_range(0..100usize)).collect::<Vec<_>>()
//!     },
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert!(w == *v, "double reverse changed {v:?}");
//!         Ok(())
//!     },
//! );
//! ```

use crate::{mix, Rng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable overriding the base seed for every `check` call.
pub const ENV_SEED: &str = "MRIS_PROP_SEED";
/// Environment variable overriding the number of cases for every `check` call.
pub const ENV_CASES: &str = "MRIS_PROP_CASES";

/// Harness configuration for one [`check`] call.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x4D52_4953_5052_4F50, // "MRISPROP"
            max_shrink_steps: 1024,
        }
    }
}

impl Config {
    /// Default configuration with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Applies `MRIS_PROP_SEED` / `MRIS_PROP_CASES` overrides.
    fn resolved(&self) -> Config {
        let mut cfg = self.clone();
        if let Ok(s) = std::env::var(ENV_SEED) {
            if let Ok(seed) = s.trim().parse::<u64>() {
                cfg.seed = seed;
            }
        }
        if let Ok(s) = std::env::var(ENV_CASES) {
            if let Ok(cases) = s.trim().parse::<u32>() {
                cfg.cases = cases;
            }
        }
        cfg
    }
}

/// Types the harness knows how to shrink after a failure.
///
/// The default implementation offers no candidates (scalars stop shrinking
/// immediately); `Vec` shrinks by halving, tuples component-wise.
pub trait Shrink: Sized + Clone {
    /// Strictly "smaller" variants of `self` to try; may be empty.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_scalar {
    ($($t:ty),* $(,)?) => {
        $(impl Shrink for $t {})*
    };
}
impl_shrink_scalar!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.len() >= 2 {
            let mid = self.len() / 2;
            out.push(self[..mid].to_vec());
            out.push(self[mid..].to_vec());
        }
        // For short vectors also try dropping single elements, which finds
        // minimal witnesses the coarse halving steps over.
        if (1..=8).contains(&self.len()) {
            for i in 0..self.len() {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {
        $(
            impl<$($name: Shrink),+> Shrink for ($($name,)+) {
                fn shrink_candidates(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink_candidates() {
                            let mut tuple = self.clone();
                            tuple.$idx = candidate;
                            out.push(tuple);
                        }
                    )+
                    out
                }
            }
        )+
    };
}
impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Outcome of running a property on one input, with panics folded in.
fn run_property<T, P>(prop: &P, input: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "property panicked".to_string()
            };
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs `prop` against `cfg.cases` inputs produced by `generate`.
///
/// On the first failure the input is shrunk (bounded by
/// `cfg.max_shrink_steps` candidate evaluations) and the harness panics
/// with the minimal input, the error, and the seeds needed to reproduce.
pub fn check<T, G, P>(name: &str, cfg: &Config, generate: G, prop: P)
where
    T: std::fmt::Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let cfg = cfg.resolved();
    for case in 0..cfg.cases {
        let case_seed = mix(cfg.seed, case as u64);
        let mut rng = Rng::new(case_seed);
        let input = generate(&mut rng);
        if let Err(first_error) = run_property(&prop, &input) {
            let (minimal, error, shrink_steps) =
                shrink_failure(input, first_error, &prop, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (base seed {seed}, case seed {case_seed}); \
                 rerun with {env}={seed}\n\
                 minimal input (after {shrink_steps} shrink steps): {minimal:#?}\n\
                 error: {error}",
                cases = cfg.cases,
                seed = cfg.seed,
                env = ENV_SEED,
            );
        }
    }
}

/// Greedily walks shrink candidates, keeping any that still fail.
fn shrink_failure<T, P>(
    mut current: T,
    mut error: String,
    prop: &P,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0u32;
    'outer: loop {
        for candidate in current.shrink_candidates() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(e) = run_property(prop, &candidate) {
                current = candidate;
                error = e;
                continue 'outer;
            }
        }
        break;
    }
    (current, error, steps)
}

/// Asserts a condition inside a property, early-returning `Err` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!("{}\n  both: {:?}", format!($($arg)+), l));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        check(
            "sum is commutative",
            &Config::with_cases(64),
            |rng| (rng.gen_range(0..1000usize), rng.gen_range(0..1000usize)),
            |&(a, b)| {
                crate::prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "no element exceeds 50",
                &Config::with_cases(256),
                |rng| {
                    let n = rng.gen_range(0..40usize);
                    (0..n)
                        .map(|_| rng.gen_range(0..100usize))
                        .collect::<Vec<_>>()
                },
                |v| {
                    crate::prop_assert!(v.iter().all(|&x| x <= 50), "found {v:?}");
                    Ok(())
                },
            );
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
        };
        assert!(msg.contains("no element exceeds 50"), "message: {msg}");
        assert!(msg.contains(ENV_SEED), "message lacks seed hint: {msg}");
        // The halving + element-drop shrinker should isolate a single
        // offending element.
        let bracket = msg.find('[').expect("minimal input vec in message");
        let close = msg[bracket..].find(']').unwrap() + bracket;
        let body = &msg[bracket + 1..close];
        let elems: Vec<&str> = body
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        assert_eq!(elems.len(), 1, "not fully shrunk: {msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "index stays in bounds",
                &Config::with_cases(64),
                |rng| rng.gen_range(0..10usize),
                |&i| {
                    let v = [0u8; 5];
                    let _ = v[i]; // panics for i >= 5
                    Ok(())
                },
            );
        }));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().expect("string panic payload"),
        };
        assert!(msg.contains("panic:"), "message: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        use std::cell::RefCell;
        let run = || {
            let sink = RefCell::new(Vec::new());
            check(
                "collector",
                &Config::with_cases(16),
                |rng| rng.gen_range(0..1_000_000usize),
                |&v| {
                    sink.borrow_mut().push(v);
                    Ok(())
                },
            );
            sink.into_inner()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let input = (vec![1, 2, 3, 4], 7usize);
        let candidates = input.shrink_candidates();
        assert!(candidates.iter().any(|(v, s)| v.len() == 2 && *s == 7));
        // Scalars offer no candidates of their own.
        assert!(candidates.iter().all(|(_, s)| *s == 7));
    }
}
