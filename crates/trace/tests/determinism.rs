//! Bit-reproducibility guarantees of the trace generator.
//!
//! The golden hash pins the exact output of a small fixed-seed Azure-like
//! instance. If an intentional change to the generator or the RNG alters
//! the stream, update `GOLDEN_HASH` in the same PR and call the change out
//! in the review — silent drift is exactly what this test exists to catch.

use mris_rng::fnv1a;
use mris_trace::{AzureTrace, AzureTraceConfig};
use mris_types::Instance;

/// FNV-1a over every job field of the instance, in job order.
fn instance_fingerprint(instance: &Instance) -> u64 {
    let mut bytes = Vec::with_capacity(instance.len() * 8 * 8);
    bytes.extend_from_slice(&(instance.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&(instance.num_resources() as u64).to_le_bytes());
    for job in instance.jobs() {
        bytes.extend_from_slice(&job.id.0.to_le_bytes());
        bytes.extend_from_slice(&job.release.to_bits().to_le_bytes());
        bytes.extend_from_slice(&job.proc_time.to_bits().to_le_bytes());
        bytes.extend_from_slice(&job.weight.to_bits().to_le_bytes());
        for &d in job.demands.iter() {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

fn small_trace(seed: u64) -> Instance {
    let trace = AzureTrace::generate(&AzureTraceConfig {
        num_jobs: 1_600,
        window_days: 2.0,
        seed,
        priority_levels: 3,
        arrivals: Default::default(),
    });
    // factor 8 at offset 0: 200 jobs, the paper's downsampling protocol.
    trace.sample_instance(8, 0)
}

/// Pinned fingerprint of `small_trace(0xD5EED)`; see module docs.
const GOLDEN_SEED: u64 = 0xD5EED;
const GOLDEN_HASH: u64 = 0x66b2_17ac_70a6_5b07;

#[test]
fn fixed_seed_trace_matches_golden_hash() {
    let instance = small_trace(GOLDEN_SEED);
    assert_eq!(instance.len(), 200);
    let hash = instance_fingerprint(&instance);
    assert_eq!(
        hash, GOLDEN_HASH,
        "trace generator output drifted: fingerprint {hash:#018x}, \
         expected {GOLDEN_HASH:#018x}"
    );
}

#[test]
fn same_seed_generations_are_identical() {
    assert_eq!(small_trace(123), small_trace(123));
}

#[test]
fn different_seeds_differ() {
    assert_ne!(small_trace(123), small_trace(124));
    assert_ne!(
        instance_fingerprint(&small_trace(123)),
        instance_fingerprint(&small_trace(124))
    );
}
