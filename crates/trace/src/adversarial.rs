//! Synthetic adversarial instances from the paper: the Lemma 4.1 lower-bound
//! family and the Figure 7 "exercising patience" scenario.

use mris_rng::Rng;
use mris_types::{Instance, Job, JobId};

/// The Lemma 4.1 adversarial family on one machine: job 0 is released at
/// time zero with demand **one for every resource** and processing time
/// `p = n` (the choice that makes the PQ ratio `Omega(N)`); the remaining
/// `n - 1` jobs are released at `release_eps > 0` with demand `1/(n - 1)`
/// per resource and unit processing time. All weights are one.
///
/// Any PQ-class algorithm starts job 0 immediately and forces every small
/// job to wait `p` time units; the optimal schedule runs the small jobs
/// first.
pub fn lemma41_instance(n: usize, num_resources: usize, release_eps: f64) -> Instance {
    assert!(n >= 2 && num_resources >= 1 && release_eps > 0.0);
    let p = n as f64;
    let small_demand = 1.0 / (n - 1) as f64;
    let full = vec![1.0; num_resources];
    let small = vec![small_demand; num_resources];
    let mut jobs = vec![Job::from_fractions(JobId(0), 0.0, p, 1.0, &full)];
    for _ in 1..n {
        jobs.push(Job::from_fractions(JobId(0), release_eps, 1.0, 1.0, &small));
    }
    Instance::from_unnumbered(jobs, num_resources).expect("lemma 4.1 jobs are valid")
}

/// The AWCT of the reference schedule from the Lemma 4.1 proof (run all
/// small jobs together at their release, then the big job):
/// `((n-1)(1 + eps) + 1 + eps + p) / n` with `p = n`. This upper-bounds the
/// optimum, so `AWCT(PQ) / lemma41_reference_awct` lower-bounds PQ's
/// competitive ratio.
pub fn lemma41_reference_awct(n: usize, release_eps: f64) -> f64 {
    assert!(n >= 2);
    let p = n as f64;
    let nf = n as f64;
    ((nf - 1.0) * (1.0 + release_eps) + 1.0 + release_eps + p) / nf
}

/// Configuration of the Figure 7 "exercising patience" input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatienceConfig {
    /// Number of small jobs (the paper uses "nearly 2500").
    pub num_small: usize,
    /// Number of resource types.
    pub num_resources: usize,
    /// Blocking job's processing time (14 in the paper).
    pub blocker_proc: f64,
    /// RNG seed for the small jobs' randomized sizes and demands.
    pub seed: u64,
}

impl Default for PatienceConfig {
    fn default() -> Self {
        PatienceConfig {
            num_small: 2_500,
            num_resources: 4,
            blocker_proc: 14.0,
            seed: 7,
        }
    }
}

/// The Figure 7 scenario on one machine: one job arrives at time zero
/// consuming the full machine for `blocker_proc` time units; shortly after,
/// `num_small` jobs arrive with random sizes (`p` in `[1, 3]`) and small
/// randomized demands. PQ/Tetris/BF-EXEC commit to the blocker prematurely;
/// MRIS exercises patience and schedules the small jobs first, achieving
/// roughly a third of their AWCT.
pub fn patience_instance(config: &PatienceConfig) -> Instance {
    assert!(config.num_small >= 1 && config.num_resources >= 1 && config.blocker_proc >= 1.0);
    let mut rng = Rng::new(config.seed);
    let full = vec![1.0; config.num_resources];
    let mut jobs = vec![Job::from_fractions(
        JobId(0),
        0.0,
        config.blocker_proc,
        1.0,
        &full,
    )];
    for _ in 0..config.num_small {
        let release = rng.gen_range(0.05..0.5);
        let proc = rng.gen_range(1.0..3.0);
        // Small enough that the whole small-job population packs into a few
        // early MRIS intervals (as in Lemma 4.1, where the N-1 small jobs
        // run together): the 14-unit blocker delay then dominates the
        // baselines' AWCT, reproducing Figure 7's ~3x gap.
        let demands: Vec<f64> = (0..config.num_resources)
            .map(|_| rng.gen_range(0.0001..0.0005))
            .collect();
        jobs.push(Job::from_fractions(JobId(0), release, proc, 1.0, &demands));
    }
    Instance::from_unnumbered(jobs, config.num_resources).expect("patience jobs are valid")
}

/// A batch of `n` **unit-processing-time** jobs with independent uniform
/// demands in `[lo, hi]` per resource, all released at time zero — the
/// Remark 3 regime where the makespan subproblem is vector bin packing and
/// shelf-FFD outperforms PQ's `2R` bound.
pub fn unit_job_batch(
    n: usize,
    num_resources: usize,
    demand_range: (f64, f64),
    seed: u64,
) -> Instance {
    assert!(n >= 1 && num_resources >= 1);
    let (lo, hi) = demand_range;
    assert!(0.0 <= lo && lo <= hi && hi <= 1.0);
    let mut rng = Rng::new(seed);
    let jobs = (0..n)
        .map(|_| {
            let demands: Vec<f64> = (0..num_resources).map(|_| rng.gen_range(lo..=hi)).collect();
            Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &demands)
        })
        .collect();
    Instance::from_unnumbered(jobs, num_resources).expect("unit jobs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_batch_shape() {
        let inst = unit_job_batch(50, 3, (0.2, 0.6), 5);
        assert_eq!(inst.len(), 50);
        for j in inst.jobs() {
            assert_eq!(j.proc_time, 1.0);
            assert_eq!(j.release, 0.0);
            for &d in j.demands.iter() {
                let f = mris_types::fraction(d);
                assert!((0.2..=0.6).contains(&f), "{f}");
            }
        }
        assert_eq!(unit_job_batch(50, 3, (0.2, 0.6), 5), inst);
    }

    #[test]
    fn lemma41_shape() {
        let inst = lemma41_instance(10, 3, 0.01);
        assert_eq!(inst.len(), 10);
        let blocker = inst.job(JobId(0));
        assert_eq!(blocker.proc_time, 10.0);
        assert!(blocker.demands.iter().all(|&d| d == mris_types::CAPACITY));
        for j in &inst.jobs()[1..] {
            assert_eq!(j.proc_time, 1.0);
            assert_eq!(j.release, 0.01);
        }
        // All small jobs fit together: (n-1) * 1/(n-1) == capacity.
        let total: u64 = inst.jobs()[1..].iter().map(|j| j.demands[0]).sum();
        assert!((total as i64 - mris_types::CAPACITY as i64).abs() <= 9);
    }

    #[test]
    fn reference_awct_formula() {
        // n = 4, eps = 0.5: ((3)(1.5) + 1.5 + 4) / 4 = 10 / 4.
        assert!((lemma41_reference_awct(4, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn patience_instance_shape() {
        let cfg = PatienceConfig {
            num_small: 100,
            ..Default::default()
        };
        let inst = patience_instance(&cfg);
        assert_eq!(inst.len(), 101);
        assert_eq!(inst.job(JobId(0)).proc_time, 14.0);
        for j in &inst.jobs()[1..] {
            assert!(j.release > 0.0 && j.release < 0.5);
            assert!((1.0..=3.0).contains(&j.proc_time));
            assert!(j.total_demand_frac() < 0.03);
        }
    }

    #[test]
    fn patience_deterministic() {
        let cfg = PatienceConfig::default();
        assert_eq!(patience_instance(&cfg), patience_instance(&cfg));
    }
}
