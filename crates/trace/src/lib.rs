//! Workload substrate: trace generation for the paper's evaluation.
//!
//! The paper drives its experiments with the Microsoft Azure VM packing
//! trace (Hadary et al., OSDI '20). That dataset is not redistributable
//! here, so this crate implements the closest synthetic equivalent (see
//! DESIGN.md, "Substitution"): an [`AzureTrace`] generator reproducing the
//! trace's documented statistical structure — a VM-type catalog with
//! heterogeneous fractional demands over five resources (CPU, memory, HDD,
//! SSD, network; SSD and HDD mutually exclusive), heavy-tailed durations
//! from seconds to 90 days, bursty diurnal arrivals over a 12.5-day window,
//! and small-range integer priorities used as weights.
//!
//! Section 7.1's experimental protocol is implemented faithfully:
//! downsampling by a factor `f` at offsets `Delta` drawn without replacement
//! ([`AzureTrace::sample_instances`]), merging SSD/HDD into one storage
//! resource, and normalizing times by the minimum processing time.
//!
//! The crate also generates the paper's synthetic inputs: the Lemma 4.1
//! adversarial family ([`lemma41_instance`]), the Figure 7 "exercising
//! patience" scenario ([`patience_instance`]), and Figure 6's synthetic
//! resource augmentation ([`augment_resources`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod augment;
mod azure;
pub mod io;

pub use adversarial::{
    lemma41_instance, lemma41_reference_awct, patience_instance, unit_job_batch, PatienceConfig,
};
pub use augment::augment_resources;
pub use azure::{ArrivalPattern, AzureTrace, AzureTraceConfig, VmCatalog, VmType};
pub use io::{
    instance_to_csv, parse_instance_csv, read_instance_csv, write_instance_csv, CsvError,
    TraceError,
};
