//! Synthetic resource scaling (Section 7.5.3, Figure 6).

use mris_rng::Rng;
use mris_types::{Instance, Job};

/// Extends every job of `instance` to `target_resources` resource types
/// following the paper's recipe: for each new resource and each job `j`,
/// sample a job `j'` uniformly from the dataset and set `j`'s demand for the
/// new resource to `j'`'s **CPU demand** (resource 0).
///
/// Panics if `target_resources` is smaller than the instance's current `R`.
pub fn augment_resources(instance: &Instance, target_resources: usize, seed: u64) -> Instance {
    let r = instance.num_resources();
    assert!(
        target_resources >= r,
        "cannot shrink resources: {target_resources} < {r}"
    );
    if target_resources == r || instance.is_empty() {
        return instance.clone();
    }
    let mut rng = Rng::new(seed);
    let n = instance.len();
    let jobs: Vec<Job> = instance
        .jobs()
        .iter()
        .map(|job| {
            let mut demands = Vec::with_capacity(target_resources);
            demands.extend_from_slice(&job.demands);
            for _ in r..target_resources {
                let donor = rng.gen_range(0..n);
                demands.push(instance.jobs()[donor].demands[0]);
            }
            Job {
                demands: demands.into_boxed_slice(),
                ..job.clone()
            }
        })
        .collect();
    Instance::new(jobs, target_resources).expect("augmented jobs remain valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::JobId;

    fn base() -> Instance {
        Instance::new(
            vec![
                Job::from_fractions(JobId(0), 0.0, 1.0, 1.0, &[0.25, 0.5]),
                Job::from_fractions(JobId(1), 1.0, 2.0, 1.0, &[0.75, 0.1]),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn preserves_existing_demands_and_metadata() {
        let inst = base();
        let aug = augment_resources(&inst, 5, 9);
        assert_eq!(aug.num_resources(), 5);
        for (a, b) in aug.jobs().iter().zip(inst.jobs()) {
            assert_eq!(&a.demands[..2], &b.demands[..]);
            assert_eq!(a.proc_time, b.proc_time);
            assert_eq!(a.release, b.release);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn new_demands_are_resampled_cpu_values() {
        let inst = base();
        let aug = augment_resources(&inst, 4, 11);
        let cpu_values: Vec<u64> = inst.jobs().iter().map(|j| j.demands[0]).collect();
        for job in aug.jobs() {
            for &d in &job.demands[2..] {
                assert!(cpu_values.contains(&d), "demand {d} not a CPU demand");
            }
        }
    }

    #[test]
    fn identity_when_target_equals_r() {
        let inst = base();
        assert_eq!(augment_resources(&inst, 2, 5), inst);
    }

    #[test]
    fn deterministic_in_seed() {
        let inst = base();
        assert_eq!(
            augment_resources(&inst, 6, 1),
            augment_resources(&inst, 6, 1)
        );
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn rejects_shrinking() {
        let _ = augment_resources(&base(), 1, 0);
    }
}
