//! Synthetic Azure-like VM request trace (substitute for the Microsoft
//! Azure packing trace; see DESIGN.md for the substitution rationale).

use mris_rng::Rng;
use mris_types::{Instance, Job, JobId};

/// Raw resource indices before the SSD/HDD merge.
pub(crate) const CPU: usize = 0;
pub(crate) const MEM: usize = 1;
pub(crate) const HDD: usize = 2;
pub(crate) const SSD: usize = 3;
pub(crate) const NET: usize = 4;
/// Number of raw resources in the generated catalog.
pub(crate) const RAW_RESOURCES: usize = 5;

const SECONDS_PER_DAY: f64 = 86_400.0;
const MAX_DURATION: f64 = 90.0 * SECONDS_PER_DAY;
const MIN_DURATION: f64 = 5.0;

/// One VM type: a name and its demand as a fraction of a machine's capacity
/// for each raw resource. Following the Azure trace's structure, a type
/// demands SSD or HDD but never both.
#[derive(Debug, Clone, PartialEq)]
pub struct VmType {
    /// Family/size label, e.g. `"compute-x4"`.
    pub name: String,
    /// Fractional demand per raw resource (CPU, MEM, HDD, SSD, NET).
    pub demands: [f64; RAW_RESOURCES],
    /// Relative request frequency (smaller sizes are more popular).
    pub popularity: f64,
}

/// A catalog of VM types with demands already resolved against sampled
/// machine types (the paper "randomly samples a machine type for each VM
/// type" because no single Azure machine type hosts every VM type).
#[derive(Debug, Clone, PartialEq)]
pub struct VmCatalog {
    types: Vec<VmType>,
}

/// VM families: (label, cpu, mem, storage, net, uses_hdd) demand fractions
/// of a reference machine at size x1.
const FAMILIES: [(&str, f64, f64, f64, f64, bool); 5] = [
    ("general", 0.030, 0.030, 0.020, 0.030, false),
    ("compute", 0.060, 0.020, 0.015, 0.040, false),
    ("memory", 0.030, 0.080, 0.020, 0.030, false),
    ("storage", 0.020, 0.030, 0.100, 0.050, true),
    ("burst", 0.008, 0.010, 0.005, 0.010, false),
];

/// Size multipliers within each family (powers of two, like cloud SKUs).
const SIZES: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

impl VmCatalog {
    /// Builds the catalog, sampling one machine-type scaling factor per VM
    /// type and resource (heterogeneity across the catalog) — 30 types in
    /// total (5 families x 6 sizes).
    pub fn sample(rng: &mut Rng) -> Self {
        let mut types = Vec::new();
        for (family, cpu, mem, storage, net, uses_hdd) in FAMILIES {
            for (si, &size) in SIZES.iter().enumerate() {
                // Per-(type, resource) machine heterogeneity factor.
                let mut factor = || rng.gen_range(0.7..1.4);
                let mut demands = [0.0; RAW_RESOURCES];
                demands[CPU] = (cpu * size * factor()).min(1.0);
                demands[MEM] = (mem * size * factor()).min(1.0);
                let st = (storage * size * factor()).min(1.0);
                if uses_hdd {
                    demands[HDD] = st;
                } else {
                    demands[SSD] = st;
                }
                demands[NET] = (net * size * factor()).min(1.0);
                types.push(VmType {
                    name: format!("{family}-x{size}"),
                    demands,
                    // Popularity decays with size: small VMs dominate real
                    // traces.
                    popularity: 1.0 / (si + 1) as f64,
                });
            }
        }
        VmCatalog { types }
    }

    /// The catalog entries.
    pub fn types(&self) -> &[VmType] {
        &self.types
    }
}

/// The arrival process shaping job release times over the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Homogeneous: releases uniform over the window.
    Uniform,
    /// Diurnal modulation `1 + amplitude * sin(2 pi t / day)` — the default,
    /// mimicking the day/night cycle of production traces. `amplitude` in
    /// `[0, 1)`.
    Diurnal {
        /// Relative intensity swing (0 = uniform, 0.35 default).
        amplitude: f64,
    },
    /// Diurnal base plus `spikes` short bursts at deterministic (seeded)
    /// offsets, each concentrating ~`spike_mass` of the total arrivals into
    /// ~1% of the window — stress-tests backlog recovery.
    Bursty {
        /// Number of burst windows.
        spikes: usize,
        /// Fraction of all arrivals landing in bursts, in `(0, 1)`.
        spike_mass: f64,
    },
}

impl Default for ArrivalPattern {
    fn default() -> Self {
        ArrivalPattern::Diurnal { amplitude: 0.35 }
    }
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AzureTraceConfig {
    /// Number of base-trace jobs to generate (the paper uses the first
    /// 4 096 000 requests; generate `N * f` to downsample to `N`).
    pub num_jobs: usize,
    /// Release window length in days (the paper's 4.096M jobs span ~12.5
    /// days).
    pub window_days: f64,
    /// RNG seed: the full pipeline is deterministic given the seed.
    pub seed: u64,
    /// Number of priority levels; priorities `0..levels` map to weights
    /// `1..=levels`. The Azure trace has a small priority range.
    pub priority_levels: u8,
    /// Arrival process (default: diurnal, like production traces).
    pub arrivals: ArrivalPattern,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        AzureTraceConfig {
            num_jobs: 256_000,
            window_days: 12.5,
            seed: 0xA207_2024,
            priority_levels: 3,
            arrivals: ArrivalPattern::default(),
        }
    }
}

/// One base-trace request, kept compact so multi-million-job base traces
/// stay cheap; demands are materialized from the catalog at sampling time.
#[derive(Debug, Clone, Copy)]
struct BaseJob {
    release: f64,
    duration: f64,
    priority: u8,
    vm: u16,
}

/// The generated base trace: requests sorted by release time, plus the VM
/// catalog they reference.
#[derive(Debug, Clone)]
pub struct AzureTrace {
    catalog: VmCatalog,
    jobs: Vec<BaseJob>,
    window_seconds: f64,
}

/// Duration mixture components: (probability, median seconds, log-sigma).
/// Spans "a few seconds to 90 days" like the real trace.
const DURATION_MIX: [(f64, f64, f64); 4] = [
    (0.40, 300.0, 1.0),     // minutes-scale
    (0.35, 7_200.0, 0.8),   // hours-scale
    (0.18, 86_400.0, 0.7),  // day-scale
    (0.07, 604_800.0, 0.9), // weeks-scale
];

impl AzureTrace {
    /// Generates the base trace: `num_jobs` requests with diurnal Poisson-
    /// like arrivals over the window, mixture-lognormal durations clamped to
    /// `[5 s, 90 days]`, catalog-sampled demands, and priority weights.
    ///
    /// Each generator section (catalog, burst centers, arrivals, durations,
    /// VM choice, priorities) draws from its own seed-derived sub-stream, so
    /// changing how many values one section consumes cannot shift any other
    /// section's output.
    pub fn generate(config: &AzureTraceConfig) -> Self {
        assert!(config.window_days > 0.0 && config.priority_levels >= 1);
        let root = Rng::new(config.seed);
        let catalog = VmCatalog::sample(&mut root.substream("catalog"));
        let window_seconds = config.window_days * SECONDS_PER_DAY;
        let popularity: Vec<f64> = catalog.types.iter().map(|t| t.popularity).collect();
        let mix_weights: Vec<f64> = DURATION_MIX.iter().map(|c| c.0).collect();
        // Priority distribution: low priorities most common.
        let prio_weights: Vec<f64> = (0..config.priority_levels)
            .map(|p| 1.0 / (1.0 + p as f64))
            .collect();

        // Pre-sample burst centers for the bursty pattern.
        let burst_centers: Vec<f64> = match config.arrivals {
            ArrivalPattern::Bursty { spikes, .. } => {
                let mut burst_rng = root.substream("burst-centers");
                (0..spikes)
                    .map(|_| burst_rng.gen_f64() * window_seconds)
                    .collect()
            }
            _ => Vec::new(),
        };

        let mut arrival_rng = root.substream("arrivals");
        let mut duration_rng = root.substream("durations");
        let mut vm_rng = root.substream("vm-types");
        let mut prio_rng = root.substream("priorities");
        let mut jobs = Vec::with_capacity(config.num_jobs);
        for _ in 0..config.num_jobs {
            let release = match config.arrivals {
                ArrivalPattern::Uniform => arrival_rng.gen_f64() * window_seconds,
                ArrivalPattern::Diurnal { amplitude } => {
                    sample_diurnal_arrival(&mut arrival_rng, window_seconds, amplitude)
                }
                ArrivalPattern::Bursty { spike_mass, .. } => {
                    if !burst_centers.is_empty() && arrival_rng.gen_f64() < spike_mass {
                        let center = *arrival_rng.choose(&burst_centers);
                        let width = window_seconds * 0.01;
                        (center + (arrival_rng.gen_f64() - 0.5) * width).clamp(0.0, window_seconds)
                    } else {
                        sample_diurnal_arrival(&mut arrival_rng, window_seconds, 0.35)
                    }
                }
            };
            let comp = DURATION_MIX[duration_rng.weighted_choice(&mix_weights)];
            let duration = duration_rng
                .lognormal(comp.1.ln(), comp.2)
                .clamp(MIN_DURATION, MAX_DURATION);
            let vm = vm_rng.weighted_choice(&popularity) as u16;
            let priority = prio_rng.weighted_choice(&prio_weights) as u8;
            jobs.push(BaseJob {
                release,
                duration,
                priority,
                vm,
            });
        }
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        AzureTrace {
            catalog,
            jobs,
            window_seconds,
        }
    }

    /// Number of base-trace requests.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the base trace is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The VM catalog backing the trace.
    pub fn catalog(&self) -> &VmCatalog {
        &self.catalog
    }

    /// The release window in seconds.
    pub fn window_seconds(&self) -> f64 {
        self.window_seconds
    }

    /// Downsamples the base trace per Section 7.1: keep every `factor`-th
    /// request starting at offset `delta` (`delta < factor`), merge SSD and
    /// HDD into one storage resource (R = 4), and normalize times by the
    /// minimum processing time so `p_j >= 1`.
    pub fn sample_instance(&self, factor: usize, delta: usize) -> Instance {
        assert!(factor >= 1 && delta < factor);
        let mut jobs = Vec::with_capacity(self.jobs.len() / factor + 1);
        let mut idx = delta;
        while idx < self.jobs.len() {
            let base = &self.jobs[idx];
            let vm = &self.catalog.types[base.vm as usize];
            let demands = [
                vm.demands[CPU],
                vm.demands[MEM],
                vm.demands[HDD] + vm.demands[SSD],
                vm.demands[NET],
            ];
            jobs.push(Job::from_fractions(
                JobId(0),
                base.release,
                base.duration,
                (base.priority + 1) as f64,
                &demands,
            ));
            idx += factor;
        }
        let instance = Instance::from_unnumbered(jobs, 4).expect("generated jobs are valid");
        instance.normalize().0
    }

    /// Draws `count` instances at distinct offsets (without replacement,
    /// uniformly from `[0, factor)`), the paper's protocol for confidence
    /// intervals. `count` must be at most `factor`.
    pub fn sample_instances(&self, factor: usize, count: usize, seed: u64) -> Vec<Instance> {
        assert!(count <= factor, "need count <= factor distinct offsets");
        let mut rng = Rng::new(seed);
        let mut offsets: Vec<usize> = (0..factor).collect();
        // Partial Fisher-Yates: the first `count` entries become the sample.
        for i in 0..count {
            let j = rng.gen_range(i..factor);
            offsets.swap(i, j);
        }
        offsets[..count]
            .iter()
            .map(|&delta| self.sample_instance(factor, delta))
            .collect()
    }
}

/// One arrival time in `[0, window)` with a diurnal intensity
/// `1 + amplitude * sin(2 pi t / day)` via rejection sampling.
fn sample_diurnal_arrival(rng: &mut Rng, window: f64, amplitude: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&amplitude));
    loop {
        let t = rng.gen_f64() * window;
        let intensity = 1.0 + amplitude * (std::f64::consts::TAU * t / SECONDS_PER_DAY).sin();
        if rng.gen_f64() * (1.0 + amplitude) <= intensity {
            return t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AzureTraceConfig {
        AzureTraceConfig {
            num_jobs: 4000,
            window_days: 2.0,
            seed: 42,
            priority_levels: 3,
            arrivals: ArrivalPattern::default(),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AzureTrace::generate(&small_config());
        let b = AzureTrace::generate(&small_config());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.sample_instance(4, 1), b.sample_instance(4, 1));
    }

    #[test]
    fn catalog_types_are_valid() {
        let mut rng = Rng::new(1);
        let catalog = VmCatalog::sample(&mut rng);
        assert_eq!(catalog.types().len(), 30);
        for t in catalog.types() {
            assert!(t.demands.iter().all(|&d| (0.0..=1.0).contains(&d)), "{t:?}");
            // SSD xor HDD (one of them is zero).
            assert!(t.demands[HDD] == 0.0 || t.demands[SSD] == 0.0, "{t:?}");
            assert!(t.demands[CPU] > 0.0);
        }
    }

    #[test]
    fn releases_sorted_within_window() {
        let trace = AzureTrace::generate(&small_config());
        let mut last = 0.0;
        for j in &trace.jobs {
            assert!(j.release >= last && j.release <= trace.window_seconds());
            last = j.release;
            assert!((MIN_DURATION..=MAX_DURATION).contains(&j.duration));
        }
    }

    #[test]
    fn sample_instance_is_normalized_and_merged() {
        let trace = AzureTrace::generate(&small_config());
        let inst = trace.sample_instance(8, 3);
        assert_eq!(inst.num_resources(), 4);
        // ceil((4000 - 3) / 8) jobs survive downsampling at offset 3.
        assert_eq!(inst.len(), 500);
        let stats = inst.stats();
        assert!((stats.min_proc - 1.0).abs() < 1e-9, "normalized min_proc");
        // Wide duration spread survives sampling.
        assert!(stats.max_proc > 50.0);
    }

    #[test]
    fn downsampling_factor_controls_size() {
        let trace = AzureTrace::generate(&small_config());
        let full = trace.sample_instance(1, 0);
        let eighth = trace.sample_instance(8, 0);
        assert_eq!(full.len(), 4000);
        assert_eq!(eighth.len(), 500);
    }

    #[test]
    fn sample_instances_distinct_offsets() {
        let trace = AzureTrace::generate(&small_config());
        let instances = trace.sample_instances(16, 10, 7);
        assert_eq!(instances.len(), 10);
        // Offsets are distinct, so sampled sizes are near-equal but the job
        // multisets differ.
        for w in instances.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn arrival_patterns_shape_releases() {
        let base = AzureTraceConfig {
            num_jobs: 6000,
            window_days: 4.0,
            seed: 9,
            priority_levels: 2,
            arrivals: ArrivalPattern::Uniform,
        };
        let uniform = AzureTrace::generate(&base);
        let bursty = AzureTrace::generate(&AzureTraceConfig {
            arrivals: ArrivalPattern::Bursty {
                spikes: 2,
                spike_mass: 0.6,
            },
            ..base
        });
        // Bursty concentrates mass: the largest 2%-of-window bucket holds
        // far more arrivals than under the uniform pattern.
        let bucket_peak = |trace: &AzureTrace| -> usize {
            let w = trace.window_seconds();
            let mut counts = vec![0usize; 50];
            for j in &trace.jobs {
                counts[((j.release / w * 50.0) as usize).min(49)] += 1;
            }
            counts.into_iter().max().unwrap()
        };
        assert!(
            bucket_peak(&bursty) > 2 * bucket_peak(&uniform),
            "bursty peak {} vs uniform peak {}",
            bucket_peak(&bursty),
            bucket_peak(&uniform)
        );
        // All patterns stay within the window and sorted (checked by the
        // invariant below for the bursty case too).
        let mut last = 0.0;
        for j in &bursty.jobs {
            assert!(j.release >= last && j.release <= bursty.window_seconds());
            last = j.release;
        }
    }

    #[test]
    fn priorities_map_to_small_weight_range() {
        let trace = AzureTrace::generate(&small_config());
        let inst = trace.sample_instance(4, 0);
        for j in inst.jobs() {
            assert!((1.0..=3.0).contains(&j.weight));
        }
    }
}
