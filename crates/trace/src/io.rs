//! CSV import/export of problem instances.
//!
//! The synthetic generator ([`crate::AzureTrace`]) covers the paper's
//! experiments, but downstream users with access to the real Azure packing
//! trace (or any other workload) can bring their own data through this
//! module. The schema is one job per line:
//!
//! ```text
//! release,proc_time,weight,d0,d1,...,d{R-1}
//! ```
//!
//! with an optional header line (detected and skipped when the first field
//! is not numeric), demands as capacity fractions in `[0, 1]`, and `R`
//! inferred from the first row. Comments start with `#`.

use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

use mris_types::{fraction, Instance, Job, JobId};

/// Errors raised while parsing an instance CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line: `(1-based line number, message)`.
    Parse(usize, String),
    /// Parsed jobs failed [`Instance`] validation.
    Invalid(mris_types::InstanceError),
    /// The file contains no job rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            CsvError::Invalid(e) => write!(f, "invalid instance: {e}"),
            CsvError::Empty => write!(f, "no job rows found"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses an instance from CSV text (see module docs for the schema).
pub fn parse_instance_csv(text: &str) -> Result<Instance, CsvError> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut num_resources = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Header detection: skip a first row whose leading field is not a
        // number.
        if jobs.is_empty() && fields[0].parse::<f64>().is_err() {
            continue;
        }
        if fields.len() < 4 {
            return Err(CsvError::Parse(
                lineno + 1,
                format!("expected at least 4 fields, found {}", fields.len()),
            ));
        }
        let parse = |i: usize| -> Result<f64, CsvError> {
            fields[i]
                .parse::<f64>()
                .map_err(|e| CsvError::Parse(lineno + 1, format!("field {}: {e}", i + 1)))
        };
        let release = parse(0)?;
        let proc_time = parse(1)?;
        let weight = parse(2)?;
        let demands: Vec<f64> = (3..fields.len()).map(parse).collect::<Result<_, _>>()?;
        if num_resources == 0 {
            num_resources = demands.len();
        } else if demands.len() != num_resources {
            return Err(CsvError::Parse(
                lineno + 1,
                format!(
                    "inconsistent resource count: {} (expected {num_resources})",
                    demands.len()
                ),
            ));
        }
        jobs.push(Job::from_fractions(
            JobId(0),
            release,
            proc_time,
            weight,
            &demands,
        ));
    }
    if jobs.is_empty() {
        return Err(CsvError::Empty);
    }
    Instance::from_unnumbered(jobs, num_resources).map_err(CsvError::Invalid)
}

/// Reads an instance from a CSV file.
pub fn read_instance_csv(path: &Path) -> Result<Instance, CsvError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    std::io::BufReader::new(file).read_to_string(&mut text)?;
    parse_instance_csv(&text)
}

/// Serializes an instance to the CSV schema (with a header line).
pub fn instance_to_csv(instance: &Instance) -> String {
    let mut out = String::from("release,proc_time,weight");
    for l in 0..instance.num_resources() {
        out.push_str(&format!(",d{l}"));
    }
    out.push('\n');
    for job in instance.jobs() {
        out.push_str(&format!("{},{},{}", job.release, job.proc_time, job.weight));
        for &d in job.demands.iter() {
            out.push_str(&format!(",{}", fraction(d)));
        }
        out.push('\n');
    }
    out
}

/// Writes an instance to a CSV file.
pub fn write_instance_csv(instance: &Instance, path: &Path) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(instance_to_csv(instance).as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Convenience: reads any `BufRead` as instance CSV.
pub fn read_instance<R: BufRead>(mut reader: R) -> Result<Instance, CsvError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_instance_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
release,proc_time,weight,d0,d1
# a comment
0.0,2.0,1.0,0.5,0.25
1.5,1.0,3.0,1.0,0.0
";

    #[test]
    fn parse_roundtrip() {
        let inst = parse_instance_csv(SAMPLE).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 2);
        assert_eq!(inst.jobs()[1].weight, 3.0);
        let csv = instance_to_csv(&inst);
        let back = parse_instance_csv(&csv).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn headerless_files_parse() {
        let inst = parse_instance_csv("0,1,1,0.5\n2,3,1,0.25\n").unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 1);
    }

    #[test]
    fn rejects_inconsistent_resources() {
        let err = parse_instance_csv("0,1,1,0.5,0.5\n0,1,1,0.5\n").unwrap_err();
        assert!(matches!(err, CsvError::Parse(2, _)), "{err}");
    }

    #[test]
    fn rejects_bad_numbers_with_line_info() {
        let err = parse_instance_csv("0,1,1,0.5\n0,abc,1,0.5\n").unwrap_err();
        match err {
            CsvError::Parse(2, msg) => assert!(msg.contains("field 2"), "{msg}"),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(matches!(
            parse_instance_csv("# nothing\n").unwrap_err(),
            CsvError::Empty
        ));
        // Negative processing time fails instance validation.
        assert!(matches!(
            parse_instance_csv("0,-1,1,0.5\n").unwrap_err(),
            CsvError::Invalid(_)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let inst = parse_instance_csv(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("mris_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.csv");
        write_instance_csv(&inst, &path).unwrap();
        let back = read_instance_csv(&path).unwrap();
        assert_eq!(back, inst);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_trace_roundtrips_through_csv() {
        use crate::{AzureTrace, AzureTraceConfig};
        let trace = AzureTrace::generate(&AzureTraceConfig {
            num_jobs: 200,
            ..Default::default()
        });
        let inst = trace.sample_instance(2, 0);
        let back = parse_instance_csv(&instance_to_csv(&inst)).unwrap();
        assert_eq!(back.len(), inst.len());
        // Fixed-point demands roundtrip exactly; times may differ in the
        // last ulp through decimal printing, so compare them loosely.
        for (a, b) in back.jobs().iter().zip(inst.jobs()) {
            assert_eq!(a.demands, b.demands);
            assert!((a.release - b.release).abs() < 1e-9);
            assert!((a.proc_time - b.proc_time).abs() < 1e-9);
        }
    }
}
