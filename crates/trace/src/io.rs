//! CSV import/export of problem instances.
//!
//! The synthetic generator ([`crate::AzureTrace`]) covers the paper's
//! experiments, but downstream users with access to the real Azure packing
//! trace (or any other workload) can bring their own data through this
//! module. The schema is one job per line:
//!
//! ```text
//! release,proc_time,weight,d0,d1,...,d{R-1}
//! ```
//!
//! with an optional header line (detected and skipped when the first field
//! is not numeric), demands as capacity fractions in `[0, 1]`, and `R`
//! inferred from the first row. Comments start with `#`.

use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

use mris_types::{fraction, Instance, Job, JobId};

/// Errors raised while reading trace data (instance CSVs).
///
/// Parse failures carry the 1-based line number and, when the problem is
/// attributable to a single value, the 1-based field (column) number — so a
/// malformed row in a million-line trace is findable without bisection.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// 1-based field number, when the error is local to one value
        /// (`None` for row-level problems such as a wrong field count).
        field: Option<usize>,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Parsed jobs failed [`Instance`] validation.
    Invalid(mris_types::InstanceError),
    /// The file contains no job rows.
    Empty,
}

/// Former name of [`TraceError`], kept for continuity with the CSV entry
/// points that raise it.
pub type CsvError = TraceError;

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Parse {
                line,
                field: Some(field),
                message,
            } => write!(f, "line {line}, field {field}: {message}"),
            TraceError::Parse {
                line,
                field: None,
                message,
            } => write!(f, "line {line}: {message}"),
            TraceError::Invalid(e) => write!(f, "invalid instance: {e}"),
            TraceError::Empty => write!(f, "no job rows found"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parses an instance from CSV text (see module docs for the schema).
pub fn parse_instance_csv(text: &str) -> Result<Instance, CsvError> {
    let mut jobs: Vec<Job> = Vec::new();
    let mut num_resources = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        // Header detection: skip a first row whose leading field is not a
        // number.
        if jobs.is_empty() && fields[0].parse::<f64>().is_err() {
            continue;
        }
        if fields.len() < 4 {
            return Err(TraceError::Parse {
                line: lineno + 1,
                field: None,
                message: format!("expected at least 4 fields, found {}", fields.len()),
            });
        }
        let parse = |i: usize| -> Result<f64, TraceError> {
            let value = fields[i].parse::<f64>().map_err(|e| TraceError::Parse {
                line: lineno + 1,
                field: Some(i + 1),
                message: format!("'{}': {e}", fields[i]),
            })?;
            if !value.is_finite() {
                return Err(TraceError::Parse {
                    line: lineno + 1,
                    field: Some(i + 1),
                    message: format!("'{}' is not a finite number", fields[i]),
                });
            }
            Ok(value)
        };
        let release = parse(0)?;
        let proc_time = parse(1)?;
        let weight = parse(2)?;
        let demands: Vec<f64> = (3..fields.len()).map(parse).collect::<Result<_, _>>()?;
        // Demands are capacity fractions; the fixed-point conversion in
        // `Job::from_fractions` clamps out-of-range values silently, so
        // range-check here where the field is still attributable.
        for (k, &d) in demands.iter().enumerate() {
            if !(0.0..=1.0).contains(&d) {
                return Err(TraceError::Parse {
                    line: lineno + 1,
                    field: Some(4 + k),
                    message: format!("demand {d} is outside [0, 1]"),
                });
            }
        }
        if num_resources == 0 {
            num_resources = demands.len();
        } else if demands.len() != num_resources {
            return Err(TraceError::Parse {
                line: lineno + 1,
                field: None,
                message: format!(
                    "inconsistent resource count: {} (expected {num_resources})",
                    demands.len()
                ),
            });
        }
        jobs.push(Job::from_fractions(
            JobId(0),
            release,
            proc_time,
            weight,
            &demands,
        ));
    }
    if jobs.is_empty() {
        return Err(TraceError::Empty);
    }
    Instance::from_unnumbered(jobs, num_resources).map_err(TraceError::Invalid)
}

/// Reads an instance from a CSV file.
pub fn read_instance_csv(path: &Path) -> Result<Instance, CsvError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    std::io::BufReader::new(file).read_to_string(&mut text)?;
    parse_instance_csv(&text)
}

/// Serializes an instance to the CSV schema (with a header line).
pub fn instance_to_csv(instance: &Instance) -> String {
    let mut out = String::from("release,proc_time,weight");
    for l in 0..instance.num_resources() {
        out.push_str(&format!(",d{l}"));
    }
    out.push('\n');
    for job in instance.jobs() {
        out.push_str(&format!("{},{},{}", job.release, job.proc_time, job.weight));
        for &d in job.demands.iter() {
            out.push_str(&format!(",{}", fraction(d)));
        }
        out.push('\n');
    }
    out
}

/// Writes an instance to a CSV file.
pub fn write_instance_csv(instance: &Instance, path: &Path) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(instance_to_csv(instance).as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Convenience: reads any `BufRead` as instance CSV.
pub fn read_instance<R: BufRead>(mut reader: R) -> Result<Instance, CsvError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_instance_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
release,proc_time,weight,d0,d1
# a comment
0.0,2.0,1.0,0.5,0.25
1.5,1.0,3.0,1.0,0.0
";

    #[test]
    fn parse_roundtrip() {
        let inst = parse_instance_csv(SAMPLE).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 2);
        assert_eq!(inst.jobs()[1].weight, 3.0);
        let csv = instance_to_csv(&inst);
        let back = parse_instance_csv(&csv).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn headerless_files_parse() {
        let inst = parse_instance_csv("0,1,1,0.5\n2,3,1,0.25\n").unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.num_resources(), 1);
    }

    #[test]
    fn rejects_inconsistent_resources() {
        let err = parse_instance_csv("0,1,1,0.5,0.5\n0,1,1,0.5\n").unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::Parse {
                    line: 2,
                    field: None,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_bad_numbers_with_line_and_field() {
        let err = parse_instance_csv("0,1,1,0.5\n0,abc,1,0.5\n").unwrap_err();
        match err {
            TraceError::Parse {
                line: 2,
                field: Some(2),
                ..
            } => {}
            other => panic!("{other}"),
        }
        assert!(err.to_string().contains("line 2, field 2"), "{err}");
    }

    #[test]
    fn rejects_non_finite_values_with_field() {
        let err = parse_instance_csv("0,1,inf,0.5\n").unwrap_err();
        match err {
            TraceError::Parse {
                line: 1,
                field: Some(3),
                ref message,
            } => assert!(message.contains("finite"), "{message}"),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn rejects_out_of_range_demands_with_field() {
        // The fixed-point conversion would clamp 1.5 to full capacity;
        // the parser must reject it instead, naming the exact column.
        let err = parse_instance_csv("0,1,1,0.25,1.5\n").unwrap_err();
        match err {
            TraceError::Parse {
                line: 1,
                field: Some(5),
                ref message,
            } => assert!(message.contains("outside [0, 1]"), "{message}"),
            ref other => panic!("{other}"),
        }
        let err = parse_instance_csv("0,1,1,-0.1\n").unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::Parse {
                    line: 1,
                    field: Some(4),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(matches!(
            parse_instance_csv("# nothing\n").unwrap_err(),
            TraceError::Empty
        ));
        // Negative processing time fails instance validation.
        assert!(matches!(
            parse_instance_csv("0,-1,1,0.5\n").unwrap_err(),
            TraceError::Invalid(_)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let inst = parse_instance_csv(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("mris_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.csv");
        write_instance_csv(&inst, &path).unwrap();
        let back = read_instance_csv(&path).unwrap();
        assert_eq!(back, inst);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_trace_roundtrips_through_csv() {
        use crate::{AzureTrace, AzureTraceConfig};
        let trace = AzureTrace::generate(&AzureTraceConfig {
            num_jobs: 200,
            ..Default::default()
        });
        let inst = trace.sample_instance(2, 0);
        let back = parse_instance_csv(&instance_to_csv(&inst)).unwrap();
        assert_eq!(back.len(), inst.len());
        // Fixed-point demands roundtrip exactly; times may differ in the
        // last ulp through decimal printing, so compare them loosely.
        for (a, b) in back.jobs().iter().zip(inst.jobs()) {
            assert_eq!(a.demands, b.demands);
            assert!((a.release - b.release).abs() < 1e-9);
            assert!((a.proc_time - b.proc_time).abs() < 1e-9);
        }
    }
}
