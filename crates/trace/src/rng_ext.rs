//! Small sampling helpers on top of `rand` (kept dependency-light: no
//! `rand_distr`).

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub(crate) fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sample with the given log-space mean and standard deviation.
pub(crate) fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// Weighted index choice proportional to `weights` (must be non-empty with
/// positive total).
pub(crate) fn weighted_choice<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| sample_lognormal(&mut rng, 2.0, 0.5))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[5000];
        assert!((median - 2.0f64.exp()).abs() < 0.5, "median {median}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }
}
