//! BF-EXEC (Section 7.2; NoroozOliaee et al., INFOCOM WKSHPS '14).
//!
//! * **On arrival**: place the job immediately on the *feasible* machine
//!   whose remaining resources after placement have the lowest L2 norm
//!   (best fit); queue the job if no machine fits.
//! * **On departure**: repeatedly place the shortest queued job that fits on
//!   the machine that just freed capacity.
//!
//! The scheduler thereby "gives preference to jobs that have recently
//! arrived" — a newly arrived job is tried immediately, ahead of older
//! queued jobs — while draining the queue in SJF order.

use std::collections::BTreeSet;

use mris_sim::{run_online, Dispatcher, OnlinePolicy, OrdTime};
use mris_types::{fraction, Amount, Instance, JobId, Schedule, SchedulingError, Time};

use crate::Scheduler;

/// The BF-EXEC online policy. Use through [`BfExec`] unless composing your
/// own driver loop.
#[derive(Debug, Clone, Default)]
pub struct BfExecPolicy {
    /// Queue ordered by (processing time, id): SJF draining.
    pending: BTreeSet<(OrdTime, JobId)>,
    fresh: Vec<JobId>,
}

impl BfExecPolicy {
    /// An empty BF-EXEC policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Squared L2 norm of the remaining capacity of machine `m` if `demands`
    /// were placed there (in capacity fractions).
    fn residual_norm2(avail: &[Amount], demands: &[Amount]) -> f64 {
        avail
            .iter()
            .zip(demands)
            .map(|(&a, &d)| {
                let rem = fraction(a) - fraction(d);
                rem * rem
            })
            .sum()
    }
}

impl OnlinePolicy for BfExecPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], _instance: &Instance) {
        self.fresh.extend_from_slice(arrived);
    }

    fn dispatch(&mut self, d: &mut Dispatcher<'_>, freed: &[usize]) -> Result<(), SchedulingError> {
        let instance = d.instance();
        // Departure rule first: backfill each freed machine in SJF order.
        for &m in freed {
            loop {
                let next = self
                    .pending
                    .iter()
                    .find(|&&(_, j)| d.cluster().fits(m, &instance.job(j).demands))
                    .copied();
                let Some(entry) = next else { break };
                d.place(m, entry.1)?;
                self.pending.remove(&entry);
            }
        }
        // Arrival rule: best-fit each fresh job, else queue it.
        for &j in &std::mem::take(&mut self.fresh) {
            let job = instance.job(j);
            let best = (0..d.cluster().num_machines())
                .filter(|&m| d.cluster().fits(m, &job.demands))
                .min_by(|&a, &b| {
                    let na = Self::residual_norm2(d.cluster().avail(a), &job.demands);
                    let nb = Self::residual_norm2(d.cluster().avail(b), &job.demands);
                    na.total_cmp(&nb).then(a.cmp(&b))
                });
            match best {
                Some(m) => d.place(m, j)?,
                None => {
                    self.pending.insert((OrdTime(job.proc_time), j));
                }
            }
        }
        Ok(())
    }
}

/// The BF-EXEC scheduler: best-fit on arrival, SJF backfill on departure.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfExec;

impl Scheduler for BfExec {
    fn name(&self) -> String {
        "BF-EXEC".to_string()
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &mris_types::ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        run_online(instance, cluster, &mut BfExecPolicy::new())
    }

    // Reactive like PQ: gated arrivals and speed-scaled runs both come for
    // free from the driver and cluster.
    fn supports_precedence(&self) -> bool {
        true
    }

    fn supports_heterogeneous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::from_unnumbered(jobs, 2).unwrap()
    }

    fn j(r: f64, p: f64, d: &[f64]) -> Job {
        Job::from_fractions(JobId(0), r, p, 1.0, d)
    }

    #[test]
    fn arrival_picks_best_fit_machine() {
        // Machine 0 is loaded to 0.5 on both resources; machine 1 idle.
        // A small job best-fits the *loaded* machine (lower residual norm).
        let jobs = vec![j(0.0, 10.0, &[0.5, 0.5]), j(1.0, 2.0, &[0.3, 0.3])];
        let instance = inst(jobs);
        let s = BfExec.schedule(&instance, 2);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(1)).unwrap().machine, 0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 1.0);
    }

    #[test]
    fn departure_backfills_sjf() {
        // A blocking job holds the machine; three queued jobs of different
        // lengths; the shortest enters first when the blocker leaves.
        let jobs = vec![
            j(0.0, 5.0, &[1.0, 0.0]),
            j(1.0, 4.0, &[0.9, 0.0]),
            j(1.0, 2.0, &[0.9, 0.0]),
            j(1.0, 3.0, &[0.9, 0.0]),
        ];
        let instance = inst(jobs);
        let s = BfExec.schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(2)).unwrap().start, 5.0);
        assert_eq!(s.get(JobId(3)).unwrap().start, 7.0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 10.0);
    }

    #[test]
    fn queues_when_nothing_fits() {
        let jobs = vec![j(0.0, 3.0, &[1.0, 1.0]), j(0.5, 1.0, &[0.5, 0.5])];
        let instance = inst(jobs);
        let s = BfExec.schedule(&instance, 1);
        s.validate(&instance).unwrap();
        assert_eq!(s.get(JobId(1)).unwrap().start, 3.0);
    }

    #[test]
    fn completes_large_random_mix() {
        let jobs: Vec<Job> = (0..50)
            .map(|i| {
                j(
                    (i % 7) as f64,
                    1.0 + (i % 5) as f64,
                    &[0.1 + (i % 9) as f64 * 0.1, 0.1 + (i % 4) as f64 * 0.2],
                )
            })
            .collect();
        let instance = inst(jobs);
        let s = BfExec.schedule(&instance, 3);
        s.validate(&instance).unwrap();
    }
}
