//! CA-PQ: Collect-All Priority-Queue (Section 7.2).
//!
//! The extreme of "exercising patience": with oracle knowledge of the last
//! release time, CA-PQ waits until every job has arrived and then schedules
//! the whole batch with PQ. It serves as the worst-case reference in the
//! paper's evaluation — its queuing delays dominate everyone else's
//! (Figure 5) and at heavy load the other event-driven schedulers converge
//! to it (Figure 3).

use std::collections::BTreeSet;

use mris_sim::{run_online, Dispatcher, OnlinePolicy, OrdTime};
use mris_types::{Instance, JobId, Schedule, SchedulingError, Time};

use crate::{Scheduler, SortHeuristic};

/// The CA-PQ policy: holds every job until `gate` (the last release time),
/// then behaves as offline PQ. Use through [`CaPq`] unless composing your
/// own driver loop (e.g. the fault-injection harness).
#[derive(Debug, Clone)]
pub struct CaPqPolicy {
    heuristic: SortHeuristic,
    gate: Time,
    started: bool,
    pending: BTreeSet<(OrdTime, JobId)>,
}

impl CaPqPolicy {
    /// A CA-PQ policy gating all dispatch until `gate` (callers pass the
    /// instance's last release time — the oracle knowledge the paper
    /// grants CA-PQ).
    pub fn new(heuristic: SortHeuristic, gate: Time) -> Self {
        CaPqPolicy {
            heuristic,
            gate,
            started: false,
            pending: BTreeSet::new(),
        }
    }
}

impl OnlinePolicy for CaPqPolicy {
    fn on_arrivals(&mut self, _now: Time, arrived: &[JobId], instance: &Instance) {
        for &j in arrived {
            self.pending
                .insert((OrdTime(self.heuristic.key(instance.job(j))), j));
        }
    }

    fn dispatch(&mut self, d: &mut Dispatcher<'_>, freed: &[usize]) -> Result<(), SchedulingError> {
        if d.now() < self.gate {
            return Ok(());
        }
        let instance = d.instance();
        let mut placed = Vec::new();
        for &(key, j) in self.pending.iter() {
            let demands = &instance.job(j).demands;
            // First dispatch (the batch release): scan all machines. After
            // that only completions occur, so only freed machines can admit.
            let machine = if self.started {
                freed
                    .iter()
                    .copied()
                    .find(|&m| d.cluster().fits(m, demands))
            } else {
                d.cluster().first_fit(demands)
            };
            if let Some(m) = machine {
                d.place(m, j)?;
                placed.push((key, j));
            }
        }
        self.started = true;
        for entry in placed {
            self.pending.remove(&entry);
        }
        Ok(())
    }
}

/// The CA-PQ scheduler. Requires (and takes, like the paper grants it) the
/// last release time as side knowledge; [`Scheduler::schedule`] reads it off
/// the instance.
#[derive(Debug, Clone, Copy)]
pub struct CaPq {
    /// Queue ordering used for the batch (the paper uses WSJF).
    pub heuristic: SortHeuristic,
}

impl CaPq {
    /// CA-PQ with the given batch ordering.
    pub fn new(heuristic: SortHeuristic) -> Self {
        CaPq { heuristic }
    }
}

impl Default for CaPq {
    fn default() -> Self {
        CaPq::new(SortHeuristic::Wsjf)
    }
}

impl Scheduler for CaPq {
    fn name(&self) -> String {
        format!("CA-PQ-{}", self.heuristic)
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &mris_types::ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        let gate = instance.stats().max_release;
        let mut policy = CaPqPolicy::new(self.heuristic, gate);
        run_online(instance, cluster, &mut policy)
    }

    // Precedence stays opted out (the default): CA-PQ's oracle is the last
    // *release* time, but a DAG successor only becomes available when its
    // predecessors complete — which can be after the gate, so "collect all"
    // is no longer well-defined. Heterogeneity is fine: the batch scan
    // respects per-machine capacity and the cluster scales run lengths.
    fn supports_heterogeneous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::Job;

    fn j(r: f64, p: f64, d: &[f64]) -> Job {
        Job::from_fractions(JobId(0), r, p, 1.0, d)
    }

    #[test]
    fn nothing_starts_before_last_release() {
        let jobs = vec![
            j(0.0, 1.0, &[0.1]),
            j(5.0, 1.0, &[0.1]),
            j(2.0, 1.0, &[0.1]),
        ];
        let instance = Instance::from_unnumbered(jobs, 1).unwrap();
        let s = CaPq::default().schedule(&instance, 2);
        s.validate(&instance).unwrap();
        for a in s.assignments() {
            assert!(a.start >= 5.0, "{a:?}");
        }
    }

    #[test]
    fn batch_is_scheduled_in_heuristic_order() {
        // All conflict pairwise; WSJF: heavier/shorter first.
        let jobs = vec![
            Job::from_fractions(JobId(0), 0.0, 4.0, 1.0, &[0.9]),
            Job::from_fractions(JobId(1), 1.0, 2.0, 1.0, &[0.9]),
            Job::from_fractions(JobId(2), 2.0, 2.0, 4.0, &[0.9]),
        ];
        let instance = Instance::from_unnumbered(jobs, 1).unwrap();
        let s = CaPq::default().schedule(&instance, 1);
        s.validate(&instance).unwrap();
        // Keys: j0 = 4, j1 = 2, j2 = 0.5 -> order j2, j1, j0 from t=2.
        assert_eq!(s.get(JobId(2)).unwrap().start, 2.0);
        assert_eq!(s.get(JobId(1)).unwrap().start, 4.0);
        assert_eq!(s.get(JobId(0)).unwrap().start, 6.0);
    }

    #[test]
    fn beats_pq_on_adversarial_patience_instance() {
        use crate::Pq;
        // Lemma 4.1 shape: PQ commits to the blocker; CA-PQ (which waits)
        // schedules the small jobs first.
        let mut jobs = vec![j(0.0, 20.0, &[1.0])];
        for _ in 0..19 {
            jobs.push(j(0.1, 1.0, &[1.0 / 19.0]));
        }
        let instance = Instance::from_unnumbered(jobs, 1).unwrap();
        let pq = Pq::new(SortHeuristic::Wsjf).schedule(&instance, 1);
        let capq = CaPq::default().schedule(&instance, 1);
        pq.validate(&instance).unwrap();
        capq.validate(&instance).unwrap();
        assert!(capq.awct(&instance) < pq.awct(&instance));
    }
}
