//! Queue-sorting heuristics (Section 7.3).

use mris_types::Job;

/// The sorting heuristics the paper evaluates for ordering pending jobs, all
/// sorted by **non-decreasing** key. Weighted variants divide by the weight
/// so that heavier jobs come earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortHeuristic {
    /// Smallest-Volume-First: `v_j = p_j * u_j`.
    Svf,
    /// Weighted Smallest-Volume-First: `v_j / w_j`.
    Wsvf,
    /// Shortest-Job-First: `p_j`.
    Sjf,
    /// Weighted Shortest-Job-First: `p_j / w_j`. The paper's default inside
    /// MRIS (Section 7.3).
    Wsjf,
    /// Smallest-Demand-First: `u_j`.
    Sdf,
    /// Weighted Smallest-Demand-First: `u_j / w_j`.
    Wsdf,
    /// Earliest-Release-First: `r_j`.
    Erf,
    /// Smallest-Dominant-demand-First: `max_l d_{jl}` — a DRF-inspired
    /// extension beyond the paper's heuristic set (Dominant Resource
    /// Fairness orders allocations by the dominant share).
    Sddf,
    /// Weighted Smallest-Dominant-demand-First: `max_l d_{jl} / w_j`
    /// (extension).
    Wsddf,
}

impl SortHeuristic {
    /// The paper's Figure 1 heuristics, in reporting order.
    pub const ALL: [SortHeuristic; 7] = [
        SortHeuristic::Svf,
        SortHeuristic::Wsvf,
        SortHeuristic::Sjf,
        SortHeuristic::Wsjf,
        SortHeuristic::Sdf,
        SortHeuristic::Wsdf,
        SortHeuristic::Erf,
    ];

    /// All heuristics including the DRF-inspired extensions.
    pub const ALL_EXTENDED: [SortHeuristic; 9] = [
        SortHeuristic::Svf,
        SortHeuristic::Wsvf,
        SortHeuristic::Sjf,
        SortHeuristic::Wsjf,
        SortHeuristic::Sdf,
        SortHeuristic::Wsdf,
        SortHeuristic::Erf,
        SortHeuristic::Sddf,
        SortHeuristic::Wsddf,
    ];

    /// The sort key for a job: jobs are scheduled in non-decreasing key
    /// order. Weighted variants of a zero-weight job fall back to the
    /// unweighted key scaled to infinity (a zero-weight job is never urgent).
    pub fn key(self, job: &Job) -> f64 {
        let weighted = |raw: f64| {
            if job.weight > 0.0 {
                raw / job.weight
            } else {
                f64::INFINITY
            }
        };
        match self {
            SortHeuristic::Svf => job.volume(),
            SortHeuristic::Wsvf => weighted(job.volume()),
            SortHeuristic::Sjf => job.proc_time,
            SortHeuristic::Wsjf => weighted(job.proc_time),
            SortHeuristic::Sdf => job.total_demand_frac(),
            SortHeuristic::Wsdf => weighted(job.total_demand_frac()),
            SortHeuristic::Erf => job.release,
            SortHeuristic::Sddf => dominant_demand(job),
            SortHeuristic::Wsddf => weighted(dominant_demand(job)),
        }
    }

    /// Short uppercase label, as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SortHeuristic::Svf => "SVF",
            SortHeuristic::Wsvf => "WSVF",
            SortHeuristic::Sjf => "SJF",
            SortHeuristic::Wsjf => "WSJF",
            SortHeuristic::Sdf => "SDF",
            SortHeuristic::Wsdf => "WSDF",
            SortHeuristic::Erf => "ERF",
            SortHeuristic::Sddf => "SDDF",
            SortHeuristic::Wsddf => "WSDDF",
        }
    }
}

/// The job's dominant demand `max_l d_{jl}` as a capacity fraction.
fn dominant_demand(job: &Job) -> f64 {
    mris_types::fraction(job.demands.iter().copied().max().unwrap_or(0))
}

impl std::fmt::Display for SortHeuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SortHeuristic {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SVF" => Ok(SortHeuristic::Svf),
            "WSVF" => Ok(SortHeuristic::Wsvf),
            "SJF" => Ok(SortHeuristic::Sjf),
            "WSJF" => Ok(SortHeuristic::Wsjf),
            "SDF" => Ok(SortHeuristic::Sdf),
            "WSDF" => Ok(SortHeuristic::Wsdf),
            "ERF" => Ok(SortHeuristic::Erf),
            "SDDF" => Ok(SortHeuristic::Sddf),
            "WSDDF" => Ok(SortHeuristic::Wsddf),
            other => Err(format!("unknown sort heuristic: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mris_types::JobId;

    fn job(p: f64, w: f64, demands: &[f64], r: f64) -> Job {
        Job::from_fractions(JobId(0), r, p, w, demands)
    }

    #[test]
    fn keys_match_definitions() {
        let j = job(4.0, 2.0, &[0.5, 0.25], 7.0);
        assert!((SortHeuristic::Svf.key(&j) - 3.0).abs() < 1e-9);
        assert!((SortHeuristic::Wsvf.key(&j) - 1.5).abs() < 1e-9);
        assert!((SortHeuristic::Sjf.key(&j) - 4.0).abs() < 1e-9);
        assert!((SortHeuristic::Wsjf.key(&j) - 2.0).abs() < 1e-9);
        assert!((SortHeuristic::Sdf.key(&j) - 0.75).abs() < 1e-9);
        assert!((SortHeuristic::Wsdf.key(&j) - 0.375).abs() < 1e-9);
        assert!((SortHeuristic::Erf.key(&j) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_is_least_urgent() {
        let j = job(4.0, 0.0, &[0.5], 0.0);
        assert_eq!(SortHeuristic::Wsjf.key(&j), f64::INFINITY);
        assert_eq!(SortHeuristic::Wsvf.key(&j), f64::INFINITY);
    }

    #[test]
    fn parse_roundtrip() {
        for h in SortHeuristic::ALL_EXTENDED {
            let parsed: SortHeuristic = h.label().parse().unwrap();
            assert_eq!(parsed, h);
        }
        assert!("bogus".parse::<SortHeuristic>().is_err());
    }

    #[test]
    fn dominant_demand_keys() {
        let j = job(4.0, 2.0, &[0.5, 0.25], 7.0);
        assert!((SortHeuristic::Sddf.key(&j) - 0.5).abs() < 1e-9);
        assert!((SortHeuristic::Wsddf.key(&j) - 0.25).abs() < 1e-9);
        let zero = job(1.0, 1.0, &[0.0, 0.0], 0.0);
        assert_eq!(SortHeuristic::Sddf.key(&zero), 0.0);
    }
}
