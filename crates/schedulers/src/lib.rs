//! Baseline online schedulers from the paper.
//!
//! * The **Priority-Queue (PQ) family** (Section 4): on every event, scan the
//!   pending queue in a heuristic order and start every job that fits. Seven
//!   sorting heuristics from Section 7.3 are provided ([`SortHeuristic`]).
//!   Lemma 4.1 shows this whole class is `Omega(N)`-competitive, which the
//!   `mris-trace` adversarial generator demonstrates experimentally.
//! * **Tetris** (Grandl et al., SIGCOMM '14), adapted to the non-preemptive
//!   setting as in Section 7.2: machines pick pending jobs by an alignment
//!   (packing) score combined with a smallest-volume-first term.
//! * **BF-EXEC** (NoroozOliaee et al.): best-fit machine selection on
//!   arrival, shortest-job-first backfill of the freed machine on departure.
//! * **CA-PQ**: the "collect all" extreme — waits (with oracle knowledge of
//!   the last release time) until every job has arrived, then runs offline
//!   PQ. Serves as the worst-case patience reference in Section 7.
//!
//! All of them implement the crate's [`Scheduler`] trait, as does MRIS in
//! `mris-core`, so experiments can treat algorithms uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfexec;
mod capq;
mod heuristic;
mod pq;
mod tetris;

pub use bfexec::{BfExec, BfExecPolicy};
pub use capq::{CaPq, CaPqPolicy};
pub use heuristic::SortHeuristic;
pub use pq::{NaivePqPolicy, Pq, PqPolicy};
pub use tetris::{Tetris, TetrisPolicy};

use mris_types::{ClusterSpec, Instance, Schedule, SchedulingError};

/// A complete scheduling algorithm: consumes an instance and produces a full
/// schedule on the machines described by a [`ClusterSpec`].
///
/// Online algorithms implement this by running themselves through the
/// event-driven engine; the trait exists so experiments and benches can
/// compare algorithms uniformly.
///
/// Implementors provide [`Scheduler::try_schedule_on`], the fallible entry
/// point over an explicit cluster description. The historical
/// [`Scheduler::try_schedule`] shape (`num_machines` identical unit
/// machines) is a provided wrapper over `ClusterSpec::uniform`, so existing
/// call sites keep compiling unchanged. Callers that treat a scheduling
/// failure as a bug (experiments, benches) use the provided
/// [`Scheduler::schedule`] / [`Scheduler::schedule_on`], which panic with
/// the algorithm's name on error.
///
/// Capability flags ([`Scheduler::supports_precedence`],
/// [`Scheduler::supports_heterogeneous`]) default to `false`; the registry
/// consults them before handing an algorithm an instance it would schedule
/// silently wrong, surfacing `RegistryError::Unsupported` instead.
pub trait Scheduler {
    /// Human-readable algorithm name (appears in experiment reports).
    fn name(&self) -> String;

    /// Produces a complete schedule of `instance` on the machines of
    /// `cluster`, surfacing policy bugs as typed errors.
    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> Result<Schedule, SchedulingError>;

    /// [`Scheduler::try_schedule_on`] on `num_machines` identical unit
    /// machines — the pre-`ClusterSpec` call shape, kept as a wrapper.
    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError> {
        self.try_schedule_on(instance, &ClusterSpec::uniform(num_machines))
    }

    /// Infallible convenience wrapper around [`Scheduler::try_schedule`].
    ///
    /// # Panics
    ///
    /// Panics (naming the algorithm) if the underlying policy fails; every
    /// shipped algorithm is work-conserving and never does.
    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        match self.try_schedule(instance, num_machines) {
            Ok(s) => s,
            Err(e) => panic!("{} failed to schedule: {e}", self.name()),
        }
    }

    /// Infallible convenience wrapper around [`Scheduler::try_schedule_on`].
    ///
    /// # Panics
    ///
    /// Panics (naming the algorithm) if the underlying policy fails.
    fn schedule_on(&self, instance: &Instance, cluster: &ClusterSpec) -> Schedule {
        match self.try_schedule_on(instance, cluster) {
            Ok(s) => s,
            Err(e) => panic!("{} failed to schedule: {e}", self.name()),
        }
    }

    /// True if the algorithm honors precedence edges (directly or via the
    /// driver's arrival gating). Defaults to `false`: an algorithm must opt
    /// in before the registry will hand it a DAG instance.
    fn supports_precedence(&self) -> bool {
        false
    }

    /// True if the algorithm is meaningful on non-uniform clusters
    /// (per-machine speeds/capacities). Defaults to `false`.
    fn supports_heterogeneous(&self) -> bool {
        false
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule_on(instance, cluster)
    }

    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule(instance, num_machines)
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }

    fn schedule_on(&self, instance: &Instance, cluster: &ClusterSpec) -> Schedule {
        (**self).schedule_on(instance, cluster)
    }

    fn supports_precedence(&self) -> bool {
        (**self).supports_precedence()
    }

    fn supports_heterogeneous(&self) -> bool {
        (**self).supports_heterogeneous()
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn try_schedule_on(
        &self,
        instance: &Instance,
        cluster: &ClusterSpec,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule_on(instance, cluster)
    }

    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule(instance, num_machines)
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }

    fn schedule_on(&self, instance: &Instance, cluster: &ClusterSpec) -> Schedule {
        (**self).schedule_on(instance, cluster)
    }

    fn supports_precedence(&self) -> bool {
        (**self).supports_precedence()
    }

    fn supports_heterogeneous(&self) -> bool {
        (**self).supports_heterogeneous()
    }
}
