//! Baseline online schedulers from the paper.
//!
//! * The **Priority-Queue (PQ) family** (Section 4): on every event, scan the
//!   pending queue in a heuristic order and start every job that fits. Seven
//!   sorting heuristics from Section 7.3 are provided ([`SortHeuristic`]).
//!   Lemma 4.1 shows this whole class is `Omega(N)`-competitive, which the
//!   `mris-trace` adversarial generator demonstrates experimentally.
//! * **Tetris** (Grandl et al., SIGCOMM '14), adapted to the non-preemptive
//!   setting as in Section 7.2: machines pick pending jobs by an alignment
//!   (packing) score combined with a smallest-volume-first term.
//! * **BF-EXEC** (NoroozOliaee et al.): best-fit machine selection on
//!   arrival, shortest-job-first backfill of the freed machine on departure.
//! * **CA-PQ**: the "collect all" extreme — waits (with oracle knowledge of
//!   the last release time) until every job has arrived, then runs offline
//!   PQ. Serves as the worst-case patience reference in Section 7.
//!
//! All of them implement the crate's [`Scheduler`] trait, as does MRIS in
//! `mris-core`, so experiments can treat algorithms uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfexec;
mod capq;
mod heuristic;
mod pq;
mod tetris;

pub use bfexec::{BfExec, BfExecPolicy};
pub use capq::{CaPq, CaPqPolicy};
pub use heuristic::SortHeuristic;
pub use pq::{NaivePqPolicy, Pq, PqPolicy};
pub use tetris::{Tetris, TetrisPolicy};

use mris_types::{Instance, Schedule, SchedulingError};

/// A complete scheduling algorithm: consumes an instance and produces a full
/// schedule on `num_machines` identical machines.
///
/// Online algorithms implement this by running themselves through the
/// event-driven engine; the trait exists so experiments and benches can
/// compare algorithms uniformly.
///
/// Implementors provide [`Scheduler::try_schedule`], the fallible entry
/// point; callers that treat a scheduling failure as a bug (experiments,
/// benches) use the provided [`Scheduler::schedule`], which panics with the
/// algorithm's name on error.
pub trait Scheduler {
    /// Human-readable algorithm name (appears in experiment reports).
    fn name(&self) -> String;

    /// Produces a complete schedule of `instance` on `num_machines`
    /// machines, surfacing policy bugs as typed errors.
    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError>;

    /// Infallible convenience wrapper around [`Scheduler::try_schedule`].
    ///
    /// # Panics
    ///
    /// Panics (naming the algorithm) if the underlying policy fails; every
    /// shipped algorithm is work-conserving and never does.
    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        match self.try_schedule(instance, num_machines) {
            Ok(s) => s,
            Err(e) => panic!("{} failed to schedule: {e}", self.name()),
        }
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule(instance, num_machines)
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn try_schedule(
        &self,
        instance: &Instance,
        num_machines: usize,
    ) -> Result<Schedule, SchedulingError> {
        (**self).try_schedule(instance, num_machines)
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }
}
