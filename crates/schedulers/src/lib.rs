//! Baseline online schedulers from the paper.
//!
//! * The **Priority-Queue (PQ) family** (Section 4): on every event, scan the
//!   pending queue in a heuristic order and start every job that fits. Seven
//!   sorting heuristics from Section 7.3 are provided ([`SortHeuristic`]).
//!   Lemma 4.1 shows this whole class is `Omega(N)`-competitive, which the
//!   `mris-trace` adversarial generator demonstrates experimentally.
//! * **Tetris** (Grandl et al., SIGCOMM '14), adapted to the non-preemptive
//!   setting as in Section 7.2: machines pick pending jobs by an alignment
//!   (packing) score combined with a smallest-volume-first term.
//! * **BF-EXEC** (NoroozOliaee et al.): best-fit machine selection on
//!   arrival, shortest-job-first backfill of the freed machine on departure.
//! * **CA-PQ**: the "collect all" extreme — waits (with oracle knowledge of
//!   the last release time) until every job has arrived, then runs offline
//!   PQ. Serves as the worst-case patience reference in Section 7.
//!
//! All of them implement the crate's [`Scheduler`] trait, as does MRIS in
//! `mris-core`, so experiments can treat algorithms uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfexec;
mod capq;
mod heuristic;
mod pq;
mod tetris;

pub use bfexec::{BfExec, BfExecPolicy};
pub use capq::CaPq;
pub use heuristic::SortHeuristic;
pub use pq::{NaivePqPolicy, Pq, PqPolicy};
pub use tetris::{Tetris, TetrisPolicy};

use mris_types::{Instance, Schedule};

/// A complete scheduling algorithm: consumes an instance and produces a full
/// schedule on `num_machines` identical machines.
///
/// Online algorithms implement this by running themselves through the
/// event-driven engine; the trait exists so experiments and benches can
/// compare algorithms uniformly.
pub trait Scheduler {
    /// Human-readable algorithm name (appears in experiment reports).
    fn name(&self) -> String;

    /// Produces a complete schedule of `instance` on `num_machines` machines.
    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule;
}

impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn schedule(&self, instance: &Instance, num_machines: usize) -> Schedule {
        (**self).schedule(instance, num_machines)
    }
}
